//! Property tests for the compiled sampling layer: on randomly generated
//! distribution tables, [`CompiledTable`] must be observationally identical
//! to the interpreted [`DistTable`] — draw-for-draw and bitwise for
//! histogram/point tables, and within the documented LUT error bound
//! ([`LUT_REL_ERROR`]) for fitted tables.

use pevpm_dist::compiled::{LUT_REL_ERROR, LUT_TAIL_Q};
use pevpm_dist::{
    CommDist, CompileOptions, CompiledTable, DistKey, DistTable, FitKind, Histogram, Op,
    ParametricFit,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fixed grid axes; properties pick random prefixes so table shapes vary
/// from a single cell to a 4x4 grid.
const SIZES: &[u64] = &[16, 256, 4096, 65536];
const CONTS: &[u32] = &[1, 2, 8, 32];

/// Build a random histogram/point table on `nsizes x nconts` grid cells,
/// deterministically from `seed`.
fn random_table(seed: u64, nsizes: usize, nconts: usize) -> DistTable {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut t = DistTable::new();
    for &size in &SIZES[..nsizes] {
        for &c in &CONTS[..nconts] {
            let dist = if rng.gen_bool(0.25) {
                CommDist::Point(rng.gen_range(1e-6..1e-2))
            } else {
                let base = rng.gen_range(1e-5..1e-3);
                let spread = rng.gen_range(1e-6..1e-3);
                let n = rng.gen_range(1usize..300);
                let samples: Vec<f64> = (0..n).map(|_| base + rng.gen::<f64>() * spread).collect();
                let bin_width = spread / rng.gen_range(2.0..50.0);
                CommDist::Hist(Histogram::from_samples(&samples, bin_width))
            };
            t.insert(
                DistKey {
                    op: Op::Isend,
                    size,
                    contention: c,
                },
                dist,
            );
        }
    }
    t
}

/// Build a single-entry fitted table with random parameters.
fn random_fit(seed: u64, kindsel: usize) -> ParametricFit {
    let mut rng = SmallRng::seed_from_u64(seed);
    let shift = rng.gen_range(1e-6..1e-3);
    match kindsel % 3 {
        0 => ParametricFit {
            kind: FitKind::ShiftedExponential,
            shift,
            p1: rng.gen_range(1e2..1e6),
            p2: 0.0,
        },
        1 => ParametricFit {
            kind: FitKind::ShiftedLogNormal,
            shift,
            p1: rng.gen_range(-12.0..-4.0),
            p2: rng.gen_range(0.05..1.5),
        },
        _ => ParametricFit {
            kind: FitKind::ShiftedGamma,
            shift,
            p1: rng.gen_range(0.5..6.0),
            p2: rng.gen_range(1e-6..1e-3),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram/point tables: compiled quantiles, means, and minima are
    /// bitwise identical to the interpreted table at on-grid, off-grid,
    /// and out-of-range query points.
    #[test]
    fn compiled_quantiles_match_interpreted_bitwise(
        seed in 0u64..1_000_000,
        nsizes in 1usize..5,
        nconts in 1usize..5,
        size in 1.0f64..200_000.0,
        cont in 0.0f64..64.0,
        q in 0.0f64..1.0,
    ) {
        let t = random_table(seed, nsizes, nconts);
        let c = CompiledTable::compile(&t).unwrap();
        // The generated point plus grid corners and far extrapolations.
        let sizes = [size, 16.0, 65536.0, 1e9];
        let conts = [cont, 1.0, 32.0, 500.0];
        let qs = [q, 0.0, 1.0];
        for &s in &sizes {
            for &co in &conts {
                for &qq in &qs {
                    prop_assert_eq!(
                        t.quantile_at(Op::Isend, s, co, qq).map(f64::to_bits),
                        c.quantile_at(Op::Isend, s, co, qq).map(f64::to_bits),
                        "quantile mismatch at size={} cont={} q={}", s, co, qq
                    );
                }
                prop_assert_eq!(
                    t.mean_at(Op::Isend, s, co).map(f64::to_bits),
                    c.mean_at(Op::Isend, s, co).map(f64::to_bits)
                );
                prop_assert_eq!(
                    t.min_at(Op::Isend, s, co).map(f64::to_bits),
                    c.min_at(Op::Isend, s, co).map(f64::to_bits)
                );
            }
        }
    }

    /// Histogram/point tables: `sample_at` consumes exactly one uniform per
    /// call and inverts it identically, so two identically seeded RNG
    /// streams stay in lockstep across interleaved interpreted/compiled
    /// sampling.
    #[test]
    fn compiled_sampling_is_draw_for_draw_identical(
        seed in 0u64..1_000_000,
        nsizes in 1usize..5,
        nconts in 1usize..5,
        rng_seed in 0u64..1_000_000,
    ) {
        let t = random_table(seed, nsizes, nconts);
        let c = CompiledTable::compile(&t).unwrap();
        let mut r1 = SmallRng::seed_from_u64(rng_seed);
        let mut r2 = SmallRng::seed_from_u64(rng_seed);
        for i in 0..64 {
            let size = 1.0 + (i * 977 % 100_000) as f64;
            let cont = (i % 40) as f64;
            let a = t.sample_at(Op::Isend, size, cont, &mut r1).unwrap();
            let b = c.sample_at(Op::Isend, size, cont, &mut r2).unwrap();
            prop_assert_eq!(a.to_bits(), b.to_bits(), "draw {} diverged: {} vs {}", i, a, b);
        }
    }

    /// Fitted tables: the quantile LUT stays within the documented relative
    /// error of exact bisection on [0, LUT_TAIL_Q]; tail quantiles and
    /// `--exact-quantiles` mode are bitwise identical to the interpreted
    /// table.
    #[test]
    fn fit_lut_respects_documented_error_bound(
        seed in 0u64..1_000_000,
        kindsel in 0usize..3,
        q in 0.0f64..1.0,
    ) {
        let fit = random_fit(seed, kindsel);
        let mut t = DistTable::new();
        t.insert(
            DistKey { op: Op::Send, size: 1024, contention: 1 },
            CommDist::Fit(fit),
        );
        let lut = CompiledTable::compile(&t).unwrap();
        let exact = CompiledTable::compile_with(
            &t,
            CompileOptions { exact_quantiles: true, ..CompileOptions::default() },
        )
        .unwrap();

        let a = lut.quantile_at(Op::Send, 1024.0, 1.0, q).unwrap();
        let e = exact.quantile_at(Op::Send, 1024.0, 1.0, q).unwrap();
        if q <= LUT_TAIL_Q {
            let rel = (a - e).abs() / e.abs().max(1e-300);
            prop_assert!(
                rel <= LUT_REL_ERROR,
                "q={}: lut {} vs exact {} (rel {:e})", q, a, e, rel
            );
        } else {
            // Past the LUT tail both modes bisect exactly.
            prop_assert_eq!(a.to_bits(), e.to_bits(), "tail q={}", q);
        }
        // Exact mode always matches the interpreted table bitwise.
        prop_assert_eq!(
            e.to_bits(),
            t.quantile_at(Op::Send, 1024.0, 1.0, q).unwrap().to_bits()
        );
    }
}
