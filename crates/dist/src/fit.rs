//! Parametric fits to measured communication-time distributions.
//!
//! §2 of the paper notes that "it is also possible to use parametrised
//! functions to model the PDFs, based on fits to the histograms using
//! standard functions". Communication-time distributions have a hard lower
//! bound (the contention-free minimum), a peak near the mean and a rapidly
//! decaying right tail, so the natural candidates are *shifted* (three- or
//! two-parameter) versions of right-skewed families:
//!
//! - [`FitKind::ShiftedExponential`] — `min + Exp(λ)`;
//! - [`FitKind::ShiftedLogNormal`] — `min + LogNormal(μ, σ)`;
//! - [`FitKind::ShiftedGamma`] — `min + Gamma(k, θ)`.
//!
//! All are fitted by the method of moments against the histogram's exact
//! summary statistics, which is fast, deterministic and adequate for the
//! modelling use-case (PEVPM only needs to *sample* from the fit).

use crate::histogram::Histogram;
use crate::summary::Summary;
use rand::Rng;

/// Families of parametric distribution used to model communication times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FitKind {
    /// `shift + Exponential(rate)`.
    ShiftedExponential,
    /// `shift + LogNormal(mu, sigma)`.
    ShiftedLogNormal,
    /// `shift + Gamma(shape, scale)`.
    ShiftedGamma,
}

/// A fitted parametric model of a communication-time distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ParametricFit {
    /// Which family this fit belongs to.
    pub kind: FitKind,
    /// Location shift (the contention-free minimum time).
    pub shift: f64,
    /// First shape parameter: rate (exp), mu (log-normal), shape k (gamma).
    pub p1: f64,
    /// Second shape parameter: unused (exp, set to 0), sigma (log-normal),
    /// scale theta (gamma).
    pub p2: f64,
}

impl ParametricFit {
    /// Fit the given family to a histogram by the method of moments, using
    /// the histogram's exact summary (min/mean/variance).
    ///
    /// Returns `None` for an empty histogram or one with zero variance that
    /// the family cannot represent (a degenerate point mass is representable
    /// by every family via a zero-scale limit, which we encode explicitly).
    pub fn fit(kind: FitKind, hist: &Histogram) -> Option<ParametricFit> {
        Self::fit_summary(kind, hist.summary())
    }

    /// Fit from summary statistics directly.
    pub fn fit_summary(kind: FitKind, s: &Summary) -> Option<ParametricFit> {
        if s.is_empty() {
            return None;
        }
        let min = s.min()?;
        let mean = s.mean()?;
        let var = s.variance()?;
        // Excess over the hard minimum. Nudge the shift slightly below min so
        // the minimum itself has positive density under the fit.
        let shift = min;
        let m = (mean - shift).max(1e-300);
        match kind {
            FitKind::ShiftedExponential => {
                // E[X-shift] = 1/rate.
                Some(ParametricFit {
                    kind,
                    shift,
                    p1: 1.0 / m,
                    p2: 0.0,
                })
            }
            FitKind::ShiftedLogNormal => {
                if var <= 0.0 {
                    return Some(ParametricFit {
                        kind,
                        shift,
                        p1: m.ln(),
                        p2: 0.0,
                    });
                }
                // For LogNormal: mean = exp(mu + s^2/2), var = (exp(s^2)-1)exp(2mu+s^2).
                let cv2 = var / (m * m);
                let sigma2 = (1.0 + cv2).ln();
                let mu = m.ln() - sigma2 / 2.0;
                Some(ParametricFit {
                    kind,
                    shift,
                    p1: mu,
                    p2: sigma2.sqrt(),
                })
            }
            FitKind::ShiftedGamma => {
                if var <= 0.0 {
                    // Degenerate: point mass at mean, encoded as huge shape.
                    return Some(ParametricFit {
                        kind,
                        shift,
                        p1: f64::INFINITY,
                        p2: 0.0,
                    });
                }
                // mean = k*theta, var = k*theta^2.
                let theta = var / m;
                let k = m / theta;
                Some(ParametricFit {
                    kind,
                    shift,
                    p1: k,
                    p2: theta,
                })
            }
        }
    }

    /// Mean of the fitted distribution.
    pub fn mean(&self) -> f64 {
        match self.kind {
            FitKind::ShiftedExponential => self.shift + 1.0 / self.p1,
            FitKind::ShiftedLogNormal => self.shift + (self.p1 + self.p2 * self.p2 / 2.0).exp(),
            FitKind::ShiftedGamma => {
                if self.p1.is_infinite() {
                    self.shift
                } else {
                    self.shift + self.p1 * self.p2
                }
            }
        }
    }

    /// Variance of the fitted distribution.
    pub fn variance(&self) -> f64 {
        match self.kind {
            FitKind::ShiftedExponential => 1.0 / (self.p1 * self.p1),
            FitKind::ShiftedLogNormal => {
                let s2 = self.p2 * self.p2;
                (s2.exp() - 1.0) * (2.0 * self.p1 + s2).exp()
            }
            FitKind::ShiftedGamma => {
                if self.p1.is_infinite() {
                    0.0
                } else {
                    self.p1 * self.p2 * self.p2
                }
            }
        }
    }

    /// CDF of the fitted distribution at `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let y = x - self.shift;
        if y <= 0.0 {
            return 0.0;
        }
        match self.kind {
            FitKind::ShiftedExponential => 1.0 - (-self.p1 * y).exp(),
            FitKind::ShiftedLogNormal => {
                if self.p2 == 0.0 {
                    return if y.ln() >= self.p1 { 1.0 } else { 0.0 };
                }
                normal_cdf((y.ln() - self.p1) / self.p2)
            }
            FitKind::ShiftedGamma => {
                if self.p1.is_infinite() {
                    return 1.0;
                }
                gamma_cdf(self.p1, y / self.p2)
            }
        }
    }

    /// Inverse CDF at `q` (clamped to `[0, 1]`) by numerical bisection.
    ///
    /// This is the *exact* (to f64 bisection convergence) quantile: 80
    /// halvings of a bracket that starts at `mean + 20σ` and doubles until
    /// it covers `q`. It is the reference that
    /// [`crate::compiled::CompiledDist`]'s quantile lookup table is built
    /// from and validated against, and the path used when a table is
    /// compiled with `exact_quantiles`.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return self.shift;
        }
        let mut lo = self.shift;
        let mut hi = self.mean() + 20.0 * self.variance().sqrt().max(1e-12);
        while self.cdf(hi) < q && hi - self.shift < 1e12 {
            hi = self.shift + (hi - self.shift) * 2.0;
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Draw one sample from the fitted distribution.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self.kind {
            FitKind::ShiftedExponential => {
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                self.shift - u.ln() / self.p1
            }
            FitKind::ShiftedLogNormal => {
                let z = sample_standard_normal(rng);
                self.shift + (self.p1 + self.p2 * z).exp()
            }
            FitKind::ShiftedGamma => {
                if self.p1.is_infinite() {
                    self.shift
                } else {
                    self.shift + sample_gamma(rng, self.p1) * self.p2
                }
            }
        }
    }
}

impl ParametricFit {
    /// Kolmogorov–Smirnov distance between this fit's CDF and a
    /// histogram's binned empirical CDF (evaluated at bin right edges).
    pub fn ks_to_histogram(&self, hist: &Histogram) -> f64 {
        if hist.is_empty() {
            return 0.0;
        }
        let mut d: f64 = 0.0;
        for i in 0..hist.num_bins() {
            let x = hist.bin_left(i) + hist.bin_width();
            d = d.max((self.cdf(x) - hist.cdf(i)).abs());
        }
        d
    }

    /// Fit all three families and return the one with the smallest KS
    /// distance to the histogram, together with that distance. `None` for
    /// an empty histogram.
    ///
    /// This automates §2's "parametrised functions to model the PDFs,
    /// based on fits to the histograms using standard functions": a fitted
    /// database is hundreds of times smaller than the raw histograms while
    /// (for unimodal distributions) predicting nearly as well — see the
    /// `abl_fit_models` bench.
    pub fn best_fit(hist: &Histogram) -> Option<(ParametricFit, f64)> {
        [
            FitKind::ShiftedExponential,
            FitKind::ShiftedLogNormal,
            FitKind::ShiftedGamma,
        ]
        .into_iter()
        .filter_map(|kind| {
            let f = ParametricFit::fit(kind, hist)?;
            let ks = f.ks_to_histogram(hist);
            ks.is_finite().then_some((f, ks))
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (|error| < 1.5e-7, ample for fitting/QC purposes).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function, Abramowitz & Stegun 7.1.26.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Sample a standard normal via the Box–Muller transform.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sample Gamma(shape, 1) via Marsaglia–Tsang, with the boost trick for
/// shape < 1.
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(
        shape > 0.0 && shape.is_finite(),
        "gamma shape must be positive"
    );
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Regularised lower incomplete gamma function P(a, x) by series/continued
/// fraction (Numerical Recipes style).
pub fn gamma_cdf(a: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut sum = 1.0 / a;
        let mut term = sum;
        let mut n = a;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a,x) = 1 - P(a,x).
        let mut b = x + 1.0 - a;
        let mut c = 1e308;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = (an * d + b).recip_guard();
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        let q = (a * x.ln() - x - ln_gamma(a)).exp() * h;
        1.0 - q
    }
}

trait RecipGuard {
    fn recip_guard(self) -> f64;
}
impl RecipGuard for f64 {
    fn recip_guard(self) -> f64 {
        if self.abs() < 1e-300 {
            1e300
        } else {
            1.0 / self
        }
    }
}

/// Natural log of the gamma function (Lanczos approximation).
pub fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 7] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
        0.0,
    ];
    let mut ser = 1.000000000190015;
    let mut denom = x;
    for g in G.iter().take(6) {
        denom += 1.0;
        ser += g / denom;
    }
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    -tmp + (2.5066282746310005 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ecdf;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn hist_from(xs: &[f64]) -> Histogram {
        Histogram::from_samples(xs, 0.01)
    }

    #[test]
    fn exponential_fit_matches_moments() {
        let xs: Vec<f64> = (0..1000).map(|i| 1.0 + (i as f64 + 0.5) / 500.0).collect();
        let h = hist_from(&xs);
        let f = ParametricFit::fit(FitKind::ShiftedExponential, &h).unwrap();
        assert!((f.shift - h.summary().min().unwrap()).abs() < 1e-12);
        assert!((f.mean() - h.summary().mean().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn lognormal_fit_matches_mean_and_variance() {
        let mut rng = SmallRng::seed_from_u64(7);
        let truth = ParametricFit {
            kind: FitKind::ShiftedLogNormal,
            shift: 2.0,
            p1: -1.0,
            p2: 0.5,
        };
        let xs: Vec<f64> = (0..20000).map(|_| truth.sample(&mut rng)).collect();
        let h = hist_from(&xs);
        let f = ParametricFit::fit(FitKind::ShiftedLogNormal, &h).unwrap();
        assert!((f.mean() - h.summary().mean().unwrap()).abs() < 1e-6);
        let fitted_total_var = f.variance();
        let data_var = h.summary().variance().unwrap();
        assert!(
            (fitted_total_var - data_var).abs() / data_var < 1e-6,
            "var mismatch: {fitted_total_var} vs {data_var}"
        );
    }

    #[test]
    fn gamma_fit_matches_mean_and_variance() {
        let mut rng = SmallRng::seed_from_u64(9);
        let xs: Vec<f64> = (0..20000)
            .map(|_| 0.5 + sample_gamma(&mut rng, 3.0) * 0.2)
            .collect();
        let h = hist_from(&xs);
        let f = ParametricFit::fit(FitKind::ShiftedGamma, &h).unwrap();
        assert!((f.mean() - h.summary().mean().unwrap()).abs() < 1e-9);
        assert!((f.variance() - h.summary().variance().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn sampling_from_fit_recovers_fit_moments() {
        let mut rng = SmallRng::seed_from_u64(11);
        for kind in [
            FitKind::ShiftedExponential,
            FitKind::ShiftedLogNormal,
            FitKind::ShiftedGamma,
        ] {
            let f = match kind {
                FitKind::ShiftedExponential => ParametricFit {
                    kind,
                    shift: 1.0,
                    p1: 2.0,
                    p2: 0.0,
                },
                FitKind::ShiftedLogNormal => ParametricFit {
                    kind,
                    shift: 1.0,
                    p1: 0.0,
                    p2: 0.3,
                },
                FitKind::ShiftedGamma => ParametricFit {
                    kind,
                    shift: 1.0,
                    p1: 4.0,
                    p2: 0.25,
                },
            };
            let n = 40000;
            let mean: f64 = (0..n).map(|_| f.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - f.mean()).abs() / f.mean() < 0.02,
                "{kind:?}: sampled mean {mean} vs analytic {}",
                f.mean()
            );
        }
    }

    #[test]
    fn cdf_of_samples_is_consistent_ks() {
        let mut rng = SmallRng::seed_from_u64(13);
        let f = ParametricFit {
            kind: FitKind::ShiftedGamma,
            shift: 0.0,
            p1: 2.5,
            p2: 1.0,
        };
        let xs: Vec<f64> = (0..5000).map(|_| f.sample(&mut rng)).collect();
        let e = Ecdf::new(&xs);
        let d = e.ks_distance_to(|x| f.cdf(x));
        // KS ~ 1.36/sqrt(n) at 5%: allow generous margin.
        assert!(d < 0.03, "KS distance {d} too large");
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn gamma_cdf_reference_values() {
        // Gamma(1, x) is Exp(1): CDF(1) = 1 - e^-1.
        assert!((gamma_cdf(1.0, 1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
        // Gamma(k) median sanity: CDF at mean is a bit above 0.5 for small k.
        let c = gamma_cdf(3.0, 3.0);
        assert!(c > 0.5 && c < 0.7, "gamma_cdf(3,3) = {c}");
        assert_eq!(gamma_cdf(2.0, 0.0), 0.0);
    }

    #[test]
    fn ln_gamma_reference_values() {
        // ln Γ(1) = 0, ln Γ(2) = 0, ln Γ(5) = ln 24.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn best_fit_picks_the_generating_family() {
        let mut rng = SmallRng::seed_from_u64(21);
        // Strongly skewed exponential data: exponential should win (or at
        // worst gamma with shape ~1, which is the same family).
        let truth = ParametricFit {
            kind: FitKind::ShiftedExponential,
            shift: 1.0,
            p1: 10.0,
            p2: 0.0,
        };
        let xs: Vec<f64> = (0..5000).map(|_| truth.sample(&mut rng)).collect();
        let h = hist_from(&xs);
        let (fit, ks) = ParametricFit::best_fit(&h).unwrap();
        assert!(ks < 0.05, "best fit KS too large: {ks}");
        assert!((fit.mean() - h.summary().mean().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn ks_to_histogram_detects_bad_fits() {
        // Bimodal data: no single shifted family fits well.
        let mut xs = vec![1.0; 500];
        xs.extend(std::iter::repeat_n(10.0, 500));
        let h = Histogram::from_samples(&xs, 0.1);
        let (_, ks) = ParametricFit::best_fit(&h).unwrap();
        assert!(ks > 0.15, "bimodal data should fit poorly, ks = {ks}");
    }

    #[test]
    fn best_fit_of_empty_histogram_is_none() {
        let h = Histogram::new(0.0, 1.0);
        assert!(ParametricFit::best_fit(&h).is_none());
    }

    #[test]
    fn degenerate_zero_variance_input() {
        let h = hist_from(&[2.0, 2.0, 2.0]);
        for kind in [
            FitKind::ShiftedExponential,
            FitKind::ShiftedLogNormal,
            FitKind::ShiftedGamma,
        ] {
            let f = ParametricFit::fit(kind, &h).unwrap();
            let mut rng = SmallRng::seed_from_u64(3);
            let s = f.sample(&mut rng);
            assert!(s >= 2.0 - 1e-9, "{kind:?} sampled {s} below the minimum");
        }
    }

    #[test]
    fn empty_histogram_yields_no_fit() {
        let h = Histogram::new(0.0, 1.0);
        assert!(ParametricFit::fit(FitKind::ShiftedGamma, &h).is_none());
    }
}
