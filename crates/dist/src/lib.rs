//! Probability-distribution toolkit for MPIBench / PEVPM.
//!
//! This crate provides the statistical machinery shared by the benchmark side
//! (MPIBench accumulates observed communication times into histograms) and
//! the modelling side (PEVPM draws Monte-Carlo samples from those
//! distributions). The central types are:
//!
//! - [`Summary`] — streaming summary statistics (count/min/max/mean/stddev).
//! - [`Histogram`] — fixed-bin-width histogram with probability/cumulative
//!   views, inverse-CDF sampling and quantile interpolation. This is the
//!   representation the paper calls a "performance distribution" or PDF.
//! - [`Ecdf`] — exact empirical CDF over a retained sample set, including the
//!   Kolmogorov–Smirnov distance used in tests.
//! - [`fit`] — parametric fits (shifted exponential, log-normal, gamma) to a
//!   histogram, the "parametrised functions to model the PDFs" of §2.
//! - [`CommDist`] / [`DistTable`] — a communication-time distribution and a
//!   table of them keyed by (operation, message size, contention level), with
//!   bilinear quantile interpolation between grid points. PEVPM queries this
//!   table with arbitrary (size, #in-flight-messages) coordinates.
//! - [`io`] — a compact, versioned, human-readable text format for saving and
//!   reloading benchmark databases (`.dist` files).
//! - [`CompiledTable`] — an immutable, allocation-free compilation of a
//!   [`DistTable`] for the Monte-Carlo hot path: flat sorted axes, exact
//!   prefix-sum histogram inversion, quantile lookup tables for fits, and a
//!   memoised neighbour-blend cache.
//!
//! All times are `f64` seconds. All sampling is driven by a caller-supplied
//! [`rand::Rng`], so experiments are reproducible given a seed.

pub mod compiled;
pub mod ecdf;
pub mod fit;
pub mod histogram;
// io parses untrusted files: every failure must be a structured error.
#[cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
pub mod io;
pub mod sample;
pub mod summary;
pub mod table;

pub use compiled::{CompileError, CompileOptions, CompiledDist, CompiledTable};
pub use ecdf::Ecdf;
pub use fit::{FitKind, ParametricFit};
pub use histogram::Histogram;
pub use sample::{PointKind, Sampler};
pub use summary::Summary;
pub use table::{CommDist, DistKey, DistTable, Op};
