//! The benchmark database: distributions keyed by operation, message size
//! and contention level.
//!
//! §5 of the paper: "These probability distributions are a function of
//! message size and the total number of messages on the scoreboard (i.e.
//! contention level)." MPIBench only measures a grid of (size, contention)
//! points, but PEVPM queries arbitrary coordinates, so [`DistTable`] performs
//! **bilinear quantile interpolation**: a query draws one uniform variate
//! `u`, evaluates the inverse CDF of the (up to four) surrounding grid
//! distributions at `u`, and blends the resulting quantile values with
//! bilinear weights (linear in `log2(size)`, linear in contention). This
//! interpolates *between distributions* rather than between densities, which
//! preserves monotonicity and support bounds.

use crate::fit::ParametricFit;
use crate::histogram::Histogram;
use crate::sample::PointKind;
use rand::Rng;
use std::collections::BTreeMap;

/// MPI operations MPIBench can characterise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op {
    /// Blocking standard-mode send (matching receive included).
    Send,
    /// Nonblocking send (the paper's headline measurements, Figs 1–4).
    Isend,
    /// Blocking receive.
    Recv,
    /// Barrier synchronisation.
    Barrier,
    /// Broadcast from a root.
    Bcast,
    /// Reduce to a root.
    Reduce,
    /// Allreduce.
    Allreduce,
    /// Gather to a root.
    Gather,
    /// Scatter from a root.
    Scatter,
    /// Allgather.
    Allgather,
    /// All-to-all personalised exchange.
    Alltoall,
}

impl Op {
    /// All operations, for iteration in benchmarks.
    pub const ALL: [Op; 11] = [
        Op::Send,
        Op::Isend,
        Op::Recv,
        Op::Barrier,
        Op::Bcast,
        Op::Reduce,
        Op::Allreduce,
        Op::Gather,
        Op::Scatter,
        Op::Allgather,
        Op::Alltoall,
    ];

    /// Stable lowercase name used in the `.dist` file format.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Send => "send",
            Op::Isend => "isend",
            Op::Recv => "recv",
            Op::Barrier => "barrier",
            Op::Bcast => "bcast",
            Op::Reduce => "reduce",
            Op::Allreduce => "allreduce",
            Op::Gather => "gather",
            Op::Scatter => "scatter",
            Op::Allgather => "allgather",
            Op::Alltoall => "alltoall",
        }
    }

    /// Parse from the stable name.
    pub fn from_name(s: &str) -> Option<Op> {
        Op::ALL.iter().copied().find(|o| o.name() == s)
    }

    /// Position of this operation in [`Op::ALL`]: a dense index used for
    /// flat per-op storage (e.g. [`crate::compiled::CompiledTable`]).
    pub fn index(self) -> usize {
        match self {
            Op::Send => 0,
            Op::Isend => 1,
            Op::Recv => 2,
            Op::Barrier => 3,
            Op::Bcast => 4,
            Op::Reduce => 5,
            Op::Allreduce => 6,
            Op::Gather => 7,
            Op::Scatter => 8,
            Op::Allgather => 9,
            Op::Alltoall => 10,
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Grid coordinate of one measured distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DistKey {
    /// The MPI operation measured.
    pub op: Op,
    /// Message size in bytes.
    pub size: u64,
    /// Contention level: the number of messages simultaneously in flight
    /// during the measurement (for an n×p paired exchange this is n·p/2).
    pub contention: u32,
}

/// One communication-time distribution: empirical histogram, parametric fit
/// or degenerate single point.
#[derive(Debug, Clone, PartialEq)]
pub enum CommDist {
    /// Full empirical histogram (the paper's preferred representation).
    Hist(Histogram),
    /// Parametric fit (compact alternative noted in §2).
    Fit(ParametricFit),
    /// Degenerate point distribution (min/avg baseline prediction modes).
    Point(f64),
}

impl CommDist {
    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        match self {
            CommDist::Hist(h) => h.summary().mean().unwrap_or(0.0),
            CommDist::Fit(f) => f.mean(),
            CommDist::Point(v) => *v,
        }
    }

    /// Minimum (0-quantile).
    pub fn min(&self) -> f64 {
        match self {
            CommDist::Hist(h) => h.summary().min().unwrap_or(0.0),
            CommDist::Fit(f) => f.shift,
            CommDist::Point(v) => *v,
        }
    }

    /// Inverse CDF at `q` (clamped to `[0, 1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        match self {
            CommDist::Hist(h) => h.quantile(q).unwrap_or(0.0),
            CommDist::Fit(f) => f.quantile(q),
            CommDist::Point(v) => *v,
        }
    }

    /// Draw one sample.
    ///
    /// # Panics
    /// Panics on an empty histogram: an empty distribution has no samples
    /// to draw, and silently returning a 0.0 communication time would
    /// corrupt predictions. Empty histograms are rejected up front by
    /// [`DistTable::validate`], which both the `.dist` loader and
    /// [`crate::compiled::CompiledTable::compile`] run, so this panic is
    /// unreachable for tables that came through either path.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            CommDist::Hist(h) => h
                .sample(rng)
                .expect("empty histogram in CommDist::sample (run DistTable::validate)"),
            CommDist::Fit(f) => f.sample(rng),
            CommDist::Point(v) => *v,
        }
    }

    /// True for a histogram with no observations — a distribution nothing
    /// can be drawn from. See [`DistTable::validate`].
    pub fn is_vacuous(&self) -> bool {
        matches!(self, CommDist::Hist(h) if h.is_empty())
    }

    /// Collapse to a degenerate point distribution at the given statistic.
    pub fn collapse(&self, kind: PointKind) -> CommDist {
        match kind {
            PointKind::Minimum => CommDist::Point(self.min()),
            PointKind::Average => CommDist::Point(self.mean()),
        }
    }
}

/// A database of communication-time distributions on a (size, contention)
/// grid per operation, with bilinear quantile interpolation between grid
/// points and clamping outside the grid.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DistTable {
    /// `op -> (size, contention) -> distribution`. BTreeMaps keep the grid
    /// ordered so neighbour lookup is a range scan.
    entries: BTreeMap<Op, BTreeMap<(u64, u32), CommDist>>,
}

impl DistTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) the distribution at a grid point.
    pub fn insert(&mut self, key: DistKey, dist: CommDist) {
        self.entries
            .entry(key.op)
            .or_default()
            .insert((key.size, key.contention), dist);
    }

    /// Exact lookup of a grid point.
    pub fn get(&self, key: &DistKey) -> Option<&CommDist> {
        self.entries.get(&key.op)?.get(&(key.size, key.contention))
    }

    /// Number of stored grid points across all operations.
    pub fn len(&self) -> usize {
        self.entries.values().map(|m| m.len()).sum()
    }

    /// True if the table holds no distributions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over all `(key, dist)` entries in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (DistKey, &CommDist)> {
        self.entries.iter().flat_map(|(&op, m)| {
            m.iter().map(move |(&(size, contention), d)| {
                (
                    DistKey {
                        op,
                        size,
                        contention,
                    },
                    d,
                )
            })
        })
    }

    /// Operations present in the table.
    pub fn ops(&self) -> impl Iterator<Item = Op> + '_ {
        self.entries.keys().copied()
    }

    /// Distinct message sizes measured for `op`.
    ///
    /// PERF regression note: this allocates a fresh `Vec` on every call
    /// (the BTreeMap keys are already size-ordered, so no sort is needed,
    /// but the collection itself is O(n) heap work). Hot loops — anything
    /// per-message or per-draw — must not call this; they go through
    /// [`crate::compiled::CompiledTable`], whose axes are flat slices
    /// precomputed once at compile time.
    pub fn sizes(&self, op: Op) -> Vec<u64> {
        // Keys iterate in (size, contention) order, so the projected sizes
        // are already sorted; dedup alone suffices.
        let mut v: Vec<u64> = self
            .entries
            .get(&op)
            .map(|m| m.keys().map(|&(s, _)| s).collect())
            .unwrap_or_default();
        debug_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        v.dedup();
        v
    }

    /// Distinct contention levels measured for `op`.
    ///
    /// PERF regression note: allocates and sorts per call (contentions are
    /// *not* globally ordered in the `(size, contention)` key space). Hot
    /// loops must use [`crate::compiled::CompiledTable`] instead.
    pub fn contentions(&self, op: Op) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .entries
            .get(&op)
            .map(|m| m.keys().map(|&(_, c)| c).collect())
            .unwrap_or_default();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Check that every stored distribution can actually be sampled from:
    /// empty histograms (no observations) are rejected with the offending
    /// grid key. Run by the `.dist` loader and by
    /// [`crate::compiled::CompiledTable::compile`], so a vacuous
    /// distribution is a hard error at load/compile time instead of a
    /// silent 0.0 communication time at sampling time.
    pub fn validate(&self) -> Result<(), crate::compiled::CompileError> {
        for (key, dist) in self.iter() {
            if dist.is_vacuous() {
                return Err(crate::compiled::CompileError::EmptyHistogram { key });
            }
        }
        Ok(())
    }

    /// The up-to-four surrounding grid distributions of `(size, contention)`
    /// with their bilinear weights. Returns `None` if the op has no data.
    ///
    /// PERF regression note: allocates four `Vec`s per call. This is the
    /// reference implementation that `CompiledTable`'s zero-allocation
    /// blend is property-tested against draw-for-draw; keep them in
    /// lockstep (both route through [`bracket`] / [`size_weight`]).
    fn neighbours(&self, op: Op, size: f64, contention: f64) -> Option<Vec<(&CommDist, f64)>> {
        let grid = self.entries.get(&op)?;
        if grid.is_empty() {
            return None;
        }
        let sizes = self.sizes(op);
        let (s_lo, s_hi, _) = bracket(&sizes.iter().map(|&s| s as f64).collect::<Vec<_>>(), size)
            .map(|(a, b, w)| (a as u64, b as u64, w))?;
        let ws = size_weight(s_lo, s_hi, size);

        // Contention axes can differ per size column; bracket per column.
        let mut out: Vec<(&CommDist, f64)> = Vec::with_capacity(4);
        for (s, wsize) in [(s_lo, 1.0 - ws), (s_hi, ws)] {
            if wsize == 0.0 && s_lo != s_hi {
                continue;
            }
            let col: Vec<u32> = grid
                .range((s, 0)..=(s, u32::MAX))
                .map(|(&(_, c), _)| c)
                .collect();
            let Some((c_lo, c_hi, wc)) = bracket(&col, contention) else {
                continue;
            };
            for (c, wcont) in [(c_lo, 1.0 - wc), (c_hi, wc)] {
                if wcont == 0.0 && c_lo != c_hi {
                    continue;
                }
                if let Some(d) = grid.get(&(s, c)) {
                    out.push((d, wsize * wcont));
                }
            }
        }
        // Deduplicate degenerate corners (same dist appearing twice with the
        // weights already summing correctly is fine for blending).
        if out.is_empty() {
            None
        } else {
            Some(out)
        }
    }

    /// Interpolated inverse CDF at probability `q` for the query point.
    pub fn quantile_at(&self, op: Op, size: f64, contention: f64, q: f64) -> Option<f64> {
        let nb = self.neighbours(op, size, contention)?;
        let wsum: f64 = nb.iter().map(|(_, w)| w).sum();
        if wsum <= 0.0 {
            return None;
        }
        Some(nb.iter().map(|(d, w)| d.quantile(q) * w).sum::<f64>() / wsum)
    }

    /// Draw one communication time for the query point: one uniform variate,
    /// blended across neighbour quantile functions.
    pub fn sample_at<R: Rng + ?Sized>(
        &self,
        op: Op,
        size: f64,
        contention: f64,
        rng: &mut R,
    ) -> Option<f64> {
        let u = rng.gen::<f64>();
        self.quantile_at(op, size, contention, u)
    }

    /// Interpolated mean at the query point.
    pub fn mean_at(&self, op: Op, size: f64, contention: f64) -> Option<f64> {
        let nb = self.neighbours(op, size, contention)?;
        let wsum: f64 = nb.iter().map(|(_, w)| w).sum();
        if wsum <= 0.0 {
            return None;
        }
        Some(nb.iter().map(|(d, w)| d.mean() * w).sum::<f64>() / wsum)
    }

    /// Interpolated minimum at the query point.
    pub fn min_at(&self, op: Op, size: f64, contention: f64) -> Option<f64> {
        let nb = self.neighbours(op, size, contention)?;
        let wsum: f64 = nb.iter().map(|(_, w)| w).sum();
        if wsum <= 0.0 {
            return None;
        }
        Some(nb.iter().map(|(d, w)| d.min() * w).sum::<f64>() / wsum)
    }

    /// A new table whose distributions are all collapsed to single-point
    /// statistics — the paper's "simplistic" baseline prediction inputs.
    pub fn collapsed(&self, kind: PointKind) -> DistTable {
        let mut t = DistTable::new();
        for (k, d) in self.iter() {
            t.insert(k, d.collapse(kind));
        }
        t
    }

    /// A new table keeping only the given contention level (e.g. 1 for the
    /// 2×1 ping-pong baseline that conventional benchmarks measure). The
    /// resulting table answers *every* contention query with that data.
    pub fn at_contention(&self, level: u32) -> DistTable {
        let mut t = DistTable::new();
        for (k, d) in self.iter() {
            if k.contention == level {
                t.insert(k, d.clone());
            }
        }
        t
    }

    /// Merge another table into this one (replacing colliding keys).
    pub fn merge(&mut self, other: &DistTable) {
        for (k, d) in other.iter() {
            self.insert(k, d.clone());
        }
    }

    /// A new table whose histogram cells are replaced by best-fitting
    /// parametric models (§2's compact "parametrised functions"). Cells
    /// that are already points or fits are kept; histograms that fail to
    /// fit are kept as histograms.
    pub fn fitted(&self) -> DistTable {
        let mut t = DistTable::new();
        for (k, d) in self.iter() {
            let d2 = match d {
                CommDist::Hist(h) => match ParametricFit::best_fit(h) {
                    Some((f, _)) => CommDist::Fit(f),
                    None => d.clone(),
                },
                other => other.clone(),
            };
            t.insert(k, d2);
        }
        t
    }
}

/// Surrounding grid coordinates of `x` in a sorted axis, with the blend
/// weight of the upper neighbour. Clamped at the edges.
///
/// Shared by the interpreted [`DistTable`] path and the compiled
/// [`crate::compiled::CompiledTable`] path so both select bitwise-identical
/// neighbours and weights.
pub(crate) fn bracket<T: Copy + PartialOrd + Into<f64>>(axis: &[T], x: f64) -> Option<(T, T, f64)> {
    // NaN compares false against every neighbour, which would walk the
    // binary search off the front of the axis; there is no meaningful
    // bracket for it either way.
    if axis.is_empty() || x.is_nan() {
        return None;
    }
    let first = axis[0];
    let last = axis[axis.len() - 1];
    if x <= first.into() {
        return Some((first, first, 0.0));
    }
    if x >= last.into() {
        return Some((last, last, 0.0));
    }
    let hi_idx = axis.partition_point(|&a| a.into() <= x);
    let lo = axis[hi_idx - 1];
    let hi = axis[hi_idx];
    let (lo_f, hi_f) = (lo.into(), hi.into());
    if (hi_f - lo_f).abs() < f64::EPSILON {
        return Some((lo, hi, 0.0));
    }
    Some((lo, hi, (x - lo_f) / (hi_f - lo_f)))
}

/// Weight along the size axis is computed in log2 space, since message
/// sizes are sampled geometrically and time grows ~linearly in size so
/// log-space blending is much closer to linear interpolation of latency
/// curves on the geometric grid used by MPIBench. Shared by the interpreted
/// and compiled lookup paths.
pub(crate) fn size_weight(lo: u64, hi: u64, size: f64) -> f64 {
    if lo == hi {
        return 0.0;
    }
    let l = ((lo as f64) + 1.0).log2();
    let h = ((hi as f64) + 1.0).log2();
    (((size + 1.0).log2() - l) / (h - l)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn point_table() -> DistTable {
        // Grid: sizes {100, 1000}, contentions {1, 10}; value = size + 1000*contention
        let mut t = DistTable::new();
        for &size in &[100u64, 1000] {
            for &c in &[1u32, 10] {
                t.insert(
                    DistKey {
                        op: Op::Isend,
                        size,
                        contention: c,
                    },
                    CommDist::Point(size as f64 + 1000.0 * c as f64),
                );
            }
        }
        t
    }

    #[test]
    fn exact_grid_points_roundtrip() {
        let t = point_table();
        let k = DistKey {
            op: Op::Isend,
            size: 100,
            contention: 1,
        };
        assert_eq!(t.get(&k), Some(&CommDist::Point(1100.0)));
        assert_eq!(t.mean_at(Op::Isend, 100.0, 1.0), Some(1100.0));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn clamping_outside_grid() {
        let t = point_table();
        // Below smallest size and contention -> corner value.
        assert_eq!(t.mean_at(Op::Isend, 1.0, 0.0), Some(1100.0));
        // Beyond largest -> other corner.
        assert_eq!(t.mean_at(Op::Isend, 1e9, 100.0), Some(11000.0));
    }

    #[test]
    fn contention_interpolation_is_linear() {
        let t = point_table();
        let v = t.mean_at(Op::Isend, 100.0, 5.5).unwrap();
        assert!((v - (100.0 + 1000.0 * 5.5)).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn size_interpolation_is_log_space() {
        let t = point_table();
        let v = t.mean_at(Op::Isend, 316.0, 1.0).unwrap(); // ~geometric mid
        let w = (316.0f64 + 1.0).log2() - (100.0f64 + 1.0).log2();
        let span = (1000.0f64 + 1.0).log2() - (100.0f64 + 1.0).log2();
        let expect = 1000.0 + 100.0 * (1.0 - w / span) + 1000.0 * (w / span);
        assert!((v - expect).abs() < 1e-9, "got {v}, expected {expect}");
    }

    #[test]
    fn sampling_from_interpolated_point_is_deterministic() {
        let t = point_table();
        let mut rng = SmallRng::seed_from_u64(5);
        let v = t.sample_at(Op::Isend, 100.0, 1.0, &mut rng).unwrap();
        assert_eq!(v, 1100.0);
    }

    #[test]
    fn missing_op_returns_none() {
        let t = point_table();
        assert_eq!(t.mean_at(Op::Barrier, 0.0, 1.0), None);
        assert_eq!(t.quantile_at(Op::Bcast, 10.0, 1.0, 0.5), None);
    }

    #[test]
    fn collapsed_table_uses_point_statistics() {
        let mut t = DistTable::new();
        let h = Histogram::from_samples(&[1.0, 2.0, 3.0], 0.5);
        t.insert(
            DistKey {
                op: Op::Send,
                size: 8,
                contention: 1,
            },
            CommDist::Hist(h),
        );
        let avg = t.collapsed(PointKind::Average);
        let min = t.collapsed(PointKind::Minimum);
        assert_eq!(avg.mean_at(Op::Send, 8.0, 1.0), Some(2.0));
        assert_eq!(min.mean_at(Op::Send, 8.0, 1.0), Some(1.0));
        // Sampling from a collapsed table always yields the point value.
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(min.sample_at(Op::Send, 8.0, 1.0, &mut rng), Some(1.0));
        }
    }

    #[test]
    fn at_contention_ignores_other_levels() {
        let t = point_table();
        let pp = t.at_contention(1);
        // Every contention query now answers with the level-1 data.
        assert_eq!(pp.mean_at(Op::Isend, 100.0, 50.0), Some(1100.0));
        assert_eq!(pp.len(), 2);
    }

    #[test]
    fn histogram_cells_blend_quantiles() {
        let mut t = DistTable::new();
        let lo = Histogram::from_samples(&[10.0, 10.0, 10.0], 1.0);
        let hi = Histogram::from_samples(&[20.0, 20.0, 20.0], 1.0);
        t.insert(
            DistKey {
                op: Op::Isend,
                size: 100,
                contention: 1,
            },
            CommDist::Hist(lo),
        );
        t.insert(
            DistKey {
                op: Op::Isend,
                size: 100,
                contention: 3,
            },
            CommDist::Hist(hi),
        );
        let mid = t.quantile_at(Op::Isend, 100.0, 2.0, 0.5).unwrap();
        assert!((mid - 15.0).abs() < 1e-9, "got {mid}");
    }

    #[test]
    fn merge_overrides_and_extends() {
        let mut a = point_table();
        let mut b = DistTable::new();
        b.insert(
            DistKey {
                op: Op::Isend,
                size: 100,
                contention: 1,
            },
            CommDist::Point(7.0),
        );
        b.insert(
            DistKey {
                op: Op::Barrier,
                size: 0,
                contention: 4,
            },
            CommDist::Point(9.0),
        );
        a.merge(&b);
        assert_eq!(a.mean_at(Op::Isend, 100.0, 1.0), Some(7.0));
        assert_eq!(a.mean_at(Op::Barrier, 0.0, 4.0), Some(9.0));
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn fitted_table_replaces_histograms_and_preserves_moments() {
        let mut t = DistTable::new();
        let xs: Vec<f64> = (0..2000)
            .map(|i| 1.0 + ((i * 37) % 100) as f64 * 0.01)
            .collect();
        t.insert(
            DistKey {
                op: Op::Isend,
                size: 1024,
                contention: 4,
            },
            CommDist::Hist(Histogram::from_samples(&xs, 0.01)),
        );
        t.insert(
            DistKey {
                op: Op::Barrier,
                size: 0,
                contention: 4,
            },
            CommDist::Point(2.0),
        );
        let f = t.fitted();
        assert_eq!(f.len(), 2);
        assert!(matches!(
            f.get(&DistKey {
                op: Op::Isend,
                size: 1024,
                contention: 4
            }),
            Some(CommDist::Fit(_))
        ));
        assert!(matches!(
            f.get(&DistKey {
                op: Op::Barrier,
                size: 0,
                contention: 4
            }),
            Some(CommDist::Point(_))
        ));
        // The fitted mean matches the data mean (method of moments).
        let m_h = t.mean_at(Op::Isend, 1024.0, 4.0).unwrap();
        let m_f = f.mean_at(Op::Isend, 1024.0, 4.0).unwrap();
        assert!((m_h - m_f).abs() / m_h < 1e-9);
    }

    #[test]
    fn iter_is_deterministic_and_complete() {
        let t = point_table();
        let keys: Vec<DistKey> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys.len(), 4);
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn op_names_roundtrip() {
        for op in Op::ALL {
            assert_eq!(Op::from_name(op.name()), Some(op));
        }
        assert_eq!(Op::from_name("nonsense"), None);
    }
}
