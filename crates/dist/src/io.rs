//! Compact text serialisation of benchmark databases (`.dist` files).
//!
//! MPIBench runs are expensive (a full Figure-1 sweep simulates millions of
//! frames), so benchmark results are persisted and reloaded by PEVPM and the
//! figure-regeneration benches. The format is line-oriented, versioned and
//! human-inspectable:
//!
//! ```text
//! PEVPM-DIST v1
//! entry op=isend size=1024 contention=32
//! hist origin=0.000132 width=0.000001
//! summary count=1000 mean=2.1e-4 m2=3e-9 min=1.3e-4 max=9e-4 sum=0.21
//! counts 0 0 17 131 ...
//! entry op=barrier size=0 contention=64
//! point value=0.00042
//! entry op=send size=65536 contention=1
//! fit kind=gamma shift=0.005 p1=2.0 p2=0.001
//! ```
//!
//! Counts use run-length encoding `NxV` for runs of equal values, because
//! contention histograms are mostly zeros between the main mass and the RTO
//! outlier bins (200 ms away at microsecond bin widths).

use crate::fit::{FitKind, ParametricFit};
use crate::histogram::Histogram;
use crate::summary::Summary;
use crate::table::{CommDist, DistKey, DistTable, Op};
use std::fmt::Write as _;

/// Errors arising while parsing a `.dist` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Serialise a table to the `.dist` text format.
pub fn write_table(table: &DistTable) -> String {
    let mut out = String::from("PEVPM-DIST v1\n");
    for (key, dist) in table.iter() {
        let _ = writeln!(
            out,
            "entry op={} size={} contention={}",
            key.op, key.size, key.contention
        );
        match dist {
            CommDist::Hist(h) => {
                let _ = writeln!(
                    out,
                    "hist origin={:e} width={:e}",
                    h.origin(),
                    h.bin_width()
                );
                let (count, mean, m2, min, max, sum) = h.summary().to_parts();
                let _ = writeln!(
                    out,
                    "summary count={count} mean={mean:e} m2={m2:e} min={min:e} max={max:e} sum={sum:e}"
                );
                out.push_str("counts");
                for (value, run) in run_length(h.counts()) {
                    if run == 1 {
                        let _ = write!(out, " {value}");
                    } else {
                        let _ = write!(out, " {run}x{value}");
                    }
                }
                out.push('\n');
            }
            CommDist::Fit(f) => {
                let kind = match f.kind {
                    FitKind::ShiftedExponential => "exp",
                    FitKind::ShiftedLogNormal => "lognormal",
                    FitKind::ShiftedGamma => "gamma",
                };
                let _ = writeln!(
                    out,
                    "fit kind={kind} shift={:e} p1={:e} p2={:e}",
                    f.shift, f.p1, f.p2
                );
            }
            CommDist::Point(v) => {
                let _ = writeln!(out, "point value={v:e}");
            }
        }
    }
    out
}

/// Parse a `.dist` text document back into a table.
pub fn read_table(text: &str) -> Result<DistTable, ParseError> {
    let mut lines = text.lines().enumerate().peekable();
    let (_, header) = lines.next().ok_or_else(|| err(1, "empty document"))?;
    if header.trim() != "PEVPM-DIST v1" {
        return Err(err(1, format!("bad header {header:?}")));
    }
    let mut table = DistTable::new();
    while let Some((idx0, line)) = lines.next() {
        let lineno = idx0 + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let tag = fields
            .next()
            .ok_or_else(|| err(lineno, "empty entry line"))?;
        if tag != "entry" {
            return Err(err(lineno, format!("expected 'entry', got {tag:?}")));
        }
        let kv = parse_kv(fields, lineno)?;
        let op_name = kv_get(&kv, "op", lineno)?;
        let op =
            Op::from_name(op_name).ok_or_else(|| err(lineno, format!("unknown op {op_name:?}")))?;
        let size: u64 = parse_num(kv_get(&kv, "size", lineno)?, lineno)?;
        let contention: u32 = parse_num(kv_get(&kv, "contention", lineno)?, lineno)?;
        let key = DistKey {
            op,
            size,
            contention,
        };

        let (idx0, body) = lines
            .next()
            .ok_or_else(|| err(lineno, "entry missing body"))?;
        let lineno = idx0 + 1;
        let body = body.trim();
        let mut fields = body.split_whitespace();
        let tag = fields
            .next()
            .ok_or_else(|| err(lineno, "empty body line"))?;
        let dist = match tag {
            "point" => {
                let kv = parse_kv(fields, lineno)?;
                CommDist::Point(parse_num(kv_get(&kv, "value", lineno)?, lineno)?)
            }
            "fit" => {
                let kv = parse_kv(fields, lineno)?;
                let kind = match kv_get(&kv, "kind", lineno)? {
                    "exp" => FitKind::ShiftedExponential,
                    "lognormal" => FitKind::ShiftedLogNormal,
                    "gamma" => FitKind::ShiftedGamma,
                    other => return Err(err(lineno, format!("unknown fit kind {other:?}"))),
                };
                CommDist::Fit(ParametricFit {
                    kind,
                    shift: parse_num(kv_get(&kv, "shift", lineno)?, lineno)?,
                    p1: parse_num(kv_get(&kv, "p1", lineno)?, lineno)?,
                    p2: parse_num(kv_get(&kv, "p2", lineno)?, lineno)?,
                })
            }
            "hist" => {
                let kv = parse_kv(fields, lineno)?;
                let origin: f64 = parse_num(kv_get(&kv, "origin", lineno)?, lineno)?;
                let width: f64 = parse_num(kv_get(&kv, "width", lineno)?, lineno)?;

                let (idx0, sline) = lines
                    .next()
                    .ok_or_else(|| err(lineno, "hist missing summary line"))?;
                let slineno = idx0 + 1;
                let mut sfields = sline.split_whitespace();
                if sfields.next() != Some("summary") {
                    return Err(err(slineno, "expected 'summary' line"));
                }
                let kv = parse_kv(sfields, slineno)?;
                let summary = Summary::from_parts(
                    parse_num(kv_get(&kv, "count", slineno)?, slineno)?,
                    parse_num(kv_get(&kv, "mean", slineno)?, slineno)?,
                    parse_num(kv_get(&kv, "m2", slineno)?, slineno)?,
                    parse_num(kv_get(&kv, "min", slineno)?, slineno)?,
                    parse_num(kv_get(&kv, "max", slineno)?, slineno)?,
                    parse_num(kv_get(&kv, "sum", slineno)?, slineno)?,
                );

                let (idx0, cline) = lines
                    .next()
                    .ok_or_else(|| err(slineno, "hist missing counts line"))?;
                let clineno = idx0 + 1;
                let mut cfields = cline.split_whitespace();
                if cfields.next() != Some("counts") {
                    return Err(err(clineno, "expected 'counts' line"));
                }
                let mut counts: Vec<u64> = Vec::new();
                for tok in cfields {
                    if let Some((run, value)) = tok.split_once('x') {
                        let run: usize = parse_num(run, clineno)?;
                        let value: u64 = parse_num(value, clineno)?;
                        counts.extend(std::iter::repeat_n(value, run));
                    } else {
                        counts.push(parse_num(tok, clineno)?);
                    }
                }
                let h = Histogram::from_parts(origin, width, counts, summary);
                if h.is_empty() {
                    return Err(err(
                        clineno,
                        format!(
                            "empty histogram for op={} size={} contention={}: \
                             nothing to sample from",
                            key.op, key.size, key.contention
                        ),
                    ));
                }
                CommDist::Hist(h)
            }
            other => return Err(err(lineno, format!("unknown body tag {other:?}"))),
        };
        table.insert(key, dist);
    }
    Ok(table)
}

/// Error loading a `.dist` file: always names the offending file, so a
/// CLI can print it verbatim without wrapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadError {
    /// Path of the file that failed to load.
    pub path: std::path::PathBuf,
    /// What went wrong (I/O error text or `line N: …` parse error).
    pub message: String,
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for LoadError {}

/// Save a table to a file.
pub fn save_table(table: &DistTable, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, write_table(table))
}

/// Load a table from a file. Errors name the file and, for parse
/// failures, the 1-based line number.
pub fn load_table(path: &std::path::Path) -> Result<DistTable, LoadError> {
    let text = std::fs::read_to_string(path).map_err(|e| LoadError {
        path: path.to_path_buf(),
        message: e.to_string(),
    })?;
    read_table(&text).map_err(|e| LoadError {
        path: path.to_path_buf(),
        message: e.to_string(),
    })
}

fn run_length(counts: &[u64]) -> Vec<(u64, usize)> {
    let mut out = Vec::new();
    for &c in counts {
        match out.last_mut() {
            Some((v, n)) if *v == c => *n += 1,
            _ => out.push((c, 1)),
        }
    }
    out
}

fn parse_kv<'a>(
    fields: impl Iterator<Item = &'a str>,
    lineno: usize,
) -> Result<Vec<(&'a str, &'a str)>, ParseError> {
    fields
        .map(|f| {
            f.split_once('=')
                .ok_or_else(|| err(lineno, format!("expected key=value, got {f:?}")))
        })
        .collect()
}

fn kv_get<'a>(kv: &[(&'a str, &'a str)], key: &str, lineno: usize) -> Result<&'a str, ParseError> {
    kv.iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| err(lineno, format!("missing field {key:?}")))
}

fn parse_num<T: std::str::FromStr>(s: &str, lineno: usize) -> Result<T, ParseError> {
    s.parse()
        .map_err(|_| err(lineno, format!("bad number {s:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> DistTable {
        let mut t = DistTable::new();
        let mut h = Histogram::new(1.0e-4, 1.0e-6);
        for i in 0..100 {
            h.add(1.0e-4 + (i % 13) as f64 * 3.0e-6);
        }
        h.add(0.2); // RTO outlier far away -> exercises run-length zeros
        t.insert(
            DistKey {
                op: Op::Isend,
                size: 1024,
                contention: 32,
            },
            CommDist::Hist(h),
        );
        t.insert(
            DistKey {
                op: Op::Barrier,
                size: 0,
                contention: 64,
            },
            CommDist::Point(4.2e-4),
        );
        t.insert(
            DistKey {
                op: Op::Send,
                size: 65536,
                contention: 1,
            },
            CommDist::Fit(ParametricFit {
                kind: FitKind::ShiftedGamma,
                shift: 5.0e-3,
                p1: 2.0,
                p2: 1.0e-3,
            }),
        );
        t
    }

    #[test]
    fn roundtrip_preserves_table() {
        let t = sample_table();
        let text = write_table(&t);
        let back = read_table(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn roundtrip_twice_is_stable() {
        let t = sample_table();
        let a = write_table(&t);
        let b = write_table(&read_table(&a).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn run_length_encoding_compresses_outlier_gap() {
        let t = sample_table();
        let text = write_table(&t);
        // The gap between ~100 µs mass and the 0.2 s outlier spans ~200k bins;
        // RLE must keep the document small.
        assert!(
            text.len() < 20_000,
            "document unexpectedly large: {}",
            text.len()
        );
        assert!(text.contains('x'), "expected run-length tokens");
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_table("NOPE v9\n").is_err());
        assert!(read_table("").is_err());
    }

    #[test]
    fn rejects_unknown_op() {
        let doc = "PEVPM-DIST v1\nentry op=warp size=1 contention=1\npoint value=1\n";
        let e = read_table(doc).unwrap_err();
        assert!(e.message.contains("unknown op"), "{e}");
    }

    #[test]
    fn rejects_missing_fields() {
        let doc = "PEVPM-DIST v1\nentry op=send contention=1\npoint value=1\n";
        let e = read_table(doc).unwrap_err();
        assert!(e.message.contains("size"), "{e}");
    }

    #[test]
    fn rejects_truncated_hist() {
        let doc = "PEVPM-DIST v1\nentry op=send size=8 contention=1\nhist origin=0 width=1e-6\n";
        assert!(read_table(doc).is_err());
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let doc = "PEVPM-DIST v1\n\n# comment\nentry op=send size=8 contention=1\npoint value=2\n";
        let t = read_table(doc).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.get(&DistKey {
                op: Op::Send,
                size: 8,
                contention: 1
            }),
            Some(&CommDist::Point(2.0))
        );
    }

    #[test]
    fn file_roundtrip() {
        let t = sample_table();
        let dir = std::env::temp_dir().join("pevpm_dist_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.dist");
        save_table(&t, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(t, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_empty_histogram() {
        let doc = "PEVPM-DIST v1\n\
                   entry op=send size=8 contention=1\n\
                   hist origin=0 width=1e-6\n\
                   summary count=0 mean=0 m2=0 min=0 max=0 sum=0\n\
                   counts\n";
        let e = read_table(doc).unwrap_err();
        assert!(e.message.contains("empty histogram"), "{e}");
    }

    #[test]
    fn load_errors_name_the_file() {
        let missing = std::path::Path::new("/no/such/dir/table.dist");
        let e = load_table(missing).unwrap_err();
        assert!(e.to_string().contains("table.dist"), "{e}");

        let dir = std::env::temp_dir().join("pevpm_dist_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.dist");
        std::fs::write(&path, "PEVPM-DIST v1\nentry op=warp size=1 contention=1\n").unwrap();
        let e = load_table(&path).unwrap_err();
        let text = e.to_string();
        assert!(text.contains("corrupt.dist"), "{text}");
        assert!(text.contains("line 2"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_error_reports_line_numbers() {
        let doc = "PEVPM-DIST v1\nentry op=send size=8 contention=1\npoint value=abc\n";
        let e = read_table(doc).unwrap_err();
        assert_eq!(e.line, 3);
    }

    /// A file cut off mid-document (interrupted benchmark run, partial
    /// copy) must point at the line where the document ends, for every
    /// truncation point of a real serialised table.
    #[test]
    fn truncated_files_report_the_final_line() {
        let full = write_table(&sample_table());
        let dir = std::env::temp_dir().join("pevpm_dist_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.dist");
        let lines: Vec<&str> = full.lines().collect();
        // Cut after each prefix that ends on an entry or hist line —
        // those leave a dangling record the parser must flag.
        for cut in 1..lines.len() {
            let doc: String = lines[..cut].iter().map(|l| format!("{l}\n")).collect();
            std::fs::write(&path, &doc).unwrap();
            match load_table(&path) {
                Ok(t) => {
                    // A cut between complete records parses; it must
                    // just hold fewer entries.
                    assert!(t.len() < sample_table().len(), "cut {cut}");
                }
                Err(e) => {
                    let text = e.to_string();
                    assert!(text.contains("truncated.dist"), "cut {cut}: {text}");
                    // The reported line must be within the truncated
                    // document — the parser cannot blame a line that
                    // does not exist.
                    let reported: usize = text
                        .split("line ")
                        .nth(1)
                        .and_then(|s| s.split(&[':', ' '][..]).next().and_then(|n| n.parse().ok()))
                        .unwrap_or_else(|| panic!("cut {cut}: no line in {text:?}"));
                    assert!(reported <= cut, "cut {cut}: {text}");
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// A non-UTF8 file (binary garbage handed to `--table`) must fail
    /// with the file name and the encoding problem, not a line number —
    /// there are no lines to blame before decoding succeeds.
    #[test]
    fn non_utf8_files_report_encoding_not_a_line() {
        let dir = std::env::temp_dir().join("pevpm_dist_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("binary.dist");
        std::fs::write(&path, [0x50u8, 0x45, 0x56, 0xff, 0xfe, 0x00, 0x80]).unwrap();
        let e = load_table(&path).unwrap_err();
        let text = e.to_string();
        assert!(text.contains("binary.dist"), "{text}");
        assert!(
            text.to_lowercase().contains("utf-8") || text.to_lowercase().contains("utf8"),
            "{text}"
        );
        assert!(!text.contains("line "), "{text}");
        std::fs::remove_file(&path).ok();
    }
}
