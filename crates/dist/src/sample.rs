//! The sampling abstraction PEVPM evaluates against.
//!
//! PEVPM's key idea is that the time of each communication event is obtained
//! by Monte-Carlo sampling. The *baseline* prediction modes the paper
//! compares against (minimum or average single-point values, §6) are modelled
//! here as degenerate point distributions, so the virtual machine is
//! completely agnostic to which prediction mode is in force.

use rand::Rng;

/// Something communication times can be drawn from.
pub trait Sampler {
    /// Draw one value (seconds).
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
    /// The mean of the underlying distribution.
    fn mean(&self) -> f64;
    /// Inverse CDF at probability `q` (clamped to `[0, 1]`).
    fn quantile(&self, q: f64) -> f64;
}

/// Which single-point statistic a degenerate distribution reports.
///
/// These correspond to the paper's "simplistic" prediction inputs: the
/// minimum (contention-free) time and the average time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PointKind {
    /// The minimum observed time (the paper's `min` curves; what an ideal
    /// ping-pong measures in the absence of contention).
    Minimum,
    /// The arithmetic mean (what Mpptest/SKaMPI/Pallas report).
    Average,
}

impl std::fmt::Display for PointKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PointKind::Minimum => write!(f, "min"),
            PointKind::Average => write!(f, "avg"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_kind_display() {
        assert_eq!(PointKind::Minimum.to_string(), "min");
        assert_eq!(PointKind::Average.to_string(), "avg");
    }
}
