//! Streaming summary statistics.
//!
//! [`Summary`] uses Welford's online algorithm so it can accumulate millions
//! of observations in O(1) memory with good numerical behaviour. It is used
//! by MPIBench to report the min/average rows that conventional benchmarks
//! (Mpptest, SKaMPI, Pallas) would produce, alongside the full histograms.

/// Online summary of a stream of `f64` observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's `M2`).
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Create an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Build a summary from a slice in one pass.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Summary::new();
        for &x in xs {
            s.add(x);
        }
        s
    }

    /// Record one observation.
    pub fn add(&mut self, x: f64) {
        debug_assert!(
            x.is_finite(),
            "Summary::add requires finite values, got {x}"
        );
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merge another summary into this one (parallel Welford combination).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Minimum observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Population variance, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Sample (Bessel-corrected) variance, or `None` if fewer than 2 points.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Standard error of the mean (uses sample variance).
    pub fn stderr_mean(&self) -> Option<f64> {
        self.sample_variance()
            .map(|v| (v / self.count as f64).sqrt())
    }

    /// Coefficient of variation (stddev / mean), or `None` if mean is 0/empty.
    pub fn cv(&self) -> Option<f64> {
        match (self.stddev(), self.mean()) {
            (Some(s), Some(m)) if m != 0.0 => Some(s / m),
            _ => None,
        }
    }

    /// Decompose into `(count, mean, m2, min, max, sum)` for serialisation.
    pub fn to_parts(&self) -> (u64, f64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max, self.sum)
    }

    /// Reassemble from the parts produced by [`Summary::to_parts`].
    pub fn from_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64, sum: f64) -> Self {
        Summary {
            count,
            mean,
            m2,
            min,
            max,
            sum,
        }
    }
}

/// Compute the `q`-quantile (0 ≤ q ≤ 1) of a **sorted** slice using linear
/// interpolation between order statistics (type-7 quantile, the R default).
///
/// Panics in debug builds if the slice is not sorted.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "slice must be sorted"
    );
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median of a sorted slice.
pub fn median_sorted(sorted: &[f64]) -> Option<f64> {
    quantile_sorted(sorted, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_reports_none() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.stddev(), None);
    }

    #[test]
    fn single_value() {
        let mut s = Summary::new();
        s.add(3.5);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), Some(3.5));
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
        assert_eq!(s.variance(), Some(0.0));
        assert_eq!(s.sample_variance(), None);
    }

    #[test]
    fn known_moments() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), Some(5.0));
        assert!((s.variance().unwrap() - 4.0).abs() < 1e-12);
        assert!((s.stddev().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let whole = Summary::from_slice(&xs);
        let mut a = Summary::from_slice(&xs[..37]);
        let b = Summary::from_slice(&xs[37..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_slice(&[1.0, 2.0, 3.0]);
        let before = s.clone();
        s.merge(&Summary::new());
        assert_eq!(s, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&xs, 0.0), Some(1.0));
        assert_eq!(quantile_sorted(&xs, 1.0), Some(4.0));
        assert_eq!(quantile_sorted(&xs, 0.5), Some(2.5));
        assert_eq!(median_sorted(&xs), Some(2.5));
        assert_eq!(quantile_sorted(&[], 0.5), None);
    }

    #[test]
    fn quantile_clamps_out_of_range_q() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(quantile_sorted(&xs, -1.0), Some(1.0));
        assert_eq!(quantile_sorted(&xs, 2.0), Some(3.0));
    }

    #[test]
    fn stderr_shrinks_with_n() {
        let a = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let many: Vec<f64> = std::iter::repeat_n([1.0, 2.0, 3.0, 4.0], 100)
            .flatten()
            .collect();
        let b = Summary::from_slice(&many);
        assert!(b.stderr_mean().unwrap() < a.stderr_mean().unwrap());
    }
}
