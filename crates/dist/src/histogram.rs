//! Fixed-bin-width histograms of communication times.
//!
//! A [`Histogram`] is the concrete representation of the "performance
//! distributions" (plotted as PDFs) that MPIBench produces and that PEVPM
//! samples from. Bins are half-open intervals `[origin + i*width, origin +
//! (i+1)*width)`. Observations below `origin` are clamped into bin 0 (they
//! can only arise from clock-sync error injection); observations beyond the
//! last bin extend the histogram, so the tail — including the retransmission
//! timeout outliers the paper highlights — is always retained exactly.

use crate::summary::Summary;
use rand::Rng;

/// Maximum number of bins a histogram will allocate. Guards against
/// degenerate bin widths blowing up memory; outliers beyond this range are
/// clamped into the final bin (and still included in the summary).
pub const MAX_BINS: usize = 4_000_000;

/// A fixed-bin-width histogram over `f64` values (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    origin: f64,
    bin_width: f64,
    counts: Vec<u64>,
    total: u64,
    /// Exact summary of every observation added (not binned).
    summary: Summary,
}

impl Histogram {
    /// Create an empty histogram with bins starting at `origin` and the
    /// given `bin_width`.
    ///
    /// # Panics
    /// Panics if `bin_width` is not strictly positive and finite.
    pub fn new(origin: f64, bin_width: f64) -> Self {
        assert!(
            bin_width.is_finite() && bin_width > 0.0,
            "bin_width must be positive and finite, got {bin_width}"
        );
        assert!(origin.is_finite(), "origin must be finite");
        Histogram {
            origin,
            bin_width,
            counts: Vec::new(),
            total: 0,
            summary: Summary::new(),
        }
    }

    /// Build a histogram from samples, choosing the origin as the sample
    /// minimum and the given bin width.
    pub fn from_samples(samples: &[f64], bin_width: f64) -> Self {
        let origin = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let origin = if origin.is_finite() { origin } else { 0.0 };
        let mut h = Histogram::new(origin, bin_width);
        for &s in samples {
            h.add(s);
        }
        h
    }

    /// Bin start coordinate (left edge of bin 0).
    pub fn origin(&self) -> f64 {
        self.origin
    }

    /// Width of every bin.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Number of allocated bins.
    pub fn num_bins(&self) -> usize {
        self.counts.len()
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether the histogram has no observations.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The exact (unbinned) summary statistics of all added observations.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Index of the bin containing `x` (after clamping below `origin` and
    /// above [`MAX_BINS`]).
    fn bin_index(&self, x: f64) -> usize {
        if x <= self.origin {
            return 0;
        }
        let idx = ((x - self.origin) / self.bin_width) as usize;
        idx.min(MAX_BINS - 1)
    }

    /// Left edge of bin `i`.
    pub fn bin_left(&self, i: usize) -> f64 {
        self.origin + i as f64 * self.bin_width
    }

    /// Midpoint of bin `i`.
    pub fn bin_mid(&self, i: usize) -> f64 {
        self.origin + (i as f64 + 0.5) * self.bin_width
    }

    /// Record an observation.
    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "Histogram::add requires finite values");
        let idx = self.bin_index(x);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
        self.summary.add(x);
    }

    /// Merge another histogram with identical geometry into this one.
    ///
    /// # Panics
    /// Panics if origins or bin widths differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.origin, other.origin, "histogram origins differ");
        assert_eq!(
            self.bin_width, other.bin_width,
            "histogram bin widths differ"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
        self.summary.merge(&other.summary);
    }

    /// Probability mass of bin `i` (0 if out of range or empty histogram).
    pub fn pdf(&self, i: usize) -> f64 {
        if self.total == 0 || i >= self.counts.len() {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Iterate over `(bin_midpoint, probability_mass)` pairs, the series
    /// plotted in the paper's Figures 3 and 4.
    pub fn pdf_series(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        (0..self.counts.len()).map(|i| (self.bin_mid(i), self.pdf(i)))
    }

    /// Cumulative probability of observing a value in bins `0..=i`.
    pub fn cdf(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let end = (i + 1).min(self.counts.len());
        let c: u64 = self.counts[..end].iter().sum();
        c as f64 / self.total as f64
    }

    /// Mode: midpoint of the most populated bin (first on ties).
    pub fn mode(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let (idx, _) = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, c)| (*c, std::cmp::Reverse(i)))?;
        Some(self.bin_mid(idx))
    }

    /// Inverse CDF at probability `q` with linear interpolation *within* the
    /// selected bin. `quantile(0.0)` = exact observed minimum, `quantile(1.0)`
    /// = exact observed maximum (from the unbinned summary), so the support
    /// of sampled values always matches the support of the data.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.summary.min();
        }
        if q == 1.0 {
            return self.summary.max();
        }
        let target = q * self.total as f64;
        let mut cum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c as f64;
            if next >= target {
                // Interpolate within bin i.
                let frac = (target - cum) / c as f64;
                let lo = self
                    .bin_left(i)
                    .max(self.summary.min().unwrap_or(self.bin_left(i)));
                let hi = (self.bin_left(i) + self.bin_width)
                    .min(self.summary.max().unwrap_or(f64::INFINITY));
                let hi = hi.max(lo);
                return Some(lo + frac * (hi - lo));
            }
            cum = next;
        }
        self.summary.max()
    }

    /// Draw a random value distributed according to the histogram
    /// (inverse-CDF a.k.a. Smirnov transform with intra-bin interpolation).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        self.quantile(rng.gen::<f64>())
    }

    /// Approximate mean computed from the binned representation (bin
    /// midpoints weighted by mass). Differs from `summary().mean()` by at
    /// most half a bin width.
    pub fn binned_mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let s: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * self.bin_mid(i))
            .sum();
        Some(s / self.total as f64)
    }

    /// Fraction of mass at or beyond `x` — used to quantify outlier tails
    /// (e.g. retransmission-timeout events).
    pub fn tail_mass(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let first = self.bin_index(x);
        let c: u64 = self.counts[first.min(self.counts.len())..].iter().sum();
        c as f64 / self.total as f64
    }

    /// Reassemble a histogram from serialised parts. `total` is recomputed
    /// from the counts; the summary carries the exact statistics.
    pub fn from_parts(origin: f64, bin_width: f64, counts: Vec<u64>, summary: Summary) -> Self {
        let total = counts.iter().sum();
        let mut h = Histogram::new(origin, bin_width);
        h.counts = counts;
        h.total = total;
        h.summary = summary;
        h
    }

    /// Rebin into a histogram with `factor`-times coarser bins (factor ≥ 1).
    /// Used by the bin-granularity ablation (Abl-bins).
    pub fn coarsen(&self, factor: usize) -> Histogram {
        assert!(factor >= 1, "coarsen factor must be >= 1");
        let mut h = Histogram::new(self.origin, self.bin_width * factor as f64);
        if !self.counts.is_empty() {
            h.counts = vec![0; self.counts.len().div_ceil(factor)];
            for (i, &c) in self.counts.iter().enumerate() {
                h.counts[i / factor] += c;
            }
        }
        h.total = self.total;
        h.summary = self.summary.clone();
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn add_places_values_in_correct_bins() {
        let mut h = Histogram::new(0.0, 1.0);
        for x in [0.1, 0.9, 1.0, 1.5, 3.99] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[2, 2, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn below_origin_clamps_to_first_bin() {
        let mut h = Histogram::new(10.0, 1.0);
        h.add(5.0);
        assert_eq!(h.counts(), &[1]);
        // Summary keeps the exact value.
        assert_eq!(h.summary().min(), Some(5.0));
    }

    #[test]
    fn pdf_and_cdf_are_consistent() {
        let mut h = Histogram::new(0.0, 1.0);
        for x in [0.5, 0.5, 1.5, 2.5] {
            h.add(x);
        }
        assert!((h.pdf(0) - 0.5).abs() < 1e-12);
        assert!((h.pdf(1) - 0.25).abs() < 1e-12);
        assert!((h.cdf(0) - 0.5).abs() < 1e-12);
        assert!((h.cdf(2) - 1.0).abs() < 1e-12);
        let mass: f64 = h.pdf_series().map(|(_, p)| p).sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_endpoints_match_exact_extremes() {
        let samples = [1.02, 3.7, 2.2, 9.9, 4.4];
        let h = Histogram::from_samples(&samples, 0.5);
        assert_eq!(h.quantile(0.0), Some(1.02));
        assert_eq!(h.quantile(1.0), Some(9.9));
    }

    #[test]
    fn quantile_is_monotone() {
        let samples: Vec<f64> = (0..1000).map(|i| (i as f64 * 37.0) % 100.0).collect();
        let h = Histogram::from_samples(&samples, 1.0);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let q = h.quantile(i as f64 / 100.0).unwrap();
            assert!(q >= prev - 1e-12, "quantile not monotone at {i}");
            prev = q;
        }
    }

    #[test]
    fn sampling_reproduces_mean() {
        let samples: Vec<f64> = (0..2000).map(|i| 100.0 + (i % 50) as f64).collect();
        let h = Histogram::from_samples(&samples, 1.0);
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 20000;
        let mean: f64 = (0..n).map(|_| h.sample(&mut rng).unwrap()).sum::<f64>() / n as f64;
        let true_mean = h.summary().mean().unwrap();
        assert!(
            (mean - true_mean).abs() / true_mean < 0.01,
            "sampled mean {mean} vs true {true_mean}"
        );
    }

    #[test]
    fn merge_matches_bulk_build() {
        let a: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let b: Vec<f64> = (0..100).map(|i| 5.0 + i as f64 * 0.07).collect();
        let mut h1 = Histogram::new(0.0, 0.25);
        for &x in &a {
            h1.add(x);
        }
        let mut h2 = Histogram::new(0.0, 0.25);
        for &x in &b {
            h2.add(x);
        }
        h1.merge(&h2);

        let mut whole = Histogram::new(0.0, 0.25);
        for &x in a.iter().chain(b.iter()) {
            whole.add(x);
        }
        assert_eq!(h1.counts(), whole.counts());
        assert_eq!(h1.total(), whole.total());
        // Welford merge differs from sequential accumulation only by fp
        // rounding; compare moments with tolerance.
        let m1 = h1.summary().mean().unwrap();
        let m2 = whole.summary().mean().unwrap();
        assert!((m1 - m2).abs() < 1e-9);
        assert!(
            (h1.summary().variance().unwrap() - whole.summary().variance().unwrap()).abs() < 1e-9
        );
    }

    #[test]
    #[should_panic(expected = "bin widths differ")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(0.0, 1.0);
        let b = Histogram::new(0.0, 2.0);
        a.merge(&b);
    }

    #[test]
    fn mode_picks_heaviest_bin() {
        let mut h = Histogram::new(0.0, 1.0);
        for x in [0.5, 2.5, 2.6, 2.7, 5.5] {
            h.add(x);
        }
        assert_eq!(h.mode(), Some(2.5));
    }

    #[test]
    fn tail_mass_counts_outliers() {
        let mut h = Histogram::new(0.0, 0.001);
        for _ in 0..99 {
            h.add(0.0001);
        }
        h.add(0.2); // RTO-like outlier
        assert!((h.tail_mass(0.1) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn coarsen_preserves_total_and_summary() {
        let samples: Vec<f64> = (0..500).map(|i| (i as f64).sqrt()).collect();
        let h = Histogram::from_samples(&samples, 0.01);
        let c = h.coarsen(10);
        assert_eq!(c.total(), h.total());
        assert_eq!(c.summary(), h.summary());
        assert!((c.bin_width() - 0.1).abs() < 1e-12);
        assert_eq!(
            c.counts().iter().sum::<u64>(),
            h.counts().iter().sum::<u64>()
        );
    }

    #[test]
    fn binned_mean_close_to_exact_mean() {
        let samples: Vec<f64> = (0..1000).map(|i| 10.0 + (i % 97) as f64 * 0.013).collect();
        let h = Histogram::from_samples(&samples, 0.05);
        let exact = h.summary().mean().unwrap();
        let binned = h.binned_mean().unwrap();
        assert!((exact - binned).abs() <= 0.05 / 2.0 + 1e-9);
    }

    #[test]
    fn empty_histogram_behaviour() {
        let h = Histogram::new(0.0, 1.0);
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mode(), None);
        assert_eq!(h.binned_mean(), None);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(h.sample(&mut rng), None);
    }
}
