//! Exact empirical cumulative distribution functions.
//!
//! Where [`crate::Histogram`] trades exactness for O(1) memory per bin,
//! [`Ecdf`] retains the full sorted sample set. It is used in tests and in
//! the bin-granularity ablation to quantify how much information binning
//! loses, via the Kolmogorov–Smirnov distance.

/// An empirical CDF over a retained, sorted sample set.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (copied and sorted; NaNs are rejected).
    ///
    /// # Panics
    /// Panics if any sample is NaN.
    pub fn new(samples: &[f64]) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "Ecdf rejects NaN samples"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ecdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// F(x) = P(X <= x).
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (type-7 interpolated quantile).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        crate::summary::quantile_sorted(&self.sorted, q)
    }

    /// Two-sample Kolmogorov–Smirnov statistic: sup |F1(x) - F2(x)|.
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        if self.is_empty() || other.is_empty() {
            return if self.is_empty() && other.is_empty() {
                0.0
            } else {
                1.0
            };
        }
        let mut d: f64 = 0.0;
        // The supremum is attained at a sample point of either set.
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            d = d.max((self.cdf(x) - other.cdf(x)).abs());
        }
        d
    }

    /// One-sample KS statistic against an arbitrary CDF function.
    pub fn ks_distance_to(&self, cdf: impl Fn(f64) -> f64) -> f64 {
        let n = self.sorted.len();
        if n == 0 {
            return 0.0;
        }
        let mut d: f64 = 0.0;
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = cdf(x);
            // Compare against the ECDF immediately before and at x.
            d = d.max((f - i as f64 / n as f64).abs());
            d = d.max((f - (i + 1) as f64 / n as f64).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_steps_at_samples() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
        assert_eq!(e.cdf(100.0), 1.0);
    }

    #[test]
    fn identical_samples_have_zero_ks() {
        let a = Ecdf::new(&[3.0, 1.0, 2.0]);
        let b = Ecdf::new(&[1.0, 2.0, 3.0]);
        assert_eq!(a.ks_distance(&b), 0.0);
    }

    #[test]
    fn disjoint_samples_have_ks_one() {
        let a = Ecdf::new(&[1.0, 2.0]);
        let b = Ecdf::new(&[10.0, 20.0]);
        assert_eq!(a.ks_distance(&b), 1.0);
    }

    #[test]
    fn ks_is_symmetric() {
        let a = Ecdf::new(&[1.0, 5.0, 9.0, 12.0]);
        let b = Ecdf::new(&[2.0, 5.5, 8.0]);
        assert!((a.ks_distance(&b) - b.ks_distance(&a)).abs() < 1e-15);
    }

    #[test]
    fn one_sample_ks_against_uniform() {
        // Samples exactly at uniform quantiles: KS should be small (~1/2n).
        let n = 1000;
        let xs: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let e = Ecdf::new(&xs);
        let d = e.ks_distance_to(|x| x.clamp(0.0, 1.0));
        assert!(d <= 0.5 / n as f64 + 1e-12, "d = {d}");
    }

    #[test]
    fn quantile_matches_sorted_order() {
        let e = Ecdf::new(&[5.0, 1.0, 3.0]);
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(0.5), Some(3.0));
        assert_eq!(e.quantile(1.0), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Ecdf::new(&[1.0, f64::NAN]);
    }

    #[test]
    fn empty_ecdf() {
        let e = Ecdf::new(&[]);
        assert!(e.is_empty());
        assert_eq!(e.cdf(1.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
        assert_eq!(e.ks_distance(&Ecdf::new(&[])), 0.0);
        assert_eq!(e.ks_distance(&Ecdf::new(&[1.0])), 1.0);
    }
}
