//! The compiled sampling fast path: allocation-free Monte-Carlo draws.
//!
//! [`crate::DistTable`] is the flexible, mutable benchmark database, but its
//! query path allocates four `Vec`s per draw (size axis, size axis as f64,
//! per-column contention axis, neighbour list) and walks histogram counts
//! linearly to invert the CDF. PEVPM draws one sample *per message*, so for
//! a 64-process Jacobi run the interpreted path performs millions of
//! allocations per evaluation.
//!
//! [`CompiledTable`] is an immutable compilation of a `DistTable` that
//! removes all of that:
//!
//! - per-op size axes and per-column contention axes are flattened into
//!   sorted slices, so neighbour selection is pure `partition_point` with
//!   zero allocation;
//! - each [`crate::CommDist`] becomes a [`CompiledDist`]: histograms carry
//!   an inclusive cumulative-count prefix array, turning the inverse CDF
//!   into an exact `O(log bins)` binary search that is **bitwise identical**
//!   to the interpreted linear walk (cumulative counts are integers below
//!   2^53, so the float prefix is exact); parametric fits carry a monotone
//!   quantile lookup table with linear interpolation, replacing the
//!   80-iteration CDF bisection per draw (the exact bisection is retained
//!   for the tail beyond [`LUT_TAIL_Q`] and, with
//!   [`CompileOptions::exact_quantiles`], for every draw);
//! - the up-to-4 blended neighbour sets are cached keyed by the canonical
//!   `(size, contention)` query bits (`-0.0` folds onto `0.0`; NaN is
//!   rejected before keying) — contention is a small-integer scoreboard
//!   population and each program sends a handful of distinct message
//!   sizes, so nearly every draw after the first hits the cache.
//!
//! Compilation also *validates* the table: an empty histogram (nothing to
//! sample) is a hard [`CompileError`] instead of a silent 0.0 draw.
//!
//! The contract, enforced by property tests (`tests/prop_compiled.rs`):
//! for histogram and point distributions, `CompiledTable::sample_at`
//! matches `DistTable::sample_at` **draw-for-draw on the same RNG stream**
//! (bitwise). For `Fit` distributions the LUT introduces a bounded
//! interpolation error: relative error ≤ [`LUT_REL_ERROR`] against the
//! exact bisection for quantiles in `[0, LUT_TAIL_Q]` at the default
//! [`CompileOptions::lut_points`] resolution (tail quantiles always use the
//! exact bisection).

use crate::fit::ParametricFit;
use crate::table::{size_weight, CommDist, DistKey, DistTable, Op};
use rand::Rng;
use std::collections::HashMap;
use std::sync::RwLock;

/// Quantile beyond which compiled `Fit` distributions fall back to the
/// exact bisection instead of the lookup table: the extreme right tail of
/// shifted-exponential/log-normal/gamma fits is too curved for uniform-grid
/// linear interpolation. 127/128 — exactly representable, so the LUT region
/// boundary is stable.
pub const LUT_TAIL_Q: f64 = 0.992_187_5;

/// Documented relative-error bound of the `Fit` quantile LUT against the
/// exact bisection over `q ∈ [0, LUT_TAIL_Q]` at the default
/// [`CompileOptions::lut_points`]. Asserted by `tests/prop_compiled.rs`.
pub const LUT_REL_ERROR: f64 = 1e-3;

/// Blend-cache entries kept per op grid. Real programs query a handful of
/// (size, contention) cells; the cap only guards against degenerate
/// workloads with unbounded distinct queries.
const BLEND_CACHE_CAP: usize = 4096;

/// Errors raised while compiling a [`DistTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A grid cell holds a histogram with no observations: there is nothing
    /// to sample, and silently drawing 0.0 seconds would corrupt
    /// predictions.
    EmptyHistogram {
        /// The offending grid coordinate.
        key: DistKey,
    },
    /// A grid cell carries a NaN or infinite quantity (histogram geometry,
    /// fit parameter, point mass, or a quantile-LUT knot). Sampling it
    /// would propagate the poison into every blended prediction, and the
    /// blend cache cannot key NaN bit-patterns canonically.
    NonFinite {
        /// The offending grid coordinate.
        key: DistKey,
        /// Which quantity was non-finite.
        what: &'static str,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::EmptyHistogram { key } => write!(
                f,
                "empty histogram at op={} size={} contention={}: \
                 nothing to sample from",
                key.op, key.size, key.contention
            ),
            CompileError::NonFinite { key, what } => write!(
                f,
                "non-finite {what} at op={} size={} contention={}: \
                 refusing to compile a poisoned cell",
                key.op, key.size, key.contention
            ),
        }
    }
}

impl std::error::Error for CompileError {}

/// Options controlling table compilation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompileOptions {
    /// Answer every `Fit` quantile with the exact 80-iteration bisection
    /// instead of the lookup table (the CLI's `--exact-quantiles`). Slow;
    /// used to bound LUT error and for bit-exact reproduction of pre-LUT
    /// results.
    pub exact_quantiles: bool,
    /// Knots in each `Fit` quantile lookup table (uniform in `q` over
    /// `[0, LUT_TAIL_Q]`). Must be at least 2; the default (1025) keeps the
    /// relative interpolation error under [`LUT_REL_ERROR`].
    pub lut_points: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            exact_quantiles: false,
            lut_points: 1025,
        }
    }
}

// -------------------------------------------------------------- dists --

/// A histogram compiled for `O(log bins)` exact inverse-CDF evaluation.
///
/// `prefix[i]` is the inclusive cumulative count of bins `0..=i`, stored as
/// `f64`. Counts are integers far below 2^53, so every prefix value is
/// exact and comparisons against `q * total` are bitwise identical to the
/// interpreted running-sum walk in [`crate::Histogram::quantile`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledHist {
    origin: f64,
    bin_width: f64,
    prefix: Vec<f64>,
    total: f64,
    min: f64,
    max: f64,
    mean: f64,
}

impl CompiledHist {
    fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        let target = q * self.total;
        // First bin whose inclusive cumulative count reaches `target`. It
        // necessarily has a positive count (a zero-count bin shares its
        // prefix with its predecessor, so it can never be the *first*
        // crossing), exactly like the interpreted walk's `continue`.
        let i = self.prefix.partition_point(|&p| p < target);
        if i >= self.prefix.len() {
            return self.max;
        }
        let cum = if i == 0 { 0.0 } else { self.prefix[i - 1] };
        let c = self.prefix[i] - cum;
        let frac = (target - cum) / c;
        let left = self.origin + i as f64 * self.bin_width;
        let lo = left.max(self.min);
        let hi = (left + self.bin_width).min(self.max);
        let hi = hi.max(lo);
        lo + frac * (hi - lo)
    }
}

/// A parametric fit compiled to a monotone quantile lookup table.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFit {
    fit: ParametricFit,
    /// Quantile knots at `q = k * LUT_TAIL_Q / (len - 1)`; empty in
    /// exact-quantiles mode.
    lut: Vec<f64>,
    mean: f64,
    min: f64,
}

impl CompiledFit {
    fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return self.fit.shift;
        }
        if self.lut.is_empty() || q > LUT_TAIL_Q {
            return self.fit.quantile(q);
        }
        let t = q * (self.lut.len() - 1) as f64 / LUT_TAIL_Q;
        let i = (t as usize).min(self.lut.len() - 2);
        let frac = t - i as f64;
        self.lut[i] + frac * (self.lut[i + 1] - self.lut[i])
    }
}

/// One grid distribution compiled for fast repeated evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledDist {
    /// Empirical histogram with a cumulative-count prefix array.
    Hist(CompiledHist),
    /// Parametric fit with a quantile lookup table.
    Fit(CompiledFit),
    /// Degenerate point mass.
    Point(f64),
}

/// Flip the lowest mantissa bit of a finite non-zero value — a one-ULP
/// divergence between the compiled and interpreted sampling paths, used
/// to prove the conformance harness actually detects compiled-path bugs.
#[cfg(feature = "divergence-injection")]
fn divergence_nudge(v: f64) -> f64 {
    if v.is_finite() && v != 0.0 {
        f64::from_bits(v.to_bits() ^ 1)
    } else {
        v
    }
}

impl CompiledDist {
    fn compile(key: DistKey, dist: &CommDist, opts: &CompileOptions) -> Result<Self, CompileError> {
        let finite = |v: f64, what: &'static str| {
            if v.is_finite() {
                Ok(v)
            } else {
                Err(CompileError::NonFinite { key, what })
            }
        };
        Ok(match dist {
            CommDist::Hist(h) => {
                if h.is_empty() {
                    return Err(CompileError::EmptyHistogram { key });
                }
                let mut prefix = Vec::with_capacity(h.counts().len());
                let mut running: u64 = 0;
                for &c in h.counts() {
                    running += c;
                    prefix.push(running as f64);
                }
                CompiledDist::Hist(CompiledHist {
                    origin: finite(h.origin(), "histogram origin")?,
                    bin_width: finite(h.bin_width(), "histogram bin width")?,
                    prefix,
                    total: h.total() as f64,
                    min: finite(h.summary().min().unwrap_or(0.0), "histogram min")?,
                    max: finite(h.summary().max().unwrap_or(0.0), "histogram max")?,
                    mean: finite(h.summary().mean().unwrap_or(0.0), "histogram mean")?,
                })
            }
            CommDist::Fit(f) => {
                finite(f.shift, "fit shift")?;
                finite(f.p1, "fit parameter p1")?;
                finite(f.p2, "fit parameter p2")?;
                let lut = if opts.exact_quantiles {
                    Vec::new()
                } else {
                    let n = opts.lut_points.max(2);
                    (0..n)
                        .map(|k| {
                            finite(
                                f.quantile(k as f64 * LUT_TAIL_Q / (n - 1) as f64),
                                "fit quantile-LUT knot",
                            )
                        })
                        .collect::<Result<Vec<f64>, CompileError>>()?
                };
                CompiledDist::Fit(CompiledFit {
                    mean: finite(f.mean(), "fit mean")?,
                    min: f.shift,
                    fit: f.clone(),
                    lut,
                })
            }
            CommDist::Point(v) => CompiledDist::Point(finite(*v, "point mass")?),
        })
    }

    /// Inverse CDF at `q` (clamped to `[0, 1]`). Bitwise identical to
    /// [`CommDist::quantile`] for `Hist`/`Point`; LUT-approximate for
    /// `Fit` unless compiled with `exact_quantiles`.
    pub fn quantile(&self, q: f64) -> f64 {
        let v = match self {
            CompiledDist::Hist(h) => h.quantile(q),
            CompiledDist::Fit(f) => f.quantile(q),
            CompiledDist::Point(v) => *v,
        };
        #[cfg(feature = "divergence-injection")]
        let v = divergence_nudge(v);
        v
    }

    /// Mean of the distribution (precomputed at compile time; bitwise
    /// identical to [`CommDist::mean`]).
    pub fn mean(&self) -> f64 {
        match self {
            CompiledDist::Hist(h) => h.mean,
            CompiledDist::Fit(f) => f.mean,
            CompiledDist::Point(v) => *v,
        }
    }

    /// Minimum (0-quantile; bitwise identical to [`CommDist::min`]).
    pub fn min(&self) -> f64 {
        match self {
            CompiledDist::Hist(h) => h.min,
            CompiledDist::Fit(f) => f.min,
            CompiledDist::Point(v) => *v,
        }
    }
}

// -------------------------------------------------------------- blend --

/// Up to four neighbour distributions with bilinear weights: the compiled,
/// fixed-size analogue of the interpreted `Vec<(&CommDist, f64)>`.
#[derive(Debug, Clone, Copy, Default)]
struct Blend {
    idx: [u32; 4],
    w: [f64; 4],
    n: u8,
}

impl Blend {
    #[inline]
    fn push(&mut self, idx: u32, w: f64) {
        self.idx[self.n as usize] = idx;
        self.w[self.n as usize] = w;
        self.n += 1;
    }
}

/// Canonical bit-pattern of a finite query coordinate for blend-cache
/// keying: `-0.0` and `0.0` compare equal everywhere in the bracket
/// logic, so they must share one cache entry rather than creating a
/// duplicate (callers reject NaN before keying).
#[inline]
fn canon_bits(x: f64) -> u64 {
    if x == 0.0 {
        0.0f64.to_bits()
    } else {
        x.to_bits()
    }
}

/// Index-returning variant of [`crate::table::bracket`] over a
/// pre-flattened f64 axis.
/// Axes hold distinct values, so the value-level and index-level brackets
/// select identical neighbours.
#[inline]
fn bracket_idx(axis: &[f64], x: f64) -> Option<(usize, usize, f64)> {
    // Mirror `bracket`: NaN has no bracket (and would index out of
    // bounds below, since it compares false against everything).
    if axis.is_empty() || x.is_nan() {
        return None;
    }
    let n = axis.len();
    if x <= axis[0] {
        return Some((0, 0, 0.0));
    }
    if x >= axis[n - 1] {
        return Some((n - 1, n - 1, 0.0));
    }
    let hi = axis.partition_point(|&a| a <= x);
    let (lo_f, hi_f) = (axis[hi - 1], axis[hi]);
    if (hi_f - lo_f).abs() < f64::EPSILON {
        return Some((hi - 1, hi, 0.0));
    }
    Some((hi - 1, hi, (x - lo_f) / (hi_f - lo_f)))
}

// ---------------------------------------------------------------- grid --

/// All distributions of one operation, flattened: `sizes` is the sorted
/// size axis; column `s` spans `dists[col_start[s]..col_start[s + 1]]`,
/// sorted by contention.
struct OpGrid {
    op: Op,
    sizes: Vec<u64>,
    sizes_f: Vec<f64>,
    col_start: Vec<u32>,
    conts: Vec<u32>,
    conts_f: Vec<f64>,
    dists: Vec<CompiledDist>,
    /// Distinct contention levels across all columns (the compiled
    /// equivalent of [`DistTable::contentions`]).
    all_conts: Vec<u32>,
    /// Memoised blends keyed by canonical query bits ([`canon_bits`]).
    /// Contention is an integer scoreboard population and sizes repeat per
    /// message kind, so the working set is tiny.
    cache: RwLock<HashMap<(u64, u64), Blend>>,
}

impl Clone for OpGrid {
    fn clone(&self) -> Self {
        OpGrid {
            op: self.op,
            sizes: self.sizes.clone(),
            sizes_f: self.sizes_f.clone(),
            col_start: self.col_start.clone(),
            conts: self.conts.clone(),
            conts_f: self.conts_f.clone(),
            dists: self.dists.clone(),
            all_conts: self.all_conts.clone(),
            // A fresh empty cache: memoisation is semantically invisible.
            cache: RwLock::new(HashMap::new()),
        }
    }
}

impl std::fmt::Debug for OpGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpGrid")
            .field("op", &self.op)
            .field("sizes", &self.sizes)
            .field("cells", &self.dists.len())
            .finish()
    }
}

impl OpGrid {
    /// The up-to-four neighbours of `(size, contention)` with bilinear
    /// weights — the allocation-free mirror of `DistTable::neighbours`,
    /// replicating its iteration order and skip rules exactly (including
    /// degenerate zero-weight corners) so blended sums are bitwise equal.
    fn blend_uncached(&self, size: f64, contention: f64) -> Option<Blend> {
        let (i_lo, i_hi, _) = bracket_idx(&self.sizes_f, size)?;
        let (s_lo, s_hi) = (self.sizes[i_lo], self.sizes[i_hi]);
        let ws = size_weight(s_lo, s_hi, size);
        let mut b = Blend::default();
        for (si, wsize) in [(i_lo, 1.0 - ws), (i_hi, ws)] {
            if wsize == 0.0 && s_lo != s_hi {
                continue;
            }
            let (c0, c1) = (self.col_start[si] as usize, self.col_start[si + 1] as usize);
            let Some((j_lo, j_hi, wc)) = bracket_idx(&self.conts_f[c0..c1], contention) else {
                continue;
            };
            let (c_lo, c_hi) = (self.conts[c0 + j_lo], self.conts[c0 + j_hi]);
            for (cj, wcont) in [(j_lo, 1.0 - wc), (j_hi, wc)] {
                if wcont == 0.0 && c_lo != c_hi {
                    continue;
                }
                b.push((c0 + cj) as u32, wsize * wcont);
            }
        }
        (b.n > 0).then_some(b)
    }

    fn blend(&self, size: f64, contention: f64) -> Option<Blend> {
        // NaN never blends (no bracket) and must not reach the cache: its
        // many bit-patterns would each occupy a slot that no lookup with a
        // canonical key could ever hit again.
        if size.is_nan() || contention.is_nan() {
            return None;
        }
        let key = (canon_bits(size), canon_bits(contention));
        if let Some(b) = self.cache.read().ok()?.get(&key) {
            return Some(*b);
        }
        let b = self.blend_uncached(size, contention)?;
        if let Ok(mut cache) = self.cache.write() {
            // Epoch eviction: when a degenerate workload fills the cache,
            // flush it wholesale so *recent* queries keep hitting. Real
            // working sets are a handful of cells, so a flush costs one
            // rebuild of those, not steady-state misses forever after.
            if cache.len() >= BLEND_CACHE_CAP {
                cache.clear();
            }
            cache.insert(key, b);
        }
        Some(b)
    }

    /// Weighted reduction over the blend, mirroring the interpreted
    /// accumulation order so results stay bitwise identical.
    #[inline]
    fn reduce(&self, b: &Blend, mut f: impl FnMut(&CompiledDist) -> f64) -> Option<f64> {
        let mut wsum = 0.0;
        for k in 0..b.n as usize {
            wsum += b.w[k];
        }
        if wsum <= 0.0 {
            return None;
        }
        let mut sum = 0.0;
        for k in 0..b.n as usize {
            sum += f(&self.dists[b.idx[k] as usize]) * b.w[k];
        }
        Some(sum / wsum)
    }
}

// --------------------------------------------------------------- table --

/// An immutable compilation of a [`DistTable`] for allocation-free queries.
///
/// Produced once by [`CompiledTable::compile`]; shared immutably (the blend
/// cache is internally synchronised, so `&CompiledTable` is `Sync` and can
/// be queried from parallel Monte-Carlo replication workers).
#[derive(Debug, Clone)]
pub struct CompiledTable {
    /// Indexed by [`Op::index`]; `None` where the op has no data.
    grids: Vec<Option<OpGrid>>,
    options: CompileOptions,
    len: usize,
}

impl CompiledTable {
    /// Compile with default [`CompileOptions`].
    pub fn compile(table: &DistTable) -> Result<Self, CompileError> {
        Self::compile_with(table, CompileOptions::default())
    }

    /// Compile with explicit options. Validates the table: empty
    /// histograms are a hard error.
    pub fn compile_with(table: &DistTable, options: CompileOptions) -> Result<Self, CompileError> {
        // `DistTable::iter` yields keys in (op, size, contention) order, so
        // each op's grid streams out as complete size columns with sorted
        // contention levels — exactly the flat layout OpGrid wants.
        struct Builder {
            op: Op,
            sizes: Vec<u64>,
            col_start: Vec<u32>,
            conts: Vec<u32>,
            dists: Vec<CompiledDist>,
        }
        let mut builders: Vec<Option<Builder>> = (0..Op::ALL.len()).map(|_| None).collect();
        for (key, dist) in table.iter() {
            let b = builders[key.op.index()].get_or_insert_with(|| Builder {
                op: key.op,
                sizes: Vec::new(),
                col_start: Vec::new(),
                conts: Vec::new(),
                dists: Vec::new(),
            });
            if b.sizes.last() != Some(&key.size) {
                b.col_start.push(b.conts.len() as u32);
                b.sizes.push(key.size);
            }
            b.conts.push(key.contention);
            b.dists.push(CompiledDist::compile(key, dist, &options)?);
        }
        let mut len = 0usize;
        let mut grids: Vec<Option<OpGrid>> = (0..Op::ALL.len()).map(|_| None).collect();
        for (slot, b) in grids.iter_mut().zip(builders) {
            let Some(mut b) = b else { continue };
            b.col_start.push(b.conts.len() as u32);
            let mut all_conts = b.conts.clone();
            all_conts.sort_unstable();
            all_conts.dedup();
            len += b.dists.len();
            *slot = Some(OpGrid {
                op: b.op,
                sizes_f: b.sizes.iter().map(|&s| s as f64).collect(),
                sizes: b.sizes,
                col_start: b.col_start,
                conts_f: b.conts.iter().map(|&c| c as f64).collect(),
                conts: b.conts,
                dists: b.dists,
                all_conts,
                cache: RwLock::new(HashMap::new()),
            });
        }
        Ok(CompiledTable {
            grids,
            options,
            len,
        })
    }

    /// The options this table was compiled with.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Number of compiled grid cells across all operations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no distributions were compiled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Operations present, in [`Op::ALL`] order.
    pub fn ops(&self) -> impl Iterator<Item = Op> + '_ {
        self.grids.iter().filter_map(|g| g.as_ref().map(|g| g.op))
    }

    /// Sorted distinct message sizes measured for `op` (flat slice; no
    /// allocation — use this instead of [`DistTable::sizes`] in hot code).
    pub fn sizes(&self, op: Op) -> &[u64] {
        self.grids[op.index()]
            .as_ref()
            .map(|g| g.sizes.as_slice())
            .unwrap_or(&[])
    }

    /// Sorted distinct contention levels measured for `op` (flat slice; no
    /// allocation — use this instead of [`DistTable::contentions`] in hot
    /// code).
    pub fn contentions(&self, op: Op) -> &[u32] {
        self.grids[op.index()]
            .as_ref()
            .map(|g| g.all_conts.as_slice())
            .unwrap_or(&[])
    }

    #[inline]
    fn grid(&self, op: Op) -> Option<&OpGrid> {
        self.grids[op.index()].as_ref()
    }

    /// Interpolated inverse CDF at probability `q` for the query point.
    /// Bitwise identical to [`DistTable::quantile_at`] for histogram/point
    /// grids.
    pub fn quantile_at(&self, op: Op, size: f64, contention: f64, q: f64) -> Option<f64> {
        let g = self.grid(op)?;
        let b = g.blend(size, contention)?;
        g.reduce(&b, |d| d.quantile(q))
    }

    /// Draw one communication time: one uniform variate, blended across
    /// neighbour quantile functions — the same single-draw discipline as
    /// [`DistTable::sample_at`], so RNG streams stay aligned.
    pub fn sample_at<R: Rng + ?Sized>(
        &self,
        op: Op,
        size: f64,
        contention: f64,
        rng: &mut R,
    ) -> Option<f64> {
        let u = rng.gen::<f64>();
        self.quantile_at(op, size, contention, u)
    }

    /// Interpolated mean at the query point (bitwise identical to
    /// [`DistTable::mean_at`]).
    pub fn mean_at(&self, op: Op, size: f64, contention: f64) -> Option<f64> {
        let g = self.grid(op)?;
        let b = g.blend(size, contention)?;
        g.reduce(&b, |d| d.mean())
    }

    /// Interpolated minimum at the query point (bitwise identical to
    /// [`DistTable::min_at`]).
    pub fn min_at(&self, op: Op, size: f64, contention: f64) -> Option<f64> {
        let g = self.grid(op)?;
        let b = g.blend(size, contention)?;
        g.reduce(&b, |d| d.min())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use crate::sample::PointKind;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn grid_table() -> DistTable {
        let mut t = DistTable::new();
        for &size in &[64u64, 1024, 16384] {
            for &c in &[1u32, 4, 32] {
                let samples: Vec<f64> = (0..200)
                    .map(|i| (size as f64) * 1e-7 * (c as f64) + ((i * 37) % 100) as f64 * 1e-6)
                    .collect();
                t.insert(
                    DistKey {
                        op: Op::Isend,
                        size,
                        contention: c,
                    },
                    CommDist::Hist(Histogram::from_samples(&samples, 1e-6)),
                );
            }
        }
        // A ragged column: one size measured at an extra contention level.
        t.insert(
            DistKey {
                op: Op::Isend,
                size: 1024,
                contention: 64,
            },
            CommDist::Point(3.3e-3),
        );
        t
    }

    #[test]
    fn compiled_matches_interpreted_on_and_off_grid() {
        let t = grid_table();
        let c = CompiledTable::compile(&t).unwrap();
        assert_eq!(c.len(), t.len());
        for &size in &[1.0, 64.0, 300.0, 1024.0, 5000.0, 16384.0, 1e9] {
            for &cont in &[0.0, 1.0, 2.5, 4.0, 17.0, 32.0, 64.0, 500.0] {
                for &q in &[0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
                    let a = t.quantile_at(Op::Isend, size, cont, q);
                    let b = c.quantile_at(Op::Isend, size, cont, q);
                    assert_eq!(
                        a.map(f64::to_bits),
                        b.map(f64::to_bits),
                        "quantile mismatch at size={size} cont={cont} q={q}: {a:?} vs {b:?}"
                    );
                }
                assert_eq!(
                    t.mean_at(Op::Isend, size, cont).map(f64::to_bits),
                    c.mean_at(Op::Isend, size, cont).map(f64::to_bits)
                );
                assert_eq!(
                    t.min_at(Op::Isend, size, cont).map(f64::to_bits),
                    c.min_at(Op::Isend, size, cont).map(f64::to_bits)
                );
            }
        }
    }

    #[test]
    fn sample_at_is_draw_for_draw_identical() {
        let t = grid_table();
        let c = CompiledTable::compile(&t).unwrap();
        let mut r1 = SmallRng::seed_from_u64(99);
        let mut r2 = SmallRng::seed_from_u64(99);
        for i in 0..500 {
            let size = 32.0 + (i * 97 % 20000) as f64;
            let cont = (i % 50) as f64;
            let a = t.sample_at(Op::Isend, size, cont, &mut r1).unwrap();
            let b = c.sample_at(Op::Isend, size, cont, &mut r2).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "draw {i} diverged: {a} vs {b}");
        }
    }

    #[test]
    fn missing_op_is_none() {
        let c = CompiledTable::compile(&grid_table()).unwrap();
        assert_eq!(c.quantile_at(Op::Barrier, 1.0, 1.0, 0.5), None);
        assert!(c.sizes(Op::Barrier).is_empty());
        assert!(c.contentions(Op::Barrier).is_empty());
    }

    #[test]
    fn axes_match_interpreted_accessors() {
        let t = grid_table();
        let c = CompiledTable::compile(&t).unwrap();
        assert_eq!(c.sizes(Op::Isend), t.sizes(Op::Isend).as_slice());
        assert_eq!(
            c.contentions(Op::Isend),
            t.contentions(Op::Isend).as_slice()
        );
        assert_eq!(c.ops().collect::<Vec<_>>(), t.ops().collect::<Vec<_>>());
    }

    #[test]
    fn empty_histogram_is_a_compile_error() {
        let mut t = DistTable::new();
        t.insert(
            DistKey {
                op: Op::Send,
                size: 8,
                contention: 1,
            },
            CommDist::Hist(Histogram::new(0.0, 1.0)),
        );
        let err = CompiledTable::compile(&t).unwrap_err();
        assert!(matches!(err, CompileError::EmptyHistogram { key } if key.size == 8));
        assert!(t.validate().is_err());
        assert!(grid_table().validate().is_ok());
    }

    #[test]
    fn fit_lut_tracks_exact_bisection() {
        let fit = ParametricFit {
            kind: crate::FitKind::ShiftedLogNormal,
            shift: 2.5e-4,
            p1: -8.0,
            p2: 0.6,
        };
        let mut t = DistTable::new();
        t.insert(
            DistKey {
                op: Op::Send,
                size: 1024,
                contention: 1,
            },
            CommDist::Fit(fit.clone()),
        );
        let lut = CompiledTable::compile(&t).unwrap();
        let exact = CompiledTable::compile_with(
            &t,
            CompileOptions {
                exact_quantiles: true,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        for i in 0..=1000 {
            let q = i as f64 / 1000.0 * LUT_TAIL_Q;
            let a = lut.quantile_at(Op::Send, 1024.0, 1.0, q).unwrap();
            let e = exact.quantile_at(Op::Send, 1024.0, 1.0, q).unwrap();
            let rel = (a - e).abs() / e.abs().max(1e-300);
            assert!(
                rel <= LUT_REL_ERROR,
                "q={q}: lut {a} vs exact {e} ({rel:e})"
            );
        }
        // Tail quantiles fall back to the exact bisection in both modes.
        for &q in &[LUT_TAIL_Q + 1e-6, 0.999, 0.99999, 1.0] {
            let a = lut.quantile_at(Op::Send, 1024.0, 1.0, q).unwrap();
            let e = exact.quantile_at(Op::Send, 1024.0, 1.0, q).unwrap();
            assert_eq!(a.to_bits(), e.to_bits(), "tail q={q}");
        }
        // Exact mode matches the interpreted table bitwise everywhere.
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            assert_eq!(
                exact
                    .quantile_at(Op::Send, 1024.0, 1.0, q)
                    .map(f64::to_bits),
                t.quantile_at(Op::Send, 1024.0, 1.0, q).map(f64::to_bits)
            );
        }
    }

    #[test]
    fn blend_cache_hits_are_consistent() {
        let t = grid_table();
        let c = CompiledTable::compile(&t).unwrap();
        // Same query twice: second hits the cache, same bits.
        let a = c.quantile_at(Op::Isend, 777.0, 3.0, 0.5).unwrap();
        let b = c.quantile_at(Op::Isend, 777.0, 3.0, 0.5).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        // A clone starts with a cold cache but answers identically.
        let c2 = c.clone();
        let d = c2.quantile_at(Op::Isend, 777.0, 3.0, 0.5).unwrap();
        assert_eq!(a.to_bits(), d.to_bits());
    }

    #[test]
    fn zero_and_negative_zero_share_one_cache_entry() {
        let t = grid_table();
        let c = CompiledTable::compile(&t).unwrap();
        let a = c.quantile_at(Op::Isend, 1024.0, 0.0, 0.5).unwrap();
        let b = c.quantile_at(Op::Isend, 1024.0, -0.0, 0.5).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        let d = c.quantile_at(Op::Isend, -0.0, 2.0, 0.5).unwrap();
        let e = c.quantile_at(Op::Isend, 0.0, 2.0, 0.5).unwrap();
        assert_eq!(d.to_bits(), e.to_bits());
        let g = c.grids[Op::Isend.index()].as_ref().unwrap();
        assert_eq!(
            g.cache.read().unwrap().len(),
            2,
            "±0.0 must canonicalize onto one entry per query point"
        );
    }

    #[test]
    fn nan_queries_are_none_and_never_touch_the_cache() {
        let t = grid_table();
        let c = CompiledTable::compile(&t).unwrap();
        assert_eq!(c.quantile_at(Op::Isend, f64::NAN, 1.0, 0.5), None);
        assert_eq!(c.quantile_at(Op::Isend, 1024.0, f64::NAN, 0.5), None);
        assert_eq!(c.mean_at(Op::Isend, f64::NAN, f64::NAN), None);
        assert_eq!(c.min_at(Op::Isend, f64::NAN, 1.0), None);
        // The interpreted path agrees (no panic, no value).
        assert_eq!(t.quantile_at(Op::Isend, f64::NAN, 1.0, 0.5), None);
        let g = c.grids[Op::Isend.index()].as_ref().unwrap();
        assert!(g.cache.read().unwrap().is_empty());
    }

    #[test]
    fn non_finite_cells_are_compile_errors() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut t = DistTable::new();
            t.insert(
                DistKey {
                    op: Op::Send,
                    size: 64,
                    contention: 1,
                },
                CommDist::Point(v),
            );
            let err = CompiledTable::compile(&t).unwrap_err();
            assert!(
                matches!(err, CompileError::NonFinite { key, .. } if key.size == 64),
                "point mass {v} must not compile: {err}"
            );
        }
        let mut t = DistTable::new();
        t.insert(
            DistKey {
                op: Op::Send,
                size: 64,
                contention: 1,
            },
            CommDist::Fit(ParametricFit {
                kind: crate::FitKind::ShiftedExponential,
                shift: 1e-4,
                p1: f64::NAN,
                p2: 0.0,
            }),
        );
        assert!(matches!(
            CompiledTable::compile(&t).unwrap_err(),
            CompileError::NonFinite { .. }
        ));
    }

    #[test]
    fn blend_cache_evicts_under_sustained_distinct_key_load() {
        let t = grid_table();
        let c = CompiledTable::compile(&t).unwrap();
        // Degenerate workload: far more distinct query points than the cap.
        for i in 0..(BLEND_CACHE_CAP * 2 + 7) {
            let size = 64.0 + i as f64 * 1e-3;
            c.quantile_at(Op::Isend, size, 1.0, 0.5).unwrap();
        }
        let g = c.grids[Op::Isend.index()].as_ref().unwrap();
        let len = g.cache.read().unwrap().len();
        assert!(
            len <= BLEND_CACHE_CAP,
            "cache grew past its bound: {len} > {BLEND_CACHE_CAP}"
        );
        // The bound evicts rather than pinning the first epoch: a fresh
        // key queried after saturation still lands in the cache.
        let fresh = 16_000.0 + 0.125;
        c.quantile_at(Op::Isend, fresh, 3.0, 0.5).unwrap();
        assert!(
            g.cache
                .read()
                .unwrap()
                .contains_key(&(canon_bits(fresh), canon_bits(3.0))),
            "post-saturation queries must still be cached"
        );
    }

    #[test]
    fn collapsed_tables_compile_to_points() {
        let t = grid_table().collapsed(PointKind::Minimum);
        let c = CompiledTable::compile(&t).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let v = c.sample_at(Op::Isend, 64.0, 1.0, &mut rng).unwrap();
        assert_eq!(
            v.to_bits(),
            t.min_at(Op::Isend, 64.0, 1.0).unwrap().to_bits()
        );
    }
}
