//! Verbosity-gated diagnostics.
//!
//! Experiment drivers print machine-parseable tables on **stdout**;
//! progress notes and warnings belong on **stderr**, and must be
//! suppressible (`-q`) or expandable (`--verbose`) without touching every
//! call site. This module is that single switch: library code calls
//! [`info`] / [`debug`] / [`warn`], the binary sets the process-wide
//! [`Verbosity`] once from its flags.
//!
//! Errors that abort a command are not gated — print those directly.

use std::sync::atomic::{AtomicU8, Ordering};

/// How chatty stderr diagnostics are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// `-q`: warnings only.
    Quiet = 0,
    /// Default: progress notes and warnings.
    Normal = 1,
    /// `--verbose`: everything, including per-step debug detail.
    Verbose = 2,
}

static LEVEL: AtomicU8 = AtomicU8::new(Verbosity::Normal as u8);

/// Set the process-wide verbosity (called once by the binary).
pub fn set_verbosity(v: Verbosity) {
    LEVEL.store(v as u8, Ordering::Relaxed);
}

/// The current verbosity.
pub fn verbosity() -> Verbosity {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Verbosity::Quiet,
        1 => Verbosity::Normal,
        _ => Verbosity::Verbose,
    }
}

/// A warning: always printed — warnings indicate something actionable
/// regardless of verbosity.
pub fn warn(msg: &str) {
    eprintln!("warning: {msg}");
}

/// A progress note: printed at [`Verbosity::Normal`] and above.
pub fn info(msg: &str) {
    if verbosity() >= Verbosity::Normal {
        eprintln!("{msg}");
    }
}

/// Debug detail: printed only at [`Verbosity::Verbose`].
pub fn debug(msg: &str) {
    if verbosity() >= Verbosity::Verbose {
        eprintln!("[debug] {msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbosity_round_trips() {
        let prev = verbosity();
        for v in [Verbosity::Quiet, Verbosity::Verbose, Verbosity::Normal] {
            set_verbosity(v);
            assert_eq!(verbosity(), v);
        }
        set_verbosity(prev);
    }

    #[test]
    fn ordering_matches_gating_semantics() {
        assert!(Verbosity::Quiet < Verbosity::Normal);
        assert!(Verbosity::Normal < Verbosity::Verbose);
    }
}
