//! Request-lifecycle spans: a bounded ring of per-request stage records.
//!
//! The prediction daemon (and the one-shot CLI) break a request into a
//! fixed sequence of stages — validate, model parse, table compile,
//! evaluation, render — and record one [`RequestSpan`] per request into a
//! [`SpanRing`]. The ring is the raw material behind three views:
//!
//! - the daemon's `/spans?last=N` HTTP endpoint (JSON via
//!   [`render_spans`]);
//! - span-derived stage percentiles in the `stats` protocol op (via
//!   [`percentile`]);
//! - a pid-4 "service stages" Chrome-trace track ([`chrome_service_track`])
//!   merged into `predict --trace-out`, so the PR-2 trace shows where
//!   wall-time went *around* the VM, not just inside it.
//!
//! Spans are observational only: nothing in a span feeds back into
//! evaluation, so enabling the ring cannot change a prediction. Wall-clock
//! readings use the caller's monotonic epoch (`start_us` offsets), with
//! one wall-clock anchor (`start_unix_us`) per span for log correlation.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::chrome::{ChromeTrace, Span};
use crate::json::{escape, num};

/// Conventional Chrome-trace pid for the service-stage track (pids 1–3
/// are the predicted, measured and fault-mark tracks).
pub const PID_SERVICE: u32 = 4;

/// One timed stage inside a request: a name plus its window relative to
/// the request's own start.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage name (`validate`, `model`, `compile`, `eval`, `render`, ...).
    pub name: String,
    /// Stage start, microseconds after the request started.
    pub start_us: f64,
    /// Stage duration in microseconds.
    pub dur_us: f64,
}

/// The lifecycle record of one request: identity, timing, stage
/// breakdown, cache outcomes, and how it ended.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpan {
    /// Monotonically-assigned request id (1-based, process-wide).
    pub id: u64,
    /// Operation: `predict`, `batch`, `batch-item`, `stats`, `ping`, ...
    pub op: String,
    /// Wall-clock request start (microseconds since the Unix epoch), for
    /// log correlation only — durations come from the monotonic clock.
    pub start_unix_us: u64,
    /// Monotonic request start, microseconds after the telemetry epoch.
    pub start_us: f64,
    /// Total request duration in microseconds.
    pub total_us: f64,
    /// Timed stages in execution order. A failed request records only
    /// the stages it reached.
    pub stages: Vec<StageTiming>,
    /// How the request ended: `ok`, or an error class
    /// (`usage`/`input`/`budget`/`panic`).
    pub outcome: String,
    /// Per-cache lookup outcomes as `(cache, hit)`, e.g. `("model", true)`.
    pub caches: Vec<(String, bool)>,
    /// Monte-Carlo replications requested (0 when not a prediction).
    pub reps: usize,
    /// Replication failures absorbed by a quorum (or failed batch items
    /// for a `batch` frame span).
    pub replica_failures: usize,
    /// Whether the request ran under a k-of-n quorum.
    pub quorum: bool,
    /// Replications adaptive stopping saved relative to the request's
    /// ceiling; `None` for fixed-reps requests.
    pub reps_saved: Option<usize>,
    /// Whether a panic was caught at the request boundary.
    pub panicked: bool,
    /// Rendered response payload size in bytes.
    pub response_bytes: usize,
}

impl RequestSpan {
    /// An empty span for `op` with identity and start times filled in.
    pub fn new(id: u64, op: &str, start_unix_us: u64, start_us: f64) -> Self {
        RequestSpan {
            id,
            op: op.to_string(),
            start_unix_us,
            start_us,
            total_us: 0.0,
            stages: Vec::new(),
            outcome: "ok".to_string(),
            caches: Vec::new(),
            reps: 0,
            replica_failures: 0,
            quorum: false,
            reps_saved: None,
            panicked: false,
            response_bytes: 0,
        }
    }

    /// Sum of the recorded stage durations in microseconds. At most
    /// `total_us` plus inter-stage bookkeeping; the gap between the two
    /// is time spent outside any named stage.
    pub fn stage_sum_us(&self) -> f64 {
        self.stages.iter().map(|s| s.dur_us).sum()
    }
}

struct RingInner {
    spans: VecDeque<RequestSpan>,
    recorded: u64,
}

/// A bounded, thread-safe ring of the most recent [`RequestSpan`]s.
///
/// Also the request-id allocator: ids are assigned by an atomic counter
/// so they stay monotonic across threads even though completion order
/// (and therefore ring order) is not.
pub struct SpanRing {
    cap: usize,
    next_id: AtomicU64,
    inner: Mutex<RingInner>,
}

impl SpanRing {
    /// A ring keeping at most `cap` spans (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        SpanRing {
            cap: cap.max(1),
            next_id: AtomicU64::new(1),
            inner: Mutex::new(RingInner {
                spans: VecDeque::new(),
                recorded: 0,
            }),
        }
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Allocate the next request id (monotonic, starting at 1).
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Record a finished span, evicting the oldest when full.
    pub fn push(&self, span: RequestSpan) {
        if let Ok(mut inner) = self.inner.lock() {
            if inner.spans.len() >= self.cap {
                inner.spans.pop_front();
            }
            inner.spans.push_back(span);
            inner.recorded += 1;
        }
    }

    /// The most recent `n` spans, oldest first.
    pub fn last(&self, n: usize) -> Vec<RequestSpan> {
        match self.inner.lock() {
            Ok(inner) => {
                let skip = inner.spans.len().saturating_sub(n);
                inner.spans.iter().skip(skip).cloned().collect()
            }
            Err(_) => Vec::new(),
        }
    }

    /// Spans currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.lock().map(|i| i.spans.len()).unwrap_or(0)
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total spans ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.lock().map(|i| i.recorded).unwrap_or(0)
    }
}

/// Render one span as a deterministic single-line JSON object.
pub fn span_json(s: &RequestSpan) -> String {
    let mut out = format!(
        "{{\"id\":{},\"op\":\"{}\",\"start\":\"{}\",\"start_us\":{},\"total_us\":{},\
         \"outcome\":\"{}\"",
        s.id,
        escape(&s.op),
        rfc3339_utc_us(s.start_unix_us),
        num(s.start_us),
        num(s.total_us),
        escape(&s.outcome),
    );
    out.push_str(",\"stages\":[");
    for (i, st) in s.stages.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"start_us\":{},\"dur_us\":{}}}",
            escape(&st.name),
            num(st.start_us),
            num(st.dur_us)
        ));
    }
    out.push_str("],\"caches\":{");
    for (i, (name, hit)) in s.caches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":\"{}\"",
            escape(name),
            if *hit { "hit" } else { "miss" }
        ));
    }
    out.push_str(&format!(
        "}},\"reps\":{},\"replica_failures\":{},\"quorum\":{},\"panicked\":{}",
        s.reps, s.replica_failures, s.quorum, s.panicked
    ));
    if let Some(saved) = s.reps_saved {
        out.push_str(&format!(",\"reps_saved\":{saved}"));
    }
    out.push_str(&format!(",\"response_bytes\":{}}}", s.response_bytes));
    out
}

/// Render a slice of spans as a JSON array (oldest first, one object per
/// span).
pub fn render_spans(spans: &[RequestSpan]) -> String {
    let mut out = String::from("[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&span_json(s));
    }
    out.push(']');
    out
}

/// Build the pid-4 "service stages" Chrome-trace track for one span: one
/// slice per stage plus an enclosing request slice, all on tid 0,
/// timestamped relative to the request's start so the track lines up
/// with the VM's virtual timeline at t = 0.
pub fn chrome_service_track(span: &RequestSpan) -> ChromeTrace {
    let mut trace = ChromeTrace::new();
    trace.name_process(PID_SERVICE, "service stages");
    trace.name_thread(PID_SERVICE, 0, &span.op);
    trace.push(Span {
        pid: PID_SERVICE,
        tid: 0,
        name: format!("request #{}", span.id),
        cat: "service".to_string(),
        ts_us: 0.0,
        dur_us: span.total_us,
        args: vec![
            ("op".to_string(), span.op.clone()),
            ("outcome".to_string(), span.outcome.clone()),
            ("reps".to_string(), span.reps.to_string()),
        ],
    });
    for st in &span.stages {
        trace.push(Span {
            pid: PID_SERVICE,
            tid: 0,
            name: st.name.clone(),
            cat: "service".to_string(),
            ts_us: st.start_us,
            dur_us: st.dur_us,
            args: Vec::new(),
        });
    }
    trace
}

/// Nearest-rank percentile of `values` (`q` in `[0, 1]`); `None` when
/// empty. Sorts a copy — intended for small span windows, not hot paths.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
}

/// Format a microseconds-since-Unix-epoch timestamp as RFC 3339 UTC with
/// second precision (`2026-08-07T12:34:56Z`). Dependency-free civil-date
/// arithmetic (Howard Hinnant's `civil_from_days`).
pub fn rfc3339_utc_us(unix_us: u64) -> String {
    let unix_secs = unix_us / 1_000_000;
    let days = (unix_secs / 86_400) as i64;
    let secs = unix_secs % 86_400;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
        secs / 3600,
        (secs / 60) % 60,
        secs % 60
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64) -> RequestSpan {
        let mut s = RequestSpan::new(id, "predict", 1_754_569_200_000_000, 10.0);
        s.total_us = 120.0;
        s.stages.push(StageTiming {
            name: "validate".to_string(),
            start_us: 0.0,
            dur_us: 20.0,
        });
        s.stages.push(StageTiming {
            name: "eval".to_string(),
            start_us: 20.0,
            dur_us: 90.0,
        });
        s.caches.push(("model".to_string(), true));
        s.reps = 8;
        s.response_bytes = 512;
        s
    }

    #[test]
    fn ring_is_bounded_and_ids_are_monotonic() {
        let ring = SpanRing::new(3);
        assert_eq!(ring.capacity(), 3);
        let ids: Vec<u64> = (0..5).map(|_| ring.next_id()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        for id in ids {
            ring.push(span(id));
        }
        assert_eq!(ring.len(), 3, "ring keeps only the newest cap spans");
        assert_eq!(ring.recorded(), 5, "recorded counts evicted spans too");
        let last = ring.last(2);
        assert_eq!(last.len(), 2);
        assert_eq!(last[0].id, 4, "oldest first");
        assert_eq!(last[1].id, 5);
        assert_eq!(ring.last(99).len(), 3, "over-asking returns what exists");
    }

    #[test]
    fn ring_ids_stay_unique_under_contention() {
        let ring = std::sync::Arc::new(SpanRing::new(64));
        let mut all: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let ring = std::sync::Arc::clone(&ring);
                    s.spawn(move || (0..100).map(|_| ring.next_id()).collect::<Vec<u64>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400, "no id issued twice");
    }

    #[test]
    fn span_json_parses_and_round_trips_fields() {
        let js = span_json(&span(7));
        let v = crate::json::parse(&js).expect("span JSON parses");
        assert_eq!(v.get("id").and_then(crate::json::Json::as_num), Some(7.0));
        assert_eq!(
            v.get("op").and_then(crate::json::Json::as_str),
            Some("predict")
        );
        assert_eq!(
            v.get("caches")
                .and_then(|c| c.get("model"))
                .and_then(crate::json::Json::as_str),
            Some("hit")
        );
        let arr = render_spans(&[span(1), span(2)]);
        let parsed = crate::json::parse(&arr).expect("span array parses");
        assert_eq!(parsed.as_array().map(<[_]>::len), Some(2));
    }

    #[test]
    fn chrome_track_uses_pid_4_and_covers_every_stage() {
        let trace = chrome_service_track(&span(3));
        // One enclosing request slice + one per stage.
        assert_eq!(trace.len(), 3);
        assert!(trace.spans().iter().all(|s| s.pid == PID_SERVICE));
        assert_eq!(trace.spans()[0].dur_us, 120.0);
        let names: Vec<&str> = trace.spans().iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"validate") && names.contains(&"eval"));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.50), Some(50.0));
        assert_eq!(percentile(&v, 0.95), Some(95.0));
        assert_eq!(percentile(&v, 0.99), Some(99.0));
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(100.0));
        assert_eq!(percentile(&[], 0.5), None);
        assert_eq!(percentile(&[42.0], 0.99), Some(42.0));
    }

    #[test]
    fn rfc3339_matches_known_instants() {
        assert_eq!(rfc3339_utc_us(0), "1970-01-01T00:00:00Z");
        // date -u -d @951782400 → 2000-02-29 00:00:00 (leap day).
        assert_eq!(rfc3339_utc_us(951_782_400_000_000), "2000-02-29T00:00:00Z");
        // date -u -d @1754569200 → 2025-08-07 12:20:00.
        assert_eq!(
            rfc3339_utc_us(1_754_569_200_000_000),
            "2025-08-07T12:20:00Z"
        );
        assert_eq!(
            rfc3339_utc_us(1_609_459_199_999_999),
            "2020-12-31T23:59:59Z"
        );
    }

    #[test]
    fn stage_sum_is_the_stage_total() {
        assert_eq!(span(1).stage_sum_us(), 110.0);
    }
}
