//! Minimal dependency-free JSON support.
//!
//! The workspace vendors all external crates as offline stubs, so there is
//! no serde; the exporters hand-build their JSON strings with [`escape`] /
//! [`num`], and this module's [`parse`] provides a small recursive-descent
//! reader used by schema-validation tests and by
//! [`crate::chrome::validate`]. It accepts standard JSON (objects, arrays,
//! strings with escapes, numbers, booleans, null) — enough to round-trip
//! everything this crate emits.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Escape a string for embedding between JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number. JSON has no Infinity/NaN, so
/// non-finite values are emitted as `null`-safe sentinels (`0`), which
/// callers should avoid producing in the first place.
pub fn num(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        // Rust's Display prints the shortest decimal that round-trips the
        // f64 exactly, and never uses exponent notation — always valid
        // JSON, and compact for the common microsecond-scale values.
        format!("{v}")
    }
}

/// Parse a JSON document.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the longest run of unescaped content in one
                // step: validating UTF-8 from `pos` to end-of-input per
                // character would make string parsing quadratic.
                let run_start = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                let run = std::str::from_utf8(&b[run_start..*pos]).map_err(|_| "invalid UTF-8")?;
                out.push_str(run);
            }
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let j = parse(r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3e2}}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(
            j.get("a").unwrap().as_array().unwrap()[2].as_str(),
            Some("x\n")
        );
        assert_eq!(j.get("b").unwrap().get("c").unwrap().as_num(), Some(-300.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse(r#"{"a": 1} extra"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn num_round_trips_f64() {
        for v in [0.0, 1.0, -2.5, 1e-9, 123456.789, 2.0f64.powi(60)] {
            let s = num(v);
            let back: f64 = parse(&s).unwrap().as_num().unwrap();
            assert_eq!(back, v, "{s}");
        }
        assert_eq!(num(f64::INFINITY), "0");
    }
}
