//! Chrome `trace_event` JSON export.
//!
//! Emits the [Trace Event Format] consumed by `chrome://tracing` and
//! <https://ui.perfetto.dev>: a `{"traceEvents": [...]}` document of
//! *complete* events (`"ph": "X"`) with microsecond timestamps, plus
//! process/thread-name metadata events so timelines are labelled.
//!
//! The convention used throughout the workspace:
//!
//! - **pid 1, "PEVPM predicted"** — the VM's per-process virtual
//!   timelines (one tid per virtual process);
//! - **pid 2, "mpisim measured"** — the packet-level simulator's per-rank
//!   [`TraceEvent`](../../pevpm_mpisim/trace/struct.TraceEvent.html)
//!   timelines (one tid per rank).
//!
//! Loading one file containing both gives the paper's
//! predicted-vs-measured comparison as a side-by-side flamegraph.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::{escape, num, Json};

/// Conventional pid for predicted (PEVPM) timelines.
pub const PID_PREDICTED: u32 = 1;
/// Conventional pid for measured (`mpisim`) timelines.
pub const PID_MEASURED: u32 = 2;

/// One complete event: a named span on a `(pid, tid)` track.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Process id (timeline group).
    pub pid: u32,
    /// Thread id (row within the group).
    pub tid: u32,
    /// Event name (shown on the slice).
    pub name: String,
    /// Category tag (filterable in the viewer).
    pub cat: String,
    /// Start timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Extra key/value arguments shown in the details pane.
    pub args: Vec<(String, String)>,
}

/// Builder for a trace file.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    spans: Vec<Span>,
    /// `(pid, tid, name)` thread-name metadata; `tid = u32::MAX` names the
    /// process itself.
    names: Vec<(u32, u32, String)>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Append a span.
    pub fn push(&mut self, span: Span) {
        self.spans.push(span);
    }

    /// Name a process (timeline group header).
    pub fn name_process(&mut self, pid: u32, name: &str) {
        self.names.push((pid, u32::MAX, name.to_string()));
    }

    /// Name a thread (row label).
    pub fn name_thread(&mut self, pid: u32, tid: u32, name: &str) {
        self.names.push((pid, tid, name.to_string()));
    }

    /// Append every span and name of `other`.
    pub fn merge(&mut self, other: ChromeTrace) {
        self.spans.extend(other.spans);
        self.names.extend(other.names);
    }

    /// Number of spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace has no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The spans recorded so far.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Serialise to Chrome `trace_event` JSON.
    pub fn to_json(&self) -> String {
        let mut events: Vec<String> = Vec::with_capacity(self.spans.len() + self.names.len());
        for (pid, tid, name) in &self.names {
            if *tid == u32::MAX {
                events.push(format!(
                    "{{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {pid}, \"tid\": 0, \
                     \"args\": {{\"name\": \"{}\"}}}}",
                    escape(name)
                ));
            } else {
                events.push(format!(
                    "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {pid}, \"tid\": {tid}, \
                     \"args\": {{\"name\": \"{}\"}}}}",
                    escape(name)
                ));
            }
        }
        for s in &self.spans {
            let mut args = String::new();
            for (i, (k, v)) in s.args.iter().enumerate() {
                if i > 0 {
                    args.push_str(", ");
                }
                args.push_str(&format!("\"{}\": \"{}\"", escape(k), escape(v)));
            }
            events.push(format!(
                "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"{}\", \"ts\": {}, \"dur\": {}, \
                 \"pid\": {}, \"tid\": {}, \"args\": {{{args}}}}}",
                escape(&s.name),
                escape(&s.cat),
                num(s.ts_us),
                num(s.dur_us),
                s.pid,
                s.tid,
            ));
        }
        format!(
            "{{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n  {}\n]}}\n",
            events.join(",\n  ")
        )
    }
}

/// Validate that `src` is a schema-valid Chrome trace document: it parses
/// as JSON, has a `traceEvents` array, every `"ph": "X"` event carries the
/// required keys (`ph`, `ts`, `dur`, `pid`, `tid`, `name`) with
/// `dur >= 0`, and instant events (`"ph": "i"`/`"I"`) carry a timestamped
/// location and a name — but, per the format, **no** `dur` is required of
/// them. All failures surface as `Err`; validation never panics on
/// malformed input. Returns the number of complete events.
pub fn validate(src: &str) -> Result<usize, String> {
    let doc = crate::json::parse(src)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing traceEvents array")?;
    let mut complete = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let obj = ev
            .as_object()
            .ok_or(format!("event {i} is not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i} has no ph"))?;
        match ph {
            "X" => {
                require_located_and_named(obj, i)?;
                let dur = obj
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or(format!("event {i} missing numeric \"dur\""))?;
                if dur < 0.0 {
                    return Err(format!("event {i} has negative dur"));
                }
                complete += 1;
            }
            // Instant events legally omit `dur` entirely.
            "i" | "I" => require_located_and_named(obj, i)?,
            // Metadata and counter/flow phases carry no duration and are
            // viewer-specific; nothing further to check here.
            _ => {}
        }
    }
    Ok(complete)
}

/// Shared requirement of complete and instant events: a numeric
/// `(ts, pid, tid)` location and a string `name`.
fn require_located_and_named(
    obj: &std::collections::BTreeMap<String, Json>,
    i: usize,
) -> Result<(), String> {
    for key in ["ts", "pid", "tid"] {
        if obj.get(key).and_then(Json::as_num).is_none() {
            return Err(format!("event {i} missing numeric {key:?}"));
        }
    }
    if obj.get("name").and_then(Json::as_str).is_none() {
        return Err(format!("event {i} missing name"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChromeTrace {
        let mut t = ChromeTrace::new();
        t.name_process(PID_PREDICTED, "PEVPM predicted");
        t.name_thread(PID_PREDICTED, 0, "proc 0");
        t.push(Span {
            pid: PID_PREDICTED,
            tid: 0,
            name: "compute".into(),
            cat: "compute".into(),
            ts_us: 0.0,
            dur_us: 1000.0,
            args: vec![("label".into(), "jacobi \"halo\"".into())],
        });
        t.push(Span {
            pid: PID_PREDICTED,
            tid: 0,
            name: "blocked".into(),
            cat: "blocked".into(),
            ts_us: 1000.0,
            dur_us: 250.5,
            args: vec![],
        });
        t
    }

    #[test]
    fn emits_schema_valid_json() {
        let js = sample().to_json();
        assert_eq!(validate(&js), Ok(2));
        for key in [
            "\"ph\"", "\"ts\"", "\"dur\"", "\"pid\"", "\"tid\"", "\"name\"",
        ] {
            assert!(js.contains(key), "missing {key} in {js}");
        }
    }

    #[test]
    fn merge_combines_and_len_counts() {
        let mut a = sample();
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        let b = sample();
        a.merge(b);
        assert_eq!(a.len(), 4);
        assert_eq!(validate(&a.to_json()), Ok(4));
    }

    #[test]
    fn validate_rejects_broken_documents() {
        assert!(validate("not json").is_err());
        assert!(validate(r#"{"no": "events"}"#).is_err());
        assert!(
            validate(r#"{"traceEvents": [{"ph": "X", "ts": 0, "pid": 1, "tid": 1, "name": "x"}]}"#)
                .is_err(),
            "missing dur must fail"
        );
        assert!(validate(
            r#"{"traceEvents": [{"ph": "X", "ts": 0, "dur": -1, "pid": 1, "tid": 1, "name": "x"}]}"#
        )
        .is_err(), "negative dur must fail");
        // Metadata-only documents are valid with zero complete events.
        assert_eq!(
            validate(r#"{"traceEvents": [{"ph": "M", "name": "process_name"}]}"#),
            Ok(0)
        );
    }

    #[test]
    fn instant_events_legally_omit_dur() {
        // A well-formed instant event has no dur at all; the validator
        // must accept it (and must not count it as a complete event).
        let js = r#"{"traceEvents": [
            {"ph": "i", "name": "fault", "ts": 5.0, "pid": 3, "tid": 1, "s": "t"},
            {"ph": "I", "name": "mark", "ts": 6.0, "pid": 3, "tid": 1},
            {"ph": "X", "name": "span", "ts": 0, "dur": 2.5, "pid": 1, "tid": 0}
        ]}"#;
        assert_eq!(validate(js), Ok(1));
    }

    #[test]
    fn dur_less_complete_event_is_an_error_not_a_panic() {
        let js = r#"{"traceEvents": [
            {"ph": "X", "name": "span", "ts": 0, "pid": 1, "tid": 0}
        ]}"#;
        let err = validate(js).unwrap_err();
        assert!(
            err.contains("dur"),
            "error should name the missing key: {err}"
        );
    }

    #[test]
    fn instant_events_still_need_a_timestamped_location() {
        let no_ts = r#"{"traceEvents": [{"ph": "i", "name": "m", "pid": 1, "tid": 0}]}"#;
        assert!(validate(no_ts).is_err());
        let no_name = r#"{"traceEvents": [{"ph": "i", "ts": 1.0, "pid": 1, "tid": 0}]}"#;
        assert!(validate(no_name).is_err());
    }

    #[test]
    fn escapes_names_safely() {
        let mut t = ChromeTrace::new();
        t.push(Span {
            pid: 1,
            tid: 0,
            name: "weird \"name\"\nwith\\stuff".into(),
            cat: "c".into(),
            ts_us: 0.0,
            dur_us: 1.0,
            args: vec![],
        });
        assert_eq!(validate(&t.to_json()), Ok(1));
    }
}
