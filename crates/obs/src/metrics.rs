//! The metrics facade: named atomic counters, gauges and fixed-bin
//! histograms.
//!
//! Design goals, in order:
//!
//! 1. **Near-zero cost when disabled.** Instrumented code holds an
//!    `Option<Arc<Registry>>`; with `None` the per-event cost is one
//!    branch. With a registry installed, handles ([`Counter`], [`Gauge`],
//!    [`FixedHistogram`]) are resolved *once* by name and each event is a
//!    single relaxed atomic RMW — no name lookup on the hot path.
//! 2. **Thread-safe and order-independent.** Parallel Monte-Carlo workers
//!    record into the same registry; every primitive is an atomic add, so
//!    totals are identical however the scheduler interleaves replicas.
//! 3. **Deterministic export.** Snapshots iterate names in sorted order,
//!    so JSON reports are byte-stable for a given set of recordings.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An `f64` gauge supporting atomic set and add (bit-cast CAS loop).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomically add `v`.
    pub fn add(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A histogram over a fixed linear binning of `[lo, hi)`.
///
/// Values below `lo` land in the first bin and values at or above `hi` in
/// the last (clamping, never dropping), so the recorded `count` always
/// equals the number of `record` calls. Alongside the bins the histogram
/// tracks the running sum, min and max for cheap summary statistics.
#[derive(Debug)]
pub struct FixedHistogram {
    lo: f64,
    width: f64,
    bins: Vec<AtomicU64>,
    count: AtomicU64,
    sum: Gauge,
    /// Min/max as order-preserving sortable bit patterns.
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// Map an `f64` to a bit pattern whose unsigned order matches `f64` order
/// (for non-NaN values), so min/max can be maintained with `fetch_min` /
/// `fetch_max`.
fn sortable_bits(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 0 {
        b | (1 << 63)
    } else {
        !b
    }
}

fn from_sortable_bits(b: u64) -> f64 {
    if b >> 63 == 1 {
        f64::from_bits(b & !(1 << 63))
    } else {
        f64::from_bits(!b)
    }
}

impl FixedHistogram {
    /// A histogram with `nbins` equal-width bins spanning `[lo, hi)`.
    pub fn linear(lo: f64, hi: f64, nbins: usize) -> Self {
        let nbins = nbins.max(1);
        assert!(hi > lo, "histogram range must be non-empty");
        FixedHistogram {
            lo,
            width: (hi - lo) / nbins as f64,
            bins: (0..nbins).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: Gauge::default(),
            min_bits: AtomicU64::new(sortable_bits(f64::INFINITY)),
            max_bits: AtomicU64::new(sortable_bits(f64::NEG_INFINITY)),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: f64) {
        let idx = ((v - self.lo) / self.width).floor();
        let idx = (idx.max(0.0) as usize).min(self.bins.len() - 1);
        self.bins[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.add(v);
        self.min_bits.fetch_min(sortable_bits(v), Ordering::Relaxed);
        self.max_bits.fetch_max(sortable_bits(v), Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of the recorded observations (0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum.get()
    }

    /// Mean of the recorded observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum.get() / n as f64)
    }

    /// Smallest recorded observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count() > 0).then(|| from_sortable_bits(self.min_bits.load(Ordering::Relaxed)))
    }

    /// Largest recorded observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count() > 0).then(|| from_sortable_bits(self.max_bits.load(Ordering::Relaxed)))
    }

    /// Bin counts, lowest bin first.
    pub fn bin_counts(&self) -> Vec<u64> {
        self.bins
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Lower edge of bin `i`.
    pub fn bin_edge(&self, i: usize) -> f64 {
        self.lo + self.width * i as f64
    }
}

/// A named collection of metrics.
///
/// Handles are created on first use and shared thereafter: two calls to
/// [`Registry::counter`] with the same name return the same underlying
/// atomic. Name maps are mutex-guarded, but the mutex is only touched at
/// handle-resolution time, never per event.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    hists: Mutex<BTreeMap<String, Arc<FixedHistogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram `name` with `nbins` linear bins over
    /// `[lo, hi)`. If the name already exists its existing binning wins.
    pub fn histogram(&self, name: &str, lo: f64, hi: f64, nbins: usize) -> Arc<FixedHistogram> {
        let mut map = self.hists.lock().unwrap();
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(FixedHistogram::linear(lo, hi, nbins)))
            .clone()
    }

    /// Render the registry as a deterministic JSON document:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {..}}` with keys
    /// in sorted order.
    pub fn to_json(&self) -> String {
        use crate::json::escape;
        let mut out = String::from("{\n  \"counters\": {");
        {
            let map = self.counters.lock().unwrap();
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n    \"{}\": {}", escape(k), v.get()));
            }
            if !map.is_empty() {
                out.push_str("\n  ");
            }
        }
        out.push_str("},\n  \"gauges\": {");
        {
            let map = self.gauges.lock().unwrap();
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    \"{}\": {}",
                    escape(k),
                    crate::json::num(v.get())
                ));
            }
            if !map.is_empty() {
                out.push_str("\n  ");
            }
        }
        out.push_str("},\n  \"histograms\": {");
        {
            let map = self.hists.lock().unwrap();
            for (i, (k, h)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let bins: Vec<String> = h.bin_counts().iter().map(|c| c.to_string()).collect();
                out.push_str(&format!(
                    "\n    \"{}\": {{\"count\": {}, \"lo\": {}, \"bin_width\": {}, \
                     \"mean\": {}, \"min\": {}, \"max\": {}, \"bins\": [{}]}}",
                    escape(k),
                    h.count(),
                    crate::json::num(h.lo),
                    crate::json::num(h.width),
                    crate::json::num(h.mean().unwrap_or(0.0)),
                    crate::json::num(h.min().unwrap_or(0.0)),
                    crate::json::num(h.max().unwrap_or(0.0)),
                    bins.join(", ")
                ));
            }
            if !map.is_empty() {
                out.push_str("\n  ");
            }
        }
        out.push_str("}\n}\n");
        out
    }

    /// Render the registry in the Prometheus text exposition format
    /// (version 0.0.4): one `# TYPE` line per metric, names sanitized
    /// through [`sanitize_metric_name`], histograms encoded as cumulative
    /// `_bucket{le="..."}` series plus `_sum` and `_count`.
    ///
    /// Iteration is in sorted key order, so the rendering is
    /// deterministic for a given set of recordings.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        {
            let map = self.counters.lock().unwrap();
            for (k, v) in map.iter() {
                let name = sanitize_metric_name(k);
                out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", v.get()));
            }
        }
        {
            let map = self.gauges.lock().unwrap();
            for (k, v) in map.iter() {
                let name = sanitize_metric_name(k);
                out.push_str(&format!(
                    "# TYPE {name} gauge\n{name} {}\n",
                    crate::json::num(v.get())
                ));
            }
        }
        {
            let map = self.hists.lock().unwrap();
            for (k, h) in map.iter() {
                let name = sanitize_metric_name(k);
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let mut cumulative = 0u64;
                let bins = h.bin_counts();
                for (i, c) in bins.iter().enumerate() {
                    cumulative += c;
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                        crate::json::num(h.bin_edge(i + 1))
                    ));
                }
                out.push_str(&format!(
                    "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
                    h.count(),
                    crate::json::num(h.sum()),
                    h.count()
                ));
            }
        }
        out
    }
}

/// Sanitize a registry key into a valid Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): invalid characters become `_`, a
/// leading digit is prefixed with `_`, and an empty key becomes `_`.
pub fn sanitize_metric_name(key: &str) -> String {
    let mut out = String::with_capacity(key.len() + 1);
    for (i, ch) in key.chars().enumerate() {
        let valid =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        if ch.is_ascii_digit() && i == 0 {
            out.push('_');
            out.push(ch);
        } else if valid {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("vm.steps");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("vm.steps").get(), 5, "same handle by name");
        let g = r.gauge("loss.halo");
        g.add(0.25);
        g.add(0.5);
        assert!((r.gauge("loss.halo").get() - 0.75).abs() < 1e-15);
        g.set(2.0);
        assert_eq!(g.get(), 2.0);
    }

    #[test]
    fn histogram_clamps_and_summarises() {
        let h = FixedHistogram::linear(0.0, 10.0, 10);
        for v in [-5.0, 0.5, 3.3, 9.9, 42.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        let bins = h.bin_counts();
        assert_eq!(bins[0], 2, "underflow clamps into first bin");
        assert_eq!(bins[9], 2, "overflow clamps into last bin");
        assert_eq!(bins[3], 1);
        assert_eq!(h.min(), Some(-5.0));
        assert_eq!(h.max(), Some(42.0));
        assert!((h.mean().unwrap() - 50.7 / 5.0).abs() < 1e-12);
        assert_eq!(h.bin_edge(3), 3.0);
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = FixedHistogram::linear(0.0, 1.0, 4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let r = Arc::new(Registry::new());
        let c = r.counter("n");
        let h = r.histogram("h", 0.0, 64.0, 64);
        std::thread::scope(|s| {
            for t in 0..4 {
                let (c, h) = (c.clone(), h.clone());
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.record((t * 1000 + i) as f64 % 64.0);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        assert_eq!(h.bin_counts().iter().sum::<u64>(), 4000);
    }

    #[test]
    fn prometheus_rendering_encodes_cumulative_buckets() {
        let r = Registry::new();
        r.counter("serve.requests.total").add(3);
        r.gauge("cache.hit_rate").set(0.5);
        let h = r.histogram("stage.eval_ms", 0.0, 4.0, 4);
        // Values chosen to keep the running sum exact in binary.
        for v in [0.5, 1.5, 1.75, 3.5, 99.0] {
            h.record(v);
        }
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE serve_requests_total counter\nserve_requests_total 3\n"));
        assert!(text.contains("# TYPE cache_hit_rate gauge\ncache_hit_rate 0.5\n"));
        assert!(text.contains("stage_eval_ms_bucket{le=\"1\"} 1\n"));
        assert!(
            text.contains("stage_eval_ms_bucket{le=\"2\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("stage_eval_ms_bucket{le=\"4\"} 5\n"),
            "overflow clamps into the last bin: {text}"
        );
        assert!(text.contains("stage_eval_ms_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("stage_eval_ms_count 5\n"));
        assert!(text.contains("stage_eval_ms_sum 106.25\n"), "{text}");
    }

    #[test]
    fn metric_names_sanitize_to_prometheus_identifiers() {
        assert_eq!(
            sanitize_metric_name("serve.stage.eval_ms"),
            "serve_stage_eval_ms"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_metric_name("a:b-c d"), "a:b_c_d");
        assert_eq!(sanitize_metric_name("ünïcode"), "_n_code");
    }

    #[test]
    fn json_export_is_sorted_and_parseable() {
        let r = Registry::new();
        r.counter("b.second").add(2);
        r.counter("a.first").add(1);
        r.gauge("g").set(1.5);
        r.histogram("h", 0.0, 4.0, 4).record(1.0);
        let js = r.to_json();
        assert!(js.find("a.first").unwrap() < js.find("b.second").unwrap());
        let parsed = crate::json::parse(&js).expect("registry JSON must parse");
        let obj = parsed.as_object().unwrap();
        assert!(obj.contains_key("counters"));
        assert!(obj.contains_key("gauges"));
        assert!(obj.contains_key("histograms"));
    }
}
