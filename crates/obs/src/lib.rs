//! Observability layer for the MPIBench/PEVPM reproduction.
//!
//! The paper's diagnostic claim (§5) is that PEVPM can *attribute* where a
//! parallel program's time goes; this crate supplies the machinery that
//! makes those attributions visible outside a debugger:
//!
//! - [`metrics`] — a lightweight facade of atomic counters, gauges and
//!   fixed-bin histograms in a named [`Registry`]. Instrumented code holds
//!   an `Option<Arc<Registry>>`; when no registry is installed the hot
//!   path pays a single branch per event, so uninstrumented runs are
//!   effectively free (enforced by the `engine_micro` benchmark).
//! - [`chrome`] — a Chrome `trace_event` JSON exporter. Both PEVPM
//!   *predicted* per-process virtual timelines and `mpisim` *measured*
//!   per-rank timelines render to the same format, so the paper's
//!   predicted-vs-measured comparison becomes a side-by-side flamegraph in
//!   `chrome://tracing` or <https://ui.perfetto.dev>.
//! - [`span`] — request-lifecycle spans: a bounded [`SpanRing`] of
//!   per-request [`RequestSpan`] stage records, the raw material behind
//!   the daemon's `/spans` endpoint, span-derived stage percentiles, and
//!   the pid-4 "service stages" Chrome-trace track.
//! - [`json`] — a dependency-free JSON emitter/parser used by the
//!   exporters and their schema tests (the workspace builds offline, so no
//!   serde).
//! - [`diag`] — verbosity-gated stderr diagnostics (`-q` / `--verbose`),
//!   keeping benchmark stdout machine-parseable.
//!
//! All primitives are thread-safe: replicated Monte-Carlo evaluations
//! record into one shared registry from many worker threads, and the
//! resulting totals are order-independent (atomic adds only).

pub mod chrome;
pub mod diag;
pub mod json;
pub mod metrics;
pub mod span;

pub use chrome::{ChromeTrace, Span};
pub use diag::Verbosity;
pub use json::Json;
pub use metrics::{Counter, FixedHistogram, Gauge, Registry};
pub use span::{RequestSpan, SpanRing, StageTiming};
