//! Golden-file test for the Chrome `trace_event` exporter.
//!
//! The emitted JSON is consumed by external viewers (`chrome://tracing`,
//! Perfetto), so its exact shape is a compatibility surface: any change to
//! field names, quoting, number formatting or event ordering shows up here
//! as a diff against the stored golden file.
//!
//! To regenerate after an intentional format change:
//! `BLESS=1 cargo test -p pevpm-obs --test chrome_golden`

use pevpm_obs::chrome::{validate, ChromeTrace, Span, PID_MEASURED, PID_PREDICTED};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join("predicted_measured.json")
}

/// A fixed two-pid trace exercising every exporter feature: process and
/// thread metadata, span args, escaping, and fractional timestamps.
fn sample() -> ChromeTrace {
    let mut t = ChromeTrace::new();
    t.name_process(PID_PREDICTED, "PEVPM predicted");
    t.name_thread(PID_PREDICTED, 0, "proc 0");
    t.push(Span {
        pid: PID_PREDICTED,
        tid: 0,
        name: "serial \"inner\"".into(),
        cat: "compute".into(),
        ts_us: 0.0,
        dur_us: 1234.5,
        args: vec![("phase".into(), "compute".into())],
    });
    t.push(Span {
        pid: PID_PREDICTED,
        tid: 0,
        name: "blocked".into(),
        cat: "blocked".into(),
        ts_us: 1234.5,
        dur_us: 100.25,
        args: vec![],
    });
    let mut m = ChromeTrace::new();
    m.name_process(PID_MEASURED, "mpisim measured");
    m.name_thread(PID_MEASURED, 1, "rank 1");
    m.push(Span {
        pid: PID_MEASURED,
        tid: 1,
        name: "recv [coll]".into(),
        cat: "recv".into(),
        ts_us: 10.0,
        dur_us: 42.0,
        args: vec![("peer".into(), "0".into()), ("bytes".into(), "1024".into())],
    });
    t.merge(m);
    t
}

#[test]
fn exporter_output_matches_golden_file() {
    let actual = sample().to_json();
    let path = golden_path();
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with BLESS=1 once",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "Chrome exporter output drifted from the golden file; if the change \
         is intentional, regenerate with BLESS=1"
    );
}

#[test]
fn golden_file_is_schema_valid() {
    let js = std::fs::read_to_string(golden_path()).expect("golden file present");
    assert_eq!(validate(&js), Ok(3));
    // The keys the trace-event spec requires on complete events.
    for key in [
        "\"ph\"", "\"ts\"", "\"dur\"", "\"pid\"", "\"tid\"", "\"name\"",
    ] {
        assert!(js.contains(key), "golden file missing {key}");
    }
}
