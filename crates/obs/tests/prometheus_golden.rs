//! Golden-file and property tests for the Prometheus text renderer.
//!
//! `/metrics` output is scraped by external collectors, so the exact text
//! format — `# TYPE` lines, name sanitization, cumulative `_bucket`
//! encoding, number formatting — is a compatibility surface. The golden
//! file pins it; the property test guarantees that *any* registry key
//! renders to a valid Prometheus metric name.
//!
//! To regenerate after an intentional format change:
//! `BLESS=1 cargo test -p pevpm-obs --test prometheus_golden`

use pevpm_obs::metrics::sanitize_metric_name;
use pevpm_obs::Registry;
use proptest::prelude::*;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join("registry.prom")
}

/// A registry exercising every renderer feature: counters, a gauge with
/// a fractional value, a histogram with underflow/overflow clamping, and
/// keys that need sanitization (dots, dashes, a leading digit).
fn sample() -> Registry {
    let r = Registry::new();
    r.counter("serve.requests.total").add(101);
    r.counter("serve.cache.evictions").inc();
    r.counter("9starts-with-digit").add(7);
    r.gauge("serve.model_cache_hit_rate").set(0.75);
    let h = r.histogram("serve.stage.eval_ms", 0.0, 5.0, 5);
    for v in [-1.0, 0.25, 1.5, 2.5, 2.75, 4.5, 100.0] {
        h.record(v);
    }
    r.histogram("serve.stage.render_ms", 0.0, 2.0, 2);
    r
}

#[test]
fn prometheus_output_matches_golden_file() {
    let actual = sample().render_prometheus();
    let path = golden_path();
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with BLESS=1 once",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "Prometheus renderer output drifted from the golden file; if the \
         change is intentional, regenerate with BLESS=1"
    );
}

/// Every non-comment line must be `name value` or
/// `name{le="..."} value` with a valid metric name and a parseable value.
#[test]
fn golden_file_lines_are_well_formed() {
    let text = std::fs::read_to_string(golden_path()).expect("golden file present");
    let mut metric_lines = 0;
    for line in text.lines() {
        if line.starts_with("# TYPE ") {
            let mut parts = line.split_whitespace().skip(2);
            assert!(is_valid_name(parts.next().expect("type line has a name")));
            assert!(matches!(
                parts.next(),
                Some("counter" | "gauge" | "histogram")
            ));
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').expect("line has a value");
        let name = name_part.split('{').next().expect("line has a name");
        assert!(is_valid_name(name), "invalid metric name in {line:?}");
        if let Some((_, labels)) = name_part.split_once('{') {
            assert!(
                labels.starts_with("le=\"") && labels.ends_with("\"}"),
                "unexpected label set in {line:?}"
            );
        }
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "unparseable value in {line:?}"
        );
        metric_lines += 1;
    }
    assert!(metric_lines > 10, "golden file suspiciously small");
}

fn is_valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    let first_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    first_ok
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary registry keys — including unicode, spaces, digits and
    /// punctuation — always sanitize to valid Prometheus identifiers.
    #[test]
    fn arbitrary_keys_sanitize_to_valid_names(key in "[ -~]{0,24}") {
        let name = sanitize_metric_name(&key);
        prop_assert!(is_valid_name(&name), "key {:?} rendered as {:?}", key, name);
    }

    /// The renderer never emits an invalid name whatever keys a registry
    /// holds, and histogram `_bucket`/`_sum`/`_count` suffixes survive
    /// sanitization.
    #[test]
    fn rendered_registries_expose_only_valid_names(
        keys in proptest::collection::vec("[ -~]{0,16}", 1..6)
    ) {
        let r = Registry::new();
        for (i, k) in keys.iter().enumerate() {
            match i % 3 {
                0 => r.counter(k).inc(),
                1 => r.gauge(k).set(1.5),
                _ => r.histogram(k, 0.0, 1.0, 2).record(0.5),
            }
        }
        for line in r.render_prometheus().lines() {
            let name = if let Some(rest) = line.strip_prefix("# TYPE ") {
                rest.split_whitespace().next().unwrap_or("")
            } else {
                line.split(['{', ' ']).next().unwrap_or("")
            };
            prop_assert!(is_valid_name(name), "line {:?} has invalid name {:?}", line, name);
        }
    }
}
