//! Concurrent-serve determinism against the paper's Jacobi model.
//!
//! The same request replayed through the daemon — cold cache, warm
//! cache, and batched among unrelated requests — must be bitwise
//! identical to an in-process one-shot evaluation of the identical
//! request plan (the path `pevpm predict` runs). The `#[ignore]`d test
//! additionally pins the full 64x2 shape to the repository's canonical
//! Jacobi baseline, `0.6487360493288068`.

use pevpm::vm::{monte_carlo, EvalConfig};
use pevpm_apps::jacobi::{self, JacobiConfig};
use pevpm_bench::fig6;
use pevpm_dist::DistTable;
use pevpm_mpibench::MachineShape;
use pevpm_obs::json::{self, Json};
use pevpm_serve::plan::{self, EvalOutcome, PredictRequest};
use pevpm_serve::{Client, ServeConfig, Server};
use std::net::SocketAddr;
use std::thread::JoinHandle;

/// Hand-annotated Jacobi halo exchange, directive-for-directive the
/// structure `pevpm_apps::jacobi::model` builds programmatically (even/odd
/// phased exchange with both end ranks guarded). Only the statement
/// labels differ — attribution, never timing — so makespans must agree
/// to the bit.
const JACOBI_SRC: &str = "\
/* Jacobi iteration skeleton: 1-D row decomposition, halo exchange. */
// PEVPM Loop iterations = iterations
// PEVPM {
// PEVPM Runon c1 = procnum % 2 == 0
// PEVPM &     c2 = procnum % 2 != 0
// PEVPM {
// PEVPM Runon c1 = procnum != 0
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum
// PEVPM &       to = procnum-1
// PEVPM }
// PEVPM Runon c1 = procnum != numprocs-1
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum
// PEVPM &       to = procnum+1
// PEVPM Message type = MPI_Recv
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum+1
// PEVPM &       to = procnum
// PEVPM }
// PEVPM Runon c1 = procnum != 0
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum-1
// PEVPM &       to = procnum
// PEVPM }
// PEVPM }
// PEVPM {
// PEVPM Runon c1 = procnum != numprocs-1
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum+1
// PEVPM &       to = procnum
// PEVPM }
// PEVPM Message type = MPI_Recv
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum-1
// PEVPM &       to = procnum
// PEVPM Message type = MPI_Send
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum
// PEVPM &       to = procnum-1
// PEVPM Runon c1 = procnum != numprocs-1
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum
// PEVPM &       to = procnum+1
// PEVPM }
// PEVPM }
// PEVPM Serial time = tserial/numprocs
// PEVPM }
";

/// The repository's canonical 64x2 Jacobi baseline (see DESIGN.md and the
/// `tcost` bench): mean makespan over 8 replications at seed 11.
const BASELINE_64X2: f64 = 0.6487360493288068;

fn jacobi_table(shape: MachineShape, bench_reps: usize) -> DistTable {
    fig6::shape_table(shape, &[512, 1024, 2048], bench_reps, 11)
}

fn jacobi_request(procs: usize, iterations: usize, reps: usize) -> PredictRequest {
    let mut req = PredictRequest::new(JACOBI_SRC, procs);
    req.seed = 11;
    req.reps = reps;
    req.params = vec![
        ("xsize".to_string(), 256.0),
        ("iterations".to_string(), iterations as f64),
        ("tserial".to_string(), 3.24e-3),
    ];
    req
}

/// Evaluate a request in-process through the same plan layer the one-shot
/// `pevpm predict` CLI uses, returning the headline makespan (batch mean).
fn oneshot_mean(table: &DistTable, req: &PredictRequest) -> f64 {
    let model = plan::parse_model(&req.model_src, "test model").expect("parse");
    let mode = req.prediction_mode().expect("mode");
    let timing =
        plan::build_timing(table, mode, req.pingpong, req.compile_options()).expect("timing");
    let cfg = req.eval_config().expect("config");
    let outcome = plan::evaluate_plan(&model, &cfg, &timing, req.reps).expect("evaluate");
    match outcome {
        EvalOutcome::Batch(mc) => mc.mean,
        EvalOutcome::Single(p) => p.makespan,
    }
}

fn start_daemon(table: DistTable) -> (SocketAddr, JoinHandle<()>) {
    // The widest supported worker pool: every determinism assertion in
    // this file must hold under full connection concurrency too.
    let cfg = ServeConfig {
        conns: 8,
        ..ServeConfig::default()
    };
    let server = Server::with_tables(cfg, vec![("default".to_string(), table)]).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("daemon run"));
    (addr, handle)
}

fn parse_ok(response: &str) -> Json {
    let j = json::parse(response).expect("response parses");
    assert_eq!(
        j.get("ok").and_then(Json::as_bool),
        Some(true),
        "daemon refused the request: {response}"
    );
    j.get("result").expect("result field").clone()
}

fn mean_of(result: &Json) -> f64 {
    assert_eq!(result.get("kind").and_then(Json::as_str), Some("mc"));
    result
        .get("mean")
        .and_then(Json::as_num)
        .expect("mean field")
}

#[test]
fn daemon_replay_is_bitwise_identical_to_oneshot() {
    let shape = MachineShape { nodes: 4, ppn: 1 };
    let table = jacobi_table(shape, 10);
    let req = jacobi_request(4, 20, 8);

    // The hand-annotated source must lower to the same evaluation as the
    // programmatic model — labels aside — before the daemon enters the
    // picture at all.
    let expected = oneshot_mean(&table, &req);
    let programmatic = {
        let cfg = JacobiConfig {
            xsize: 256,
            iterations: 20,
            serial_secs: 3.24e-3,
        };
        let timing = plan::build_timing(
            &table,
            req.prediction_mode().expect("mode"),
            false,
            req.compile_options(),
        )
        .expect("timing");
        monte_carlo(
            &jacobi::model(&cfg),
            &EvalConfig::new(4).with_seed(11),
            &timing,
            8,
        )
        .expect("programmatic mc")
        .mean
    };
    assert_eq!(
        programmatic.to_bits(),
        expected.to_bits(),
        "annotated source diverged from jacobi::model: {programmatic} vs {expected}"
    );

    let (addr, handle) = start_daemon(table);
    let mut client = Client::connect(&addr.to_string()).expect("connect");

    // Cold cache, then warm cache: byte-identical responses.
    let cold = client.predict("r", "default", &req).expect("cold");
    let warm = client.predict("r", "default", &req).expect("warm");
    assert_eq!(cold, warm, "warm-cache response changed bytes");
    let cold_result = parse_ok(&cold);
    assert_eq!(
        mean_of(&cold_result).to_bits(),
        expected.to_bits(),
        "daemon mean diverged from one-shot plan evaluation"
    );

    // Batched among unrelated requests: the same item must come back
    // identical to its lone answer, bitwise.
    let unrelated_a = jacobi_request(3, 7, 2);
    let mut unrelated_b = jacobi_request(4, 20, 8);
    unrelated_b.seed = 99;
    let items = vec![
        ("default".to_string(), unrelated_a),
        ("default".to_string(), req.clone()),
        ("default".to_string(), unrelated_b),
    ];
    let batch = client.batch("batch", &items).expect("batch");
    let batch_result = parse_ok(&batch);
    let slots = batch_result.as_array().expect("batch result array");
    assert_eq!(slots.len(), 3);
    let slot_b = &slots[1];
    assert_eq!(
        slot_b.get("ok").and_then(Json::as_bool),
        Some(true),
        "batched item failed: {slot_b:?}"
    );
    let slot_b_result = slot_b.get("result").expect("slot result");
    assert_eq!(
        slot_b_result, &cold_result,
        "batched answer differs from the lone answer"
    );
    // And the unrelated neighbour with a different seed really is a
    // different prediction (the cache keys on content, not position).
    let slot_c_result = slots[2].get("result").expect("slot result");
    assert_ne!(
        mean_of(slot_c_result).to_bits(),
        mean_of(&cold_result).to_bits(),
        "different seeds must not collide in the caches"
    );

    // Every request above shared one model source and one table shape per
    // (mode, options) key: exactly one compile each.
    let stats = client.stats("s").expect("stats");
    let stats_result = parse_ok(&stats);
    let counters = stats_result.get("counters").expect("counters").clone();
    assert_eq!(
        counters.get("serve.table_compiles").and_then(Json::as_num),
        Some(1.0)
    );
    assert_eq!(
        counters.get("serve.model_compiles").and_then(Json::as_num),
        Some(1.0)
    );

    client.shutdown("bye").expect("shutdown");
    handle.join().expect("daemon thread");
}

/// `--eval-threads` invariance through the whole service path: the DAG
/// scheduler must return bitwise the serial prediction at every worker
/// count (Jacobi's halo chain is one SCC, so the component run *is* the
/// serial run), and a daemon configured with an eval-threads default must
/// answer identically to one without.
#[test]
fn eval_threads_is_bitwise_invariant_through_daemon_and_oneshot() {
    let shape = MachineShape { nodes: 4, ppn: 1 };
    let table = jacobi_table(shape, 10);
    let base_req = jacobi_request(4, 20, 8);
    let expected = oneshot_mean(&table, &base_req);

    // One-shot plan layer, each eval-threads value.
    for eval_threads in [1usize, 2, 8] {
        let mut req = base_req.clone();
        req.eval_threads = eval_threads;
        let got = oneshot_mean(&table, &req);
        assert_eq!(
            got.to_bits(),
            expected.to_bits(),
            "one-shot mean diverged at eval-threads={eval_threads}"
        );
    }

    // Daemon with a server-side eval-threads default: identical bytes to
    // the request's own answer, and the DAG metrics are exported.
    let server = Server::with_tables(
        ServeConfig {
            eval_threads: 2,
            ..ServeConfig::default()
        },
        vec![("default".to_string(), table)],
    )
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("daemon run"));
    let mut client = Client::connect(&addr.to_string()).expect("connect");

    let default_resp = client.predict("d", "default", &base_req).expect("default");
    assert_eq!(
        mean_of(&parse_ok(&default_resp)).to_bits(),
        expected.to_bits(),
        "daemon eval-threads default changed the prediction"
    );
    for eval_threads in [1usize, 2, 8] {
        let mut req = base_req.clone();
        req.eval_threads = eval_threads;
        let resp = client.predict("e", "default", &req).expect("predict");
        assert_eq!(
            mean_of(&parse_ok(&resp)).to_bits(),
            expected.to_bits(),
            "daemon diverged at eval_threads={eval_threads}"
        );
    }
    // Batched items run under the shared thread budget; same answer.
    let mut batch_req = base_req.clone();
    batch_req.eval_threads = 8;
    let batch = client
        .batch("b", &[("default".to_string(), batch_req)])
        .expect("batch");
    let slots = parse_ok(&batch);
    let slot = &slots.as_array().expect("array")[0];
    assert_eq!(slot.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        mean_of(slot.get("result").expect("result")).to_bits(),
        expected.to_bits(),
        "batched eval-threads item diverged"
    );

    // Scheduler telemetry reaches the `stats` op (and with it the
    // /metrics sidecar, which renders the same registry).
    let stats = client.stats("s").expect("stats");
    let counters = parse_ok(&stats).get("counters").expect("counters").clone();
    let dag_evals = counters
        .get("dag.evaluations")
        .and_then(Json::as_num)
        .unwrap_or(0.0);
    assert!(
        dag_evals > 0.0,
        "dag.evaluations missing from stats: {counters:?}"
    );

    client.shutdown("bye").expect("shutdown");
    handle.join().expect("daemon thread");
}

/// The full-size anchor: the 64x2 Perseus shape from the paper's §6
/// evaluation, pinned to the repository-wide baseline constant. Slow
/// (128 procs x 1000 iterations x 8 replications), so `#[ignore]`d;
/// run with `cargo test -p pevpm-serve --release -- --ignored`.
#[test]
#[ignore = "full 64x2 shape; run with --release -- --ignored"]
fn daemon_reproduces_the_64x2_jacobi_baseline() {
    let shape = MachineShape { nodes: 64, ppn: 2 };
    let table = jacobi_table(shape, 30);
    let req = jacobi_request(128, 1000, 8);

    let expected = oneshot_mean(&table, &req);
    assert_eq!(
        expected.to_bits(),
        BASELINE_64X2.to_bits(),
        "one-shot plan evaluation lost the baseline: got {expected:?}"
    );

    // The acceptance anchor for intra-evaluation parallelism: the 64x2
    // prediction is bitwise the baseline at every --eval-threads value.
    for eval_threads in [1usize, 2, 8] {
        let mut r = req.clone();
        r.eval_threads = eval_threads;
        let got = oneshot_mean(&table, &r);
        assert_eq!(
            got.to_bits(),
            BASELINE_64X2.to_bits(),
            "64x2 baseline lost at eval-threads={eval_threads}: got {got:?}"
        );
    }

    let (addr, handle) = start_daemon(table);
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let cold = client.predict("r", "default", &req).expect("cold");
    let warm = client.predict("r", "default", &req).expect("warm");
    assert_eq!(cold, warm, "warm-cache response changed bytes");
    let mean = mean_of(&parse_ok(&cold));
    assert_eq!(
        mean.to_bits(),
        BASELINE_64X2.to_bits(),
        "daemon lost the 64x2 baseline: got {mean:?}"
    );

    client.shutdown("bye").expect("shutdown");
    handle.join().expect("daemon thread");
}
