//! End-to-end telemetry guarantees for the daemon:
//!
//! 1. **Byte invisibility** — enabling the span ring, the request log and
//!    the HTTP sidecar must not change a single response byte. Telemetry
//!    observes request handling; it never steers it.
//! 2. **Live sidecar** — a running daemon answers `/metrics` (Prometheus
//!    text with request/stage counts matching the traffic served),
//!    `/healthz`, and `/spans?last=N` over plain HTTP.
//! 3. **Span fidelity** — a request's stage windows sum to approximately
//!    its wall time: the stages cover the work, and no stage is counted
//!    twice.

use pevpm_dist::{CommDist, DistKey, DistTable, Histogram, Op};
use pevpm_obs::json::{self, Json};
use pevpm_serve::{Client, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

const SRC: &str = "\
// PEVPM Loop iterations = rounds
// PEVPM {
// PEVPM Runon c1 = procnum == 0
// PEVPM &     c2 = procnum == 1
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM }
";

fn test_table() -> DistTable {
    let mut t = DistTable::new();
    let mut h = Histogram::new(0.0, 1e-6);
    for i in 0..64 {
        h.add(1e-6 * f64::from(i % 11));
    }
    for op in [Op::Send, Op::Recv] {
        for size in [512u64, 1024, 2048] {
            for contention in [1u32, 2] {
                t.insert(
                    DistKey {
                        op,
                        size,
                        contention,
                    },
                    CommDist::Hist(h.clone()),
                );
            }
        }
    }
    t
}

fn predict_frame(reps: usize) -> String {
    format!(
        "{{\"op\":\"predict\",\"id\":\"p\",\"model\":\"{}\",\"procs\":2,\
         \"params\":{{\"rounds\":20}},\"reps\":{reps},\"seed\":3}}",
        pevpm_obs::json::escape(SRC)
    )
}

fn batch_frame(items: usize) -> String {
    let body = format!(
        "{{\"model\":\"{}\",\"procs\":2,\"params\":{{\"rounds\":20}},\"reps\":2,\"seed\":3}}",
        pevpm_obs::json::escape(SRC)
    );
    let bodies: Vec<String> = (0..items).map(|_| body.clone()).collect();
    format!(
        "{{\"op\":\"batch\",\"id\":\"b\",\"requests\":[{}]}}",
        bodies.join(",")
    )
}

/// A blocking GET against the sidecar; returns (status line, body).
fn http_get(addr: std::net::SocketAddr, target: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect sidecar");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// Pull a `name value` sample out of a Prometheus text body.
fn prom_value(body: &str, name: &str) -> Option<f64> {
    body.lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .and_then(|l| l[name.len() + 1..].trim().parse().ok())
}

#[test]
fn telemetry_never_changes_a_response_byte() {
    let log =
        std::env::temp_dir().join(format!("pevpm-telemetry-log-{}.jsonl", std::process::id()));
    let plain = Server::with_tables(
        ServeConfig::default(),
        vec![("default".to_string(), test_table())],
    )
    .unwrap();
    let observed = Server::with_tables(
        ServeConfig {
            http_addr: Some("127.0.0.1:0".to_string()),
            log_out: Some(log.clone()),
            log_slow_ms: Some(0.0),
            span_capacity: 8,
            ..ServeConfig::default()
        },
        vec![("default".to_string(), test_table())],
    )
    .unwrap();
    let frames = [
        predict_frame(1),
        predict_frame(1), // warm-cache repeat
        predict_frame(4),
        batch_frame(3),
        "{\"op\":\"predict\",\"id\":\"x\",\"model\":\"m\",\"procs\":2,\"table\":\"nope\"}"
            .to_string(),
        "{\"op\":\"ping\",\"id\":\"k\"}".to_string(),
    ];
    for frame in &frames {
        let (a, _) = plain.handle_frame(frame);
        let (b, _) = observed.handle_frame(frame);
        assert_eq!(a, b, "telemetry changed the response to {frame}");
    }
    // The observed server really did record everything it answered: one
    // span per frame plus one per batch item (3 here).
    let expected_spans = frames.len() as u64 + 3;
    assert_eq!(observed.telemetry().ring().recorded(), expected_spans);
    let logged = std::fs::read_to_string(&log).unwrap();
    assert_eq!(logged.lines().count() as u64, expected_spans);
    for line in logged.lines() {
        json::parse(line).expect("each log line is standalone JSON");
    }
    std::fs::remove_file(&log).ok();
}

#[test]
fn live_sidecar_serves_metrics_health_and_spans() {
    let server = Arc::new(
        Server::with_tables(
            ServeConfig {
                http_addr: Some("127.0.0.1:0".to_string()),
                ..ServeConfig::default()
            },
            vec![("default".to_string(), test_table())],
        )
        .unwrap(),
    );
    let frame_addr = server.local_addr().unwrap();
    let http_addr = server.http_addr().expect("sidecar bound at construction");
    let daemon = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };

    let mut client = Client::connect(&frame_addr.to_string()).unwrap();
    let req = {
        let mut r = pevpm_serve::PredictRequest::new(SRC.to_string(), 2);
        r.params.push(("rounds".to_string(), 20.0));
        r.reps = 1;
        r.seed = 3;
        r
    };
    for _ in 0..3 {
        let resp = client.predict("p", "default", &req).unwrap();
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }

    // /metrics: Prometheus text, request + per-stage counts match traffic.
    let (status, body) = http_get(http_addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(
        prom_value(&body, "serve_requests_total"),
        Some(3.0),
        "{body}"
    );
    for stage in pevpm_serve::telemetry::STAGES {
        assert_eq!(
            prom_value(&body, &format!("serve_stage_{stage}_ms_count")),
            Some(3.0),
            "stage {stage} count in:\n{body}"
        );
    }
    assert_eq!(prom_value(&body, "serve_request_ms_count"), Some(3.0));

    // /healthz: liveness with uptime and request totals.
    let (status, body) = http_get(http_addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let v = json::parse(&body).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(v.get("requests_total").and_then(Json::as_num), Some(3.0));

    // /spans: the most recent spans, oldest first, with stage windows.
    let (status, body) = http_get(http_addr, "/spans?last=2");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let spans = json::parse(&body).unwrap();
    let spans = spans.as_array().unwrap();
    assert_eq!(spans.len(), 2);
    for span in spans {
        assert_eq!(span.get("op").and_then(Json::as_str), Some("predict"));
        assert_eq!(span.get("outcome").and_then(Json::as_str), Some("ok"));
        let stages = span.get("stages").and_then(Json::as_array).unwrap();
        assert_eq!(stages.len(), pevpm_serve::telemetry::STAGES.len());
    }

    // Unknown routes 404 without disturbing the daemon.
    let (status, _) = http_get(http_addr, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    client.shutdown("bye").unwrap();
    daemon.join().unwrap().unwrap();
}

#[test]
fn span_stage_windows_cover_the_request_wall_time() {
    let server = Server::with_tables(
        ServeConfig::default(),
        vec![("default".to_string(), test_table())],
    )
    .unwrap();
    for reps in [1, 1, 4, 8] {
        server.handle_frame(&predict_frame(reps));
    }
    let spans = server.telemetry().ring().last(16);
    assert_eq!(spans.len(), 4);
    for span in &spans {
        let sum = span.stage_sum_us();
        // Stages nest inside the request window (tiny float slack), and
        // the unattributed remainder — timer bookkeeping between stages —
        // stays below an absolute bound far under any real stage cost.
        assert!(
            sum <= span.total_us * 1.001 + 1.0,
            "stage sum {sum}us exceeds request wall {}us",
            span.total_us
        );
        assert!(
            span.total_us - sum < 5_000.0,
            "request #{}: {}us of {}us unattributed to stages",
            span.id,
            span.total_us - sum,
            span.total_us
        );
    }
}
