//! Transport-robustness integration tests: disconnect classification,
//! slowloris eviction under concurrency, load shedding, drain, and
//! bitwise serial-vs-concurrent determinism — all over real sockets.

use pevpm_dist::DistTable;
use pevpm_obs::json::{self, Json};
use pevpm_serve::plan::PredictRequest;
use pevpm_serve::{proto, ChaosMode, Client, ServeConfig, Server};
use std::io::{BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const SRC: &str = "\
// PEVPM Loop iterations = rounds
// PEVPM {
// PEVPM Runon c1 = procnum == 0
// PEVPM &     c2 = procnum == 1
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM }
";

fn test_table() -> DistTable {
    let mut t = DistTable::new();
    let mut h = pevpm_dist::Histogram::new(0.0, 1e-6);
    for i in 0..64 {
        h.add(1e-6 * f64::from(i % 11));
    }
    for op in [pevpm_dist::Op::Send, pevpm_dist::Op::Recv] {
        for size in [512u64, 1024, 2048] {
            for contention in [1u32, 2] {
                t.insert(
                    pevpm_dist::DistKey {
                        op,
                        size,
                        contention,
                    },
                    pevpm_dist::CommDist::Hist(h.clone()),
                );
            }
        }
    }
    t
}

fn request(rounds: f64, seed: u64) -> PredictRequest {
    let mut req = PredictRequest::new(SRC, 2);
    req.params = vec![("rounds".to_string(), rounds)];
    req.seed = seed;
    req.reps = 2;
    req
}

fn start(cfg: ServeConfig) -> (SocketAddr, JoinHandle<()>) {
    let server =
        Server::with_tables(cfg, vec![("default".to_string(), test_table())]).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("daemon run"));
    (addr, handle)
}

fn counters_of(stats_resp: &str) -> Json {
    let v = json::parse(stats_resp).expect("stats parses");
    v.get("result")
        .and_then(|r| r.get("counters"))
        .expect("counters")
        .clone()
}

fn counter(counters: &Json, name: &str) -> f64 {
    counters.get(name).and_then(Json::as_num).unwrap_or(0.0)
}

/// Clean EOF, truncated prefix, and a mid-body stall each land in their
/// own counter on the concurrent server — the three disconnect shapes
/// are observably distinct outcomes, not one generic "error".
#[test]
fn disconnect_classes_stay_distinct_under_concurrency() {
    let (addr, handle) = start(ServeConfig {
        conns: 2,
        io_timeout_ms: 300,
        ..ServeConfig::default()
    });

    // Clean EOF: connect, say nothing, close.
    let s = TcpStream::connect(addr).expect("connect");
    s.shutdown(Shutdown::Both).expect("shutdown");
    drop(s);

    // Truncated prefix: 2 of 4 length bytes, then close.
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(&[0, 0]).expect("write");
    s.flush().expect("flush");
    drop(s);

    // Timed-out mid-body: announce 64 bytes, deliver 9, stall. The
    // daemon must answer with a structured "timeout" error frame.
    let stalled = TcpStream::connect(addr).expect("connect");
    let mut w = stalled.try_clone().expect("clone");
    w.write_all(&64u32.to_be_bytes()).expect("prefix");
    w.write_all(b"{\"op\":\"p").expect("partial body");
    w.flush().expect("flush");
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut reader = BufReader::new(stalled);
    let reaction = proto::read_frame_deadline(&mut reader, proto::MAX_FRAME).expect("reaction");
    let proto::FrameRead::Frame(frame) = reaction else {
        panic!("expected a timeout error frame, got {reaction:?}");
    };
    let v = json::parse(&frame).expect("frame parses");
    assert_eq!(
        v.get("code").and_then(Json::as_str),
        Some("timeout"),
        "{frame}"
    );

    // Each class ticked its own counter exactly once.
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let counters = counters_of(&client.stats("s").expect("stats"));
        let clean = counter(&counters, "serve.conn.clean_eof");
        let truncated = counter(&counters, "serve.conn.truncated");
        let timed_out = counter(&counters, "serve.conn.io_timeouts");
        if clean >= 1.0 && truncated >= 1.0 && timed_out >= 1.0 {
            assert_eq!((clean, truncated, timed_out), (1.0, 1.0, 1.0));
            break;
        }
        assert!(
            Instant::now() < deadline,
            "counters never converged: clean={clean} truncated={truncated} timeout={timed_out}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    client.shutdown("bye").expect("shutdown");
    handle.join().expect("daemon thread");
}

/// A stalled mid-frame peer is evicted within `--io-timeout-ms` while a
/// second connection keeps being served the whole time.
#[test]
fn stalled_peer_is_evicted_while_others_are_served() {
    let io_timeout_ms = 400u64;
    let (addr, handle) = start(ServeConfig {
        conns: 2,
        io_timeout_ms,
        ..ServeConfig::default()
    });

    // Occupy one worker with a slowloris peer.
    let stalled = TcpStream::connect(addr).expect("connect");
    let mut w = stalled.try_clone().expect("clone");
    w.write_all(&128u32.to_be_bytes()).expect("prefix");
    w.write_all(b"{\"id\":").expect("partial");
    w.flush().expect("flush");
    let t0 = Instant::now();

    // The other connection answers pings throughout the stall window.
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    while t0.elapsed() < Duration::from_millis(io_timeout_ms + 100) {
        let resp = client.ping("alive").expect("ping during stall");
        assert!(resp.contains("\"ok\":true"), "{resp}");
        std::thread::sleep(Duration::from_millis(25));
    }

    // The stalled peer got its timeout frame no later than the deadline
    // plus scheduling slack, and the socket was closed after it.
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut reader = BufReader::new(stalled);
    match proto::read_frame_deadline(&mut reader, proto::MAX_FRAME).expect("reaction") {
        proto::FrameRead::Frame(frame) => {
            assert!(frame.contains("\"code\":\"timeout\""), "{frame}");
        }
        other => panic!("expected timeout frame, got {other:?}"),
    }
    let counters = counters_of(&client.stats("s").expect("stats"));
    assert_eq!(counter(&counters, "serve.conn.io_timeouts"), 1.0);
    client.shutdown("bye").expect("shutdown");
    handle.join().expect("daemon thread");
}

/// Every chaos mode runs against a live daemon without killing it.
#[test]
fn chaos_modes_never_kill_the_daemon() {
    let io_timeout_ms = 300u64;
    let (addr, handle) = start(ServeConfig {
        conns: 2,
        io_timeout_ms,
        ..ServeConfig::default()
    });
    let reports = pevpm_serve::chaos::run_all(&addr.to_string(), io_timeout_ms).expect("chaos run");
    assert_eq!(reports.len(), ChaosMode::ALL.len());
    for r in &reports {
        assert!(r.survived, "daemon died under {}: {r:?}", r.mode.name());
    }
    // The stall mode saw the structured timeout; framing abuse saw usage.
    let by_mode = |m: ChaosMode| {
        reports
            .iter()
            .find(|r| r.mode == m)
            .map(|r| r.outcome.clone())
            .unwrap_or_default()
    };
    assert_eq!(by_mode(ChaosMode::StalledWrite), "error-frame:timeout");
    assert_eq!(by_mode(ChaosMode::Oversized), "error-frame:usage");
    assert_eq!(by_mode(ChaosMode::Garbage), "error-frame:usage");
    assert_eq!(by_mode(ChaosMode::SlowRead), "frame:ok");

    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let counters = counters_of(&client.stats("s").expect("stats"));
    assert!(counter(&counters, "serve.conn.io_timeouts") >= 1.0);
    assert!(counter(&counters, "serve.conn.bad_frames") >= 2.0);
    assert!(counter(&counters, "serve.conn.truncated") >= 1.0);
    client.shutdown("bye").expect("shutdown");
    handle.join().expect("daemon thread");
}

/// With one in-flight permit and zero queue slots, a second concurrent
/// prediction is shed with the documented `"overloaded"` response while
/// the first runs to completion — and the shed is observable in the
/// `serve.shed.total` counter and the `serve.inflight` gauge.
#[test]
fn saturation_sheds_instead_of_queueing() {
    let (addr, handle) = start(ServeConfig {
        conns: 4,
        inflight: 1,
        queue: Some(0),
        shed_retry_ms: 42,
        drain_ms: 30_000,
        ..ServeConfig::default()
    });

    // A batch big enough to hold the single permit while the probe runs;
    // the permit spans the whole frame.
    let heavy_items: Vec<(String, PredictRequest)> = (0..256)
        .map(|i| ("default".to_string(), request(400.0, 7 + i)))
        .collect();
    let addr_str = addr.to_string();
    let heavy = std::thread::spawn(move || {
        let mut c = Client::connect(&addr_str).expect("connect heavy");
        // Plain request (no overload retry): this frame must be admitted.
        c.request(&format!(
            "{{\"op\":\"batch\",\"id\":\"heavy\",\"requests\":[{}]}}",
            heavy_items
                .iter()
                .map(|(t, r)| pevpm_serve::client::predict_body(t, r))
                .collect::<Vec<_>>()
                .join(",")
        ))
        .expect("heavy batch")
    });

    // Wait until the daemon reports the permit taken.
    let mut stats_client = Client::connect(&addr.to_string()).expect("connect stats");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = stats_client.stats("s").expect("stats");
        let v = json::parse(&resp).expect("parse");
        let inflight = v
            .get("result")
            .and_then(|r| r.get("gauges"))
            .and_then(|g| g.get("serve.inflight"))
            .and_then(Json::as_num)
            .unwrap_or(0.0);
        if inflight >= 1.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "heavy batch never took the permit"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The probe prediction must shed, not wait.
    let mut probe = Client::connect(&addr.to_string()).expect("connect probe");
    let resp = probe
        .request(&format!(
            "{{\"op\":\"predict\",\"id\":\"probe\",\"model\":\"{}\",\"procs\":2,\
         \"params\":{{\"rounds\":20}},\"seed\":3}}",
            pevpm_obs::json::escape(SRC)
        ))
        .expect("probe");
    let v = json::parse(&resp).expect("parse");
    assert_eq!(
        v.get("code").and_then(Json::as_str),
        Some("overloaded"),
        "{resp}"
    );
    assert_eq!(v.get("retry_after_ms").and_then(Json::as_num), Some(42.0));

    // The heavy batch still completes successfully.
    let heavy_resp = heavy.join().expect("heavy thread");
    assert!(heavy_resp.contains("\"ok\":true"), "heavy batch failed");
    let counters = counters_of(&stats_client.stats("s").expect("stats"));
    assert!(counter(&counters, "serve.shed.total") >= 1.0);
    stats_client.shutdown("bye").expect("shutdown");
    handle.join().expect("daemon thread");
}

/// Responses from an 8-worker daemon, answered concurrently, are bitwise
/// identical to the serial daemon's answers for the same requests.
#[test]
fn concurrent_responses_are_bitwise_identical_to_serial() {
    let requests: Vec<PredictRequest> = (0u64..8)
        .map(|i| request(30.0 + i as f64, 100 + i))
        .collect();

    let (serial_addr, serial_handle) = start(ServeConfig {
        conns: 1,
        ..ServeConfig::default()
    });
    let mut serial_client = Client::connect(&serial_addr.to_string()).expect("connect serial");
    let serial: Vec<String> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| {
            serial_client
                .predict(&format!("r{i}"), "default", r)
                .expect("serial predict")
        })
        .collect();
    serial_client.shutdown("bye").expect("shutdown");
    serial_handle.join().expect("serial daemon");

    let (conc_addr, conc_handle) = start(ServeConfig {
        conns: 8,
        ..ServeConfig::default()
    });
    let concurrent: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let addr = conc_addr.to_string();
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect concurrent");
                    c.predict(&format!("r{i}"), "default", r)
                        .expect("concurrent predict")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    for (i, (s, c)) in serial.iter().zip(&concurrent).enumerate() {
        assert_eq!(s, c, "request {i}: concurrency changed response bytes");
    }
    let mut bye = Client::connect(&conc_addr.to_string()).expect("connect");
    bye.shutdown("bye").expect("shutdown");
    conc_handle.join().expect("concurrent daemon");
}

/// An external stop (the SIGTERM path) lets the in-flight request finish
/// and deliver its response — drain is graceful, not a guillotine.
#[test]
fn external_stop_drains_in_flight_requests() {
    let server = Server::with_tables(
        ServeConfig {
            conns: 2,
            drain_ms: 30_000,
            ..ServeConfig::default()
        },
        vec![("default".to_string(), test_table())],
    )
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let server = Arc::new(server);
    let stop = Arc::new(AtomicBool::new(false));
    let daemon = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || server.run_until(&stop).expect("run_until"))
    };

    // A batch heavy enough to still be in flight when the stop lands.
    let items: Vec<(String, PredictRequest)> = (0..128)
        .map(|i| ("default".to_string(), request(400.0, 50 + i)))
        .collect();
    let addr_str = addr.to_string();
    let inflight_req = std::thread::spawn(move || {
        let mut c = Client::connect(&addr_str).expect("connect");
        c.batch("inflight", &items).expect("in-flight batch")
    });

    // Stop only once the daemon is actually evaluating the batch.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.registry().gauge("serve.inflight").get() < 1.0 {
        assert!(Instant::now() < deadline, "batch never became in-flight");
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::SeqCst);

    // The response still arrives, complete and well-formed.
    let resp = inflight_req.join().expect("in-flight thread");
    let v = json::parse(&resp).expect("parse");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    daemon.join().expect("daemon thread");
    assert_eq!(
        server.registry().counter("serve.drain.forced").get(),
        0,
        "drain should have been clean"
    );
    // The drain left its span in the ring with a clean outcome.
    let drained = server
        .telemetry()
        .ring()
        .last(512)
        .into_iter()
        .find(|sp| sp.op == "drain")
        .expect("drain span recorded");
    assert_eq!(drained.outcome, "clean");
    // After drain nothing serves the port: a new connection may complete
    // the TCP handshake (the listener fd is still bound until the Server
    // drops) but no frame is ever answered.
    if let Ok(s) = TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
        let mut w = s.try_clone().expect("clone");
        proto::write_frame(&mut w, "{\"op\":\"ping\",\"id\":\"late\"}").expect("write");
        s.set_read_timeout(Some(Duration::from_millis(300)))
            .expect("timeout");
        let mut reader = BufReader::new(s);
        // Anything but a frame (EOF or timeout) means nobody is home.
        if let Ok(proto::FrameRead::Frame(frame)) =
            proto::read_frame_deadline(&mut reader, proto::MAX_FRAME)
        {
            panic!("drained daemon answered a late request: {frame}")
        }
    }
}

/// A fresh daemon also stops promptly when the flag is set while idle —
/// the accept loop polls the flag, not just traffic.
#[test]
fn external_stop_works_while_idle() {
    let server = Server::with_tables(
        ServeConfig::default(),
        vec![("default".to_string(), test_table())],
    )
    .expect("bind");
    let server = Arc::new(server);
    let stop = Arc::new(AtomicBool::new(false));
    let daemon = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || server.run_until(&stop).expect("run_until"))
    };
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::SeqCst);
    let t0 = Instant::now();
    daemon.join().expect("daemon thread");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "idle daemon took too long to stop"
    );
}
