//! Service-path contracts of adaptive replication and common random
//! numbers (CRN).
//!
//! - A CRN-marked what-if batch must be byte-identical across daemon
//!   restarts and across `--conns` values, and must actually pair the
//!   arms on one seed stream (an arm's answer equals the same item
//!   evaluated alone under the shared base seed).
//! - An adaptive (`precision`) request must answer deterministically,
//!   agree with the in-process plan evaluation, report reps saved on an
//!   easy model, and feed the `serve.reps.saved` counter.
//! - Fixed-reps responses must not change shape: no `adaptive` key, same
//!   bytes as ever (the wider Jacobi determinism suite pins the values).

use pevpm_bench::fig6;
use pevpm_dist::DistTable;
use pevpm_mpibench::MachineShape;
use pevpm_obs::json::{self, Json};
use pevpm_serve::plan::{self, EvalOutcome, PredictRequest};
use pevpm_serve::{Client, ServeConfig, Server};
use std::net::SocketAddr;
use std::thread::JoinHandle;

const JACOBI_SRC: &str = "\
// PEVPM Loop iterations = iterations
// PEVPM {
// PEVPM Runon c1 = procnum != 0
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum
// PEVPM &       to = procnum-1
// PEVPM Message type = MPI_Recv
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum-1
// PEVPM &       to = procnum
// PEVPM }
// PEVPM Runon c1 = procnum != numprocs-1
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum+1
// PEVPM &       to = procnum
// PEVPM Message type = MPI_Send
// PEVPM &       size = xsize*sizeof(float)
// PEVPM &       from = procnum
// PEVPM &       to = procnum+1
// PEVPM }
// PEVPM Serial time = tserial/numprocs
// PEVPM }
";

fn table() -> DistTable {
    fig6::shape_table(
        MachineShape { nodes: 4, ppn: 1 },
        &[512, 1024, 2048],
        10,
        11,
    )
}

fn request(xsize: f64, seed: u64, reps: usize) -> PredictRequest {
    let mut req = PredictRequest::new(JACOBI_SRC, 4);
    req.seed = seed;
    req.reps = reps;
    req.params = vec![
        ("xsize".to_string(), xsize),
        ("iterations".to_string(), 20.0),
        ("tserial".to_string(), 3.24e-3),
    ];
    req
}

fn start_daemon(cfg: ServeConfig) -> (SocketAddr, JoinHandle<()>) {
    let server = Server::with_tables(cfg, vec![("default".to_string(), table())]).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = std::thread::spawn(move || server.run().expect("daemon run"));
    (addr, handle)
}

fn parse_ok(response: &str) -> Json {
    let j = json::parse(response).expect("response parses");
    assert_eq!(
        j.get("ok").and_then(Json::as_bool),
        Some(true),
        "daemon refused the request: {response}"
    );
    j.get("result").expect("result field").clone()
}

fn mean_of(result: &Json) -> f64 {
    result
        .get("mean")
        .and_then(Json::as_num)
        .expect("mean field")
}

/// Run the CRN what-if batch (fast arm seed 11, slow arm seed 999 — the
/// seeds deliberately differ so only CRN can pair them) on a daemon with
/// `conns` workers and return the raw response bytes.
fn crn_batch_bytes(conns: usize) -> String {
    let (addr, handle) = start_daemon(ServeConfig {
        conns,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let items = vec![
        ("default".to_string(), request(256.0, 11, 8)),
        ("default".to_string(), request(512.0, 999, 8)),
    ];
    let resp = client.batch_with("b", &items, true).expect("crn batch");
    client.shutdown("bye").expect("shutdown");
    handle.join().expect("daemon thread");
    resp
}

#[test]
fn crn_batches_are_bitwise_reproducible_across_restarts_and_conns() {
    let reference = crn_batch_bytes(1);
    for conns in [1usize, 4, 8] {
        let got = crn_batch_bytes(conns);
        assert_eq!(
            got, reference,
            "CRN batch bytes changed at conns={conns} (or across restart)"
        );
    }

    // CRN really rewrites the arm seeds to the shared base: the second
    // arm's answer equals that item evaluated alone under seed 11, and
    // differs from its answer under its own seed 999.
    let (addr, handle) = start_daemon(ServeConfig::default());
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let slots_json = parse_ok(&reference);
    let slots = slots_json.as_array().expect("batch array");
    assert_eq!(slots.len(), 2);
    let arm_b = slots[1].get("result").expect("arm result");

    let paired = request(512.0, 11, 8);
    let own_seed = request(512.0, 999, 8);
    let paired_resp = parse_ok(&client.predict("p", "default", &paired).expect("paired"));
    let own_resp = parse_ok(&client.predict("o", "default", &own_seed).expect("own"));
    assert_eq!(
        mean_of(arm_b).to_bits(),
        mean_of(&paired_resp).to_bits(),
        "CRN arm did not adopt the shared base seed"
    );
    assert_ne!(
        mean_of(arm_b).to_bits(),
        mean_of(&own_resp).to_bits(),
        "seeds 11 and 999 collide — the CRN check proves nothing"
    );
    client.shutdown("bye").expect("shutdown");
    handle.join().expect("daemon thread");
}

#[test]
fn adaptive_requests_are_deterministic_and_save_reps() {
    let mut req = request(256.0, 11, 8);
    req.precision = Some(0.05);
    req.min_reps = Some(4);
    req.max_reps = Some(32);

    // In-process plan evaluation: the reference the daemon must match.
    let model = plan::parse_model(&req.model_src, "test model").expect("parse");
    let timing = plan::build_timing(
        &table(),
        req.prediction_mode().expect("mode"),
        req.pingpong,
        req.compile_options(),
    )
    .expect("timing");
    let cfg = req.eval_config().expect("config");
    let EvalOutcome::Batch(mc) =
        plan::evaluate_plan(&model, &cfg, &timing, req.effective_reps()).expect("evaluate")
    else {
        panic!("adaptive request must take the batch path");
    };
    let report = mc.adaptive.expect("adaptive report");
    assert!(
        report.reps < 32 && report.reps >= 4,
        "easy Jacobi should stop early, ran {} rep(s)",
        report.reps
    );
    assert!(report.converged);
    assert!(report.reps_saved() > 0);

    let (addr, handle) = start_daemon(ServeConfig {
        conns: 8,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&addr.to_string()).expect("connect");
    let cold = client.predict("r", "default", &req).expect("cold");
    let warm = client.predict("r", "default", &req).expect("warm");
    assert_eq!(cold, warm, "adaptive response changed bytes on replay");

    let result = parse_ok(&cold);
    assert_eq!(
        mean_of(&result).to_bits(),
        mc.mean.to_bits(),
        "daemon adaptive mean diverged from the plan evaluation"
    );
    let adaptive = result.get("adaptive").expect("adaptive sub-object");
    assert_eq!(
        adaptive.get("reps").and_then(Json::as_num),
        Some(report.reps as f64)
    );
    assert_eq!(
        adaptive.get("reps_saved").and_then(Json::as_num),
        Some(report.reps_saved() as f64)
    );
    assert_eq!(
        adaptive.get("converged").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(adaptive.get("drift").and_then(Json::as_bool), Some(false));

    // Telemetry: the saved replications reach the metrics registry.
    let stats = parse_ok(&client.stats("s").expect("stats"));
    let counters = stats.get("counters").expect("counters");
    let saved = counters
        .get("serve.reps.saved")
        .and_then(Json::as_num)
        .unwrap_or(0.0);
    assert!(
        saved >= 2.0 * report.reps_saved() as f64,
        "serve.reps.saved = {saved}, expected two requests' savings"
    );

    // A fixed-reps response keeps its old shape: no adaptive key.
    let fixed = parse_ok(
        &client
            .predict("f", "default", &request(256.0, 11, 8))
            .expect("fixed"),
    );
    assert!(
        fixed.get("adaptive").is_none(),
        "fixed-reps response grew an adaptive key"
    );

    client.shutdown("bye").expect("shutdown");
    handle.join().expect("daemon thread");
}

/// The server-side `--max-reps` cap tightens an adaptive request's
/// ceiling instead of rejecting it (fixed-reps admission is unchanged).
#[test]
fn server_max_reps_tightens_the_adaptive_ceiling() {
    let (addr, handle) = start_daemon(ServeConfig {
        max_reps: 6,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&addr.to_string()).expect("connect");

    let mut req = request(256.0, 11, 4);
    req.precision = Some(1e-9); // unreachable: would run to the ceiling
    req.min_reps = Some(2);
    req.max_reps = Some(32);
    let result = parse_ok(&client.predict("a", "default", &req).expect("adaptive"));
    let adaptive = result.get("adaptive").expect("adaptive sub-object");
    assert_eq!(
        adaptive.get("max_reps").and_then(Json::as_num),
        Some(6.0),
        "server cap did not tighten the adaptive ceiling"
    );
    assert_eq!(adaptive.get("reps").and_then(Json::as_num), Some(6.0));
    assert_eq!(
        adaptive.get("converged").and_then(Json::as_bool),
        Some(false)
    );

    // Fixed-reps admission control is untouched: over-cap still rejected.
    let over = request(256.0, 11, 7);
    let resp = client.predict("x", "default", &over).expect("send");
    let j = json::parse(&resp).expect("parses");
    assert_eq!(j.get("ok").and_then(Json::as_bool), Some(false));

    client.shutdown("bye").expect("shutdown");
    handle.join().expect("daemon thread");
}
