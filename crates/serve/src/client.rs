//! A minimal blocking client for the serve protocol, used by the
//! `pevpm client` subcommand, the test suite, and the CI smoke script.

use std::io::{self, BufReader, BufWriter};
use std::net::TcpStream;

use pevpm_obs::json::{escape, num};

use crate::plan::PredictRequest;
use crate::proto;

/// A connected client holding one protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a daemon at `addr` (`host:port`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Frames are written whole and the peer replies immediately;
        // Nagle + delayed ACK would stall multi-segment frames ~40 ms.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Client { reader, writer })
    }

    /// Send one request frame and read one response frame.
    pub fn request(&mut self, frame: &str) -> io::Result<String> {
        proto::write_frame(&mut self.writer, frame)?;
        proto::read_frame(&mut self.reader, proto::MAX_FRAME)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })
    }

    /// Send a `predict` built from a [`PredictRequest`].
    pub fn predict(&mut self, id: &str, table: &str, req: &PredictRequest) -> io::Result<String> {
        self.request(&predict_frame(id, table, req))
    }

    /// Send a `batch` of `(table, request)` items.
    pub fn batch(&mut self, id: &str, items: &[(String, PredictRequest)]) -> io::Result<String> {
        let bodies: Vec<String> = items
            .iter()
            .map(|(table, req)| predict_body(table, req))
            .collect();
        self.request(&format!(
            "{{\"op\":\"batch\",\"id\":\"{}\",\"requests\":[{}]}}",
            escape(id),
            bodies.join(",")
        ))
    }

    /// Ask for the server's metrics registry.
    pub fn stats(&mut self, id: &str) -> io::Result<String> {
        self.request(&format!("{{\"op\":\"stats\",\"id\":\"{}\"}}", escape(id)))
    }

    /// Liveness probe.
    pub fn ping(&mut self, id: &str) -> io::Result<String> {
        self.request(&format!("{{\"op\":\"ping\",\"id\":\"{}\"}}", escape(id)))
    }

    /// Ask the daemon to exit its serve loop.
    pub fn shutdown(&mut self, id: &str) -> io::Result<String> {
        self.request(&format!(
            "{{\"op\":\"shutdown\",\"id\":\"{}\"}}",
            escape(id)
        ))
    }
}

/// The JSON body shared by `predict` frames and `batch` items. Optional
/// fields are emitted only when they differ from the protocol defaults,
/// keeping frames small and byte-stable.
pub fn predict_body(table: &str, req: &PredictRequest) -> String {
    let mut out = format!(
        "{{\"model\":\"{}\",\"table\":\"{}\",\"procs\":{}",
        escape(&req.model_src),
        escape(table),
        req.procs
    );
    if req.mode != "dist" {
        out.push_str(&format!(",\"mode\":\"{}\"", escape(&req.mode)));
    }
    if req.pingpong {
        out.push_str(",\"pingpong\":true");
    }
    if req.exact_quantiles {
        out.push_str(",\"exact_quantiles\":true");
    }
    if !req.params.is_empty() {
        out.push_str(",\"params\":{");
        for (i, (k, v)) in req.params.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(k), num(*v)));
        }
        out.push('}');
    }
    if req.seed != 1 {
        out.push_str(&format!(",\"seed\":{}", req.seed));
    }
    if req.reps != 1 {
        out.push_str(&format!(",\"reps\":{}", req.reps));
    }
    if req.threads != 0 {
        out.push_str(&format!(",\"threads\":{}", req.threads));
    }
    if req.eval_threads != 0 {
        out.push_str(&format!(",\"eval_threads\":{}", req.eval_threads));
    }
    if let Some(q) = req.quorum {
        out.push_str(&format!(",\"quorum\":{q}"));
    }
    if let Some(n) = req.max_steps {
        out.push_str(&format!(",\"max_steps\":{n}"));
    }
    if let Some(s) = req.max_virtual_secs {
        out.push_str(&format!(",\"max_virtual_secs\":{}", num(s)));
    }
    out.push('}');
    out
}

/// A full `predict` frame for `req` against `table`, tagged `id`.
pub fn predict_frame(id: &str, table: &str, req: &PredictRequest) -> String {
    let body = predict_body(table, req);
    // Splice the op and id into the body object.
    format!(
        "{{\"op\":\"predict\",\"id\":\"{}\",{}",
        escape(id),
        &body[1..]
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{parse_request, Request};

    #[test]
    fn client_frames_parse_back_to_the_same_request() {
        let mut req = PredictRequest::new("// PEVPM src", 4);
        req.mode = "avg".to_string();
        req.params.push(("rounds".to_string(), 20.0));
        req.seed = 9;
        req.reps = 8;
        req.quorum = Some(6);
        req.max_steps = Some(1000);
        req.max_virtual_secs = Some(2.5);
        let frame = predict_frame("r1", "perseus", &req);
        let parsed = parse_request(&frame).unwrap();
        let Request::Predict {
            id,
            table,
            req: back,
        } = parsed
        else {
            panic!("expected predict")
        };
        assert_eq!(id, "r1");
        assert_eq!(table, "perseus");
        assert_eq!(*back, req);
    }

    #[test]
    fn defaults_are_omitted_from_the_wire() {
        let req = PredictRequest::new("m", 2);
        let body = predict_body("default", &req);
        assert_eq!(body, "{\"model\":\"m\",\"table\":\"default\",\"procs\":2}");
    }
}
