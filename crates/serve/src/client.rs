//! A minimal blocking client for the serve protocol, used by the
//! `pevpm client` subcommand, the test suite, and the CI smoke script.
//!
//! The client is deliberately conservative about retries. Two failure
//! classes are safe to retry and are retried (bounded, with
//! deterministic seeded exponential backoff): **connect failures** (the
//! request never reached the daemon) and **`"overloaded"` responses**
//! (the daemon itself promises the request never started and supplies a
//! `retry_after_ms` hint; the resend dials a fresh connection, since
//! the accept-overflow shed closes the socket right after the frame).
//! Everything else — notably a connection that
//! dies *after* a frame was written — is ambiguous (the daemon may have
//! executed the request before the failure) and is surfaced as an error
//! rather than resent, preserving exactly-once semantics for
//! non-idempotent batch accounting.

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use pevpm_obs::json::{self, escape, num, Json};

use crate::plan::PredictRequest;
use crate::proto;

/// Default connect timeout: a blackholed address must fail fast instead
/// of hanging a CLI invocation indefinitely.
pub const DEFAULT_CONNECT_TIMEOUT_MS: u64 = 5_000;

/// Client transport policy: timeouts and the bounded-retry budget.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Per-attempt connect deadline; `None` = the OS default (minutes).
    pub connect_timeout: Option<Duration>,
    /// Read/write deadline on the connected socket; `None` = none.
    pub io_timeout: Option<Duration>,
    /// Retry budget shared by connect failures and `"overloaded"`
    /// responses; 0 disables retrying entirely.
    pub retries: u32,
    /// Base backoff doubled per attempt (jittered, capped at 64× base).
    pub backoff_base_ms: u64,
    /// Seed for the deterministic backoff jitter, so scripted runs (and
    /// chaos tests) replay identical schedules.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Some(Duration::from_millis(DEFAULT_CONNECT_TIMEOUT_MS)),
            io_timeout: None,
            retries: 3,
            backoff_base_ms: 50,
            jitter_seed: 0x5eed,
        }
    }
}

/// splitmix64: a tiny deterministic generator for backoff jitter (no
/// RNG dependency, fully reproducible from [`ClientConfig::jitter_seed`]).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The jittered exponential backoff for retry `attempt` (0-based):
/// uniform in `[base·2^a/2, base·2^a)`, exponent capped at 6.
fn backoff_ms(base_ms: u64, attempt: u32, jitter: &mut u64) -> u64 {
    let full = base_ms.saturating_mul(1 << attempt.min(6)).max(1);
    let half = full / 2;
    half + splitmix64(jitter) % (full - half).max(1)
}

/// A connected client holding one protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    addr: String,
    cfg: ClientConfig,
    jitter: u64,
}

impl Client {
    /// Connect to a daemon at `addr` (`host:port`) with the default
    /// transport policy (5 s connect timeout, 3 retries).
    pub fn connect(addr: &str) -> io::Result<Client> {
        Client::connect_with(addr, &ClientConfig::default())
    }

    /// Connect with an explicit transport policy. Connect-refused and
    /// timed-out attempts are retried up to `cfg.retries` times with
    /// jittered exponential backoff — safe, because nothing was sent.
    pub fn connect_with(addr: &str, cfg: &ClientConfig) -> io::Result<Client> {
        let mut jitter = cfg.jitter_seed;
        let (reader, writer) = open_connection(addr, cfg, &mut jitter)?;
        Ok(Client {
            reader,
            writer,
            addr: addr.to_string(),
            cfg: cfg.clone(),
            jitter,
        })
    }

    /// Send one request frame and read one response frame. No retries at
    /// this layer: an I/O failure after the frame was written is
    /// ambiguous and must surface to the caller.
    pub fn request(&mut self, frame: &str) -> io::Result<String> {
        proto::write_frame(&mut self.writer, frame)?;
        proto::read_frame(&mut self.reader, proto::MAX_FRAME)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            )
        })
    }

    /// Send one request frame, resending (bounded, backed off) only when
    /// the daemon answers `"overloaded"` — the one failure the server
    /// guarantees never started executing. The `retry_after_ms` hint
    /// floors the backoff. Each resend travels on a *fresh* connection:
    /// the server's accept-overflow shed writes the overloaded frame and
    /// closes the socket, so the old connection may be dead (this is
    /// still safe — the shed request never started, and the resend is
    /// only ever written to the new connection). I/O errors are NOT
    /// retried.
    pub fn request_with_retry(&mut self, frame: &str) -> io::Result<String> {
        let mut attempt = 0u32;
        loop {
            let resp = self.request(frame)?;
            match parse_overloaded(&resp) {
                Some(hint_ms) if attempt < self.cfg.retries => {
                    let wait = backoff_ms(self.cfg.backoff_base_ms, attempt, &mut self.jitter)
                        .max(hint_ms);
                    std::thread::sleep(Duration::from_millis(wait));
                    let (reader, writer) =
                        open_connection(&self.addr, &self.cfg, &mut self.jitter)?;
                    self.reader = reader;
                    self.writer = writer;
                    attempt += 1;
                }
                _ => return Ok(resp),
            }
        }
    }

    /// Send a `predict` built from a [`PredictRequest`]. Retries on
    /// `"overloaded"` (safe: the daemon sheds before execution).
    pub fn predict(&mut self, id: &str, table: &str, req: &PredictRequest) -> io::Result<String> {
        self.request_with_retry(&predict_frame(id, table, req))
    }

    /// Send a `batch` of `(table, request)` items. Retries on
    /// `"overloaded"` (safe: the daemon sheds before execution).
    pub fn batch(&mut self, id: &str, items: &[(String, PredictRequest)]) -> io::Result<String> {
        self.batch_with(id, items, false)
    }

    /// [`Client::batch`] with common random numbers: `crn` asks the
    /// server to rewrite every item to one shared base seed, so what-if
    /// arms are compared on paired Monte-Carlo noise.
    pub fn batch_with(
        &mut self,
        id: &str,
        items: &[(String, PredictRequest)],
        crn: bool,
    ) -> io::Result<String> {
        let bodies: Vec<String> = items
            .iter()
            .map(|(table, req)| predict_body(table, req))
            .collect();
        self.request_with_retry(&format!(
            "{{\"op\":\"batch\",\"id\":\"{}\"{}, \"requests\":[{}]}}",
            escape(id),
            if crn { ",\"crn\":true" } else { "" },
            bodies.join(",")
        ))
    }

    /// Ask for the server's metrics registry.
    pub fn stats(&mut self, id: &str) -> io::Result<String> {
        self.request(&format!("{{\"op\":\"stats\",\"id\":\"{}\"}}", escape(id)))
    }

    /// Liveness probe.
    pub fn ping(&mut self, id: &str) -> io::Result<String> {
        self.request(&format!("{{\"op\":\"ping\",\"id\":\"{}\"}}", escape(id)))
    }

    /// Ask the daemon to exit its serve loop.
    pub fn shutdown(&mut self, id: &str) -> io::Result<String> {
        self.request(&format!(
            "{{\"op\":\"shutdown\",\"id\":\"{}\"}}",
            escape(id)
        ))
    }
}

/// Dial `addr` under `cfg`'s retry policy and arm the socket options
/// (nodelay, I/O deadlines). Shared by the initial connect and the
/// reconnect-on-overloaded path, threading one jitter stream through
/// both so scripted runs replay identical backoff schedules.
fn open_connection(
    addr: &str,
    cfg: &ClientConfig,
    jitter: &mut u64,
) -> io::Result<(BufReader<TcpStream>, BufWriter<TcpStream>)> {
    let mut attempt = 0u32;
    let stream = loop {
        match connect_once(addr, cfg.connect_timeout) {
            Ok(s) => break s,
            Err(e) if attempt < cfg.retries && connect_retryable(&e) => {
                std::thread::sleep(Duration::from_millis(backoff_ms(
                    cfg.backoff_base_ms,
                    attempt,
                    jitter,
                )));
                attempt += 1;
            }
            Err(e) => {
                return Err(io::Error::new(
                    e.kind(),
                    format!(
                        "connect {addr} failed after {attempt} retr{}: {e}",
                        if attempt == 1 { "y" } else { "ies" }
                    ),
                ))
            }
        }
    };
    // Frames are written whole and the peer replies immediately;
    // Nagle + delayed ACK would stall multi-segment frames ~40 ms.
    stream.set_nodelay(true)?;
    stream.set_read_timeout(cfg.io_timeout)?;
    stream.set_write_timeout(cfg.io_timeout)?;
    let reader = BufReader::new(stream.try_clone()?);
    let writer = BufWriter::new(stream);
    Ok((reader, writer))
}

/// One connect attempt across every resolved address, with a per-address
/// deadline when configured.
fn connect_once(addr: &str, timeout: Option<Duration>) -> io::Result<TcpStream> {
    let Some(timeout) = timeout else {
        return TcpStream::connect(addr);
    };
    let mut last = None;
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&resolved, timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{addr}: no addresses resolved"),
        )
    }))
}

/// Whether a connect failure is worth retrying: the daemon may be
/// restarting (refused) or the network momentarily black (timed out).
fn connect_retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
    )
}

/// If `resp` is an `"overloaded"` shed response, its `retry_after_ms`
/// hint (0 when absent); `None` for every other response.
fn parse_overloaded(resp: &str) -> Option<u64> {
    let v = json::parse(resp).ok()?;
    if v.get("code").and_then(Json::as_str) != Some("overloaded") {
        return None;
    }
    Some(
        v.get("retry_after_ms")
            .and_then(Json::as_num)
            .map_or(0, |ms| ms.max(0.0) as u64),
    )
}

/// The JSON body shared by `predict` frames and `batch` items. Optional
/// fields are emitted only when they differ from the protocol defaults,
/// keeping frames small and byte-stable.
pub fn predict_body(table: &str, req: &PredictRequest) -> String {
    let mut out = format!(
        "{{\"model\":\"{}\",\"table\":\"{}\",\"procs\":{}",
        escape(&req.model_src),
        escape(table),
        req.procs
    );
    if req.mode != "dist" {
        out.push_str(&format!(",\"mode\":\"{}\"", escape(&req.mode)));
    }
    if req.pingpong {
        out.push_str(",\"pingpong\":true");
    }
    if req.exact_quantiles {
        out.push_str(",\"exact_quantiles\":true");
    }
    if !req.params.is_empty() {
        out.push_str(",\"params\":{");
        for (i, (k, v)) in req.params.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", escape(k), num(*v)));
        }
        out.push('}');
    }
    if req.seed != 1 {
        out.push_str(&format!(",\"seed\":{}", req.seed));
    }
    if req.reps != 1 {
        out.push_str(&format!(",\"reps\":{}", req.reps));
    }
    if req.threads != 0 {
        out.push_str(&format!(",\"threads\":{}", req.threads));
    }
    if req.eval_threads != 0 {
        out.push_str(&format!(",\"eval_threads\":{}", req.eval_threads));
    }
    if let Some(q) = req.quorum {
        out.push_str(&format!(",\"quorum\":{q}"));
    }
    if let Some(p) = req.precision {
        out.push_str(&format!(",\"precision\":{}", num(p)));
    }
    if let Some(n) = req.min_reps {
        out.push_str(&format!(",\"min_reps\":{n}"));
    }
    if let Some(n) = req.max_reps {
        out.push_str(&format!(",\"max_reps\":{n}"));
    }
    if req.antithetic {
        out.push_str(",\"antithetic\":true");
    }
    if let Some(n) = req.max_steps {
        out.push_str(&format!(",\"max_steps\":{n}"));
    }
    if let Some(s) = req.max_virtual_secs {
        out.push_str(&format!(",\"max_virtual_secs\":{}", num(s)));
    }
    out.push('}');
    out
}

/// A full `predict` frame for `req` against `table`, tagged `id`.
pub fn predict_frame(id: &str, table: &str, req: &PredictRequest) -> String {
    let body = predict_body(table, req);
    // Splice the op and id into the body object.
    format!(
        "{{\"op\":\"predict\",\"id\":\"{}\",{}",
        escape(id),
        &body[1..]
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{parse_request, Request};

    #[test]
    fn client_frames_parse_back_to_the_same_request() {
        let mut req = PredictRequest::new("// PEVPM src", 4);
        req.mode = "avg".to_string();
        req.params.push(("rounds".to_string(), 20.0));
        req.seed = 9;
        req.reps = 8;
        req.quorum = Some(6);
        req.max_steps = Some(1000);
        req.max_virtual_secs = Some(2.5);
        let frame = predict_frame("r1", "perseus", &req);
        let parsed = parse_request(&frame).unwrap();
        let Request::Predict {
            id,
            table,
            req: back,
        } = parsed
        else {
            panic!("expected predict")
        };
        assert_eq!(id, "r1");
        assert_eq!(table, "perseus");
        assert_eq!(*back, req);
    }

    #[test]
    fn defaults_are_omitted_from_the_wire() {
        let req = PredictRequest::new("m", 2);
        let body = predict_body("default", &req);
        assert_eq!(body, "{\"model\":\"m\",\"table\":\"default\",\"procs\":2}");
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_bounded() {
        let mut j1 = 42u64;
        let mut j2 = 42u64;
        let a: Vec<u64> = (0..5).map(|i| backoff_ms(50, i, &mut j1)).collect();
        let b: Vec<u64> = (0..5).map(|i| backoff_ms(50, i, &mut j2)).collect();
        assert_eq!(a, b, "same seed, same schedule");
        for (i, ms) in a.iter().enumerate() {
            let full = 50u64 << i;
            assert!(
                (full / 2..full).contains(ms),
                "attempt {i}: {ms} outside [{}, {})",
                full / 2,
                full
            );
        }
        // The exponent caps: attempt 60 must not overflow.
        let ms = backoff_ms(50, 60, &mut j1);
        assert!(ms < 50 << 7);
    }

    #[test]
    fn overloaded_responses_are_recognized_and_others_are_not() {
        assert_eq!(
            parse_overloaded(&proto::overloaded_response("x", 120)),
            Some(120)
        );
        assert_eq!(
            parse_overloaded("{\"id\":\"x\",\"ok\":false,\"code\":\"usage\",\"error\":\"e\"}"),
            None
        );
        assert_eq!(parse_overloaded("{\"ok\":true}"), None);
        assert_eq!(parse_overloaded("not json"), None);
    }

    #[test]
    fn connect_fails_fast_and_classifies_refusal_as_retryable() {
        // A freed ephemeral port: connection refused, surfaced after the
        // bounded retry budget (kept at 0 here for speed).
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let cfg = ClientConfig {
            retries: 0,
            ..ClientConfig::default()
        };
        let err = match Client::connect_with(&format!("127.0.0.1:{port}"), &cfg) {
            Ok(_) => panic!("connect to a closed port must fail"),
            Err(e) => e,
        };
        assert!(connect_retryable(&err), "refused is retryable: {err}");
        assert!(err.to_string().contains("connect"), "{err}");
    }

    #[test]
    fn overloaded_then_ok_is_retried_once_on_a_fresh_connection() {
        // A fake daemon mimicking the accept-overflow shed: it answers
        // the first frame "overloaded" and slams the connection (like
        // the server's shed_connection), then serves the resend on the
        // next accepted connection.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut conns = 0u32;
            let mut frames = 0u32;
            loop {
                let (stream, _) = listener.accept().unwrap();
                conns += 1;
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = BufWriter::new(stream);
                while let Ok(Some(_frame)) = proto::read_frame(&mut reader, proto::MAX_FRAME) {
                    frames += 1;
                    if frames == 1 {
                        proto::write_frame(&mut writer, &proto::overloaded_response("r", 1))
                            .unwrap();
                        break; // close right after shedding
                    }
                    proto::write_frame(
                        &mut writer,
                        &proto::ok_response("r", "{\"kind\":\"pong\"}"),
                    )
                    .unwrap();
                }
                if frames >= 2 {
                    return (conns, frames);
                }
            }
        });
        let cfg = ClientConfig {
            retries: 3,
            backoff_base_ms: 1,
            ..ClientConfig::default()
        };
        let mut client = Client::connect_with(&addr.to_string(), &cfg).unwrap();
        let resp = client
            .request_with_retry("{\"op\":\"ping\",\"id\":\"r\"}")
            .unwrap();
        assert!(resp.contains("\"ok\":true"), "{resp}");
        drop(client);
        let (conns, frames) = server.join().unwrap();
        assert_eq!(frames, 2, "one shed, one resend");
        assert_eq!(conns, 2, "the resend travelled on a fresh connection");
    }

    #[test]
    fn io_errors_are_never_retried() {
        // A fake daemon that reads one frame and slams the connection:
        // the ambiguous failure must surface, not resend.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let frame = proto::read_frame(&mut reader, proto::MAX_FRAME);
            drop(stream);
            u32::from(frame.is_ok())
        });
        let cfg = ClientConfig {
            retries: 3,
            backoff_base_ms: 1,
            ..ClientConfig::default()
        };
        let mut client = Client::connect_with(&addr.to_string(), &cfg).unwrap();
        let err = match client.request_with_retry("{\"op\":\"ping\",\"id\":\"r\"}") {
            Ok(r) => panic!("mid-stream close must fail, got {r}"),
            Err(e) => e,
        };
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{err}");
        assert_eq!(server.join().unwrap(), 1, "exactly one frame was sent");
    }
}
