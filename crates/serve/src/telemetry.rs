//! Request-lifecycle telemetry for the daemon: spans, stage histograms,
//! structured request logs, and the HTTP observability sidecar.
//!
//! Every request the daemon touches gets a monotonically-assigned id and
//! a [`pevpm_obs::RequestSpan`] recording its stage breakdown (validate →
//! model → compile → eval → render), cache outcomes, replication shape
//! and exit class. Spans land in a bounded [`SpanRing`]; prediction
//! requests additionally record per-stage and total latency histograms in
//! the server's [`Registry`]. Everything here is observational: spans and
//! metrics are derived *from* request handling and never feed back into
//! it, so enabling telemetry cannot change a response byte.
//!
//! Three consumers sit on top:
//!
//! - the **HTTP sidecar** ([`HttpServer`]) — a hand-rolled `GET` handler
//!   over `std::net::TcpListener` (no new dependencies) serving
//!   `/metrics` (Prometheus text exposition), `/healthz` and
//!   `/spans?last=N`;
//! - the **structured request log** — one JSON line per finished request
//!   to stderr or `--log-out FILE`, gated by `--log-slow-ms` so only slow
//!   requests log under load;
//! - the **`stats` op** — span-derived p50/p95/p99 per stage plus
//!   monotonic uptime and the RFC 3339 start time, spliced into the
//!   registry dump.

use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use pevpm_obs::json::{escape, num};
use pevpm_obs::span::{percentile, render_spans, rfc3339_utc_us, span_json};
use pevpm_obs::{diag, Registry, RequestSpan, SpanRing, StageTiming};

/// The named stages of a prediction request, in execution order. Every
/// successful prediction records exactly one timing per stage, so each
/// stage histogram's `_count` equals the number of predictions served.
pub const STAGES: &[&str] = &["validate", "model", "compile", "eval", "render"];

/// Default capacity of the span ring.
pub const DEFAULT_SPAN_CAPACITY: usize = 1024;

/// Histogram binning for stage and request latencies: 50 linear bins over
/// `[0, 250)` ms (values clamp, so counts are exact regardless).
const LATENCY_MS_BINS: (f64, f64, usize) = (0.0, 250.0, 50);

/// Histogram binning for the adaptive reps-chosen distribution
/// (`serve.reps.chosen`): one bin per replication up to 128 (values
/// clamp, so counts stay exact for larger ceilings).
pub const REPS_CHOSEN_BINS: (f64, f64, usize) = (0.0, 128.0, 128);

enum LogSink {
    Stderr,
    File(File),
}

/// The daemon's telemetry hub: the span ring, the latency histograms, the
/// structured log sink, and the monotonic/wall-clock start anchors.
pub struct Telemetry {
    registry: Arc<Registry>,
    ring: SpanRing,
    epoch: Instant,
    started_unix_us: u64,
    log: Option<Mutex<LogSink>>,
    log_slow_ms: f64,
}

impl Telemetry {
    /// A telemetry hub recording into `registry` with a span ring of
    /// `span_capacity`. A structured request log is enabled when
    /// `log_out` (a file path) or `log_slow_ms` (a threshold in
    /// milliseconds; requests faster than it do not log) is given; with
    /// a threshold but no path, lines go to stderr.
    pub fn new(
        registry: Arc<Registry>,
        span_capacity: usize,
        log_out: Option<&Path>,
        log_slow_ms: Option<f64>,
    ) -> io::Result<Telemetry> {
        let log = match (log_out, log_slow_ms) {
            (Some(path), _) => Some(Mutex::new(LogSink::File(File::create(path)?))),
            (None, Some(_)) => Some(Mutex::new(LogSink::Stderr)),
            (None, None) => None,
        };
        Ok(Telemetry {
            registry,
            ring: SpanRing::new(span_capacity),
            epoch: Instant::now(),
            started_unix_us: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
                .unwrap_or(0),
            log,
            log_slow_ms: log_slow_ms.unwrap_or(0.0),
        })
    }

    /// A standalone hub for one-shot use (the CLI's `predict` stage
    /// timing): private registry, tiny ring, no log.
    pub fn standalone() -> Telemetry {
        #[allow(clippy::expect_used)] // no log sink configured: infallible
        Telemetry::new(Arc::new(Registry::new()), 8, None, None)
            .expect("standalone telemetry has no fallible sink")
    }

    /// The registry this hub records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The span ring.
    pub fn ring(&self) -> &SpanRing {
        &self.ring
    }

    /// Monotonic seconds since the hub was created.
    pub fn uptime_secs(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// The hub's wall-clock start time as RFC 3339 UTC.
    pub fn started_rfc3339(&self) -> String {
        rfc3339_utc_us(self.started_unix_us)
    }

    /// Begin timing a request. `metered` requests (predictions) record
    /// stage/total latency histograms and tick `serve.requests.total` at
    /// finish; non-metered ones (stats, ping, frame-level batch spans)
    /// only enter the ring and the log.
    pub fn begin(&self, op: &str, metered: bool) -> RequestTimer<'_> {
        let start = Instant::now();
        let start_us = self.epoch.elapsed().as_secs_f64() * 1e6;
        let unix_us = self.started_unix_us.saturating_add(start_us as u64);
        RequestTimer {
            telemetry: self,
            span: RequestSpan::new(self.ring.next_id(), op, unix_us, start_us),
            t0: start,
            metered,
        }
    }

    fn finish(&self, span: RequestSpan, metered: bool) {
        if metered {
            self.registry.counter("serve.requests.total").inc();
            let (lo, hi, nbins) = LATENCY_MS_BINS;
            self.registry
                .histogram("serve.request_ms", lo, hi, nbins)
                .record(span.total_us / 1e3);
            for st in &span.stages {
                self.registry
                    .histogram(&format!("serve.stage.{}_ms", st.name), lo, hi, nbins)
                    .record(st.dur_us / 1e3);
            }
        }
        self.log_span(&span);
        self.ring.push(span);
    }

    fn log_span(&self, span: &RequestSpan) {
        let Some(sink) = &self.log else {
            return;
        };
        if span.total_us / 1e3 < self.log_slow_ms {
            return;
        }
        let line = span_json(span);
        if let Ok(mut sink) = sink.lock() {
            let result = match &mut *sink {
                LogSink::Stderr => writeln!(io::stderr().lock(), "{line}"),
                LogSink::File(f) => writeln!(f, "{line}"),
            };
            if let Err(e) = result {
                diag::warn(&format!("request log write failed: {e}"));
            }
        }
    }

    /// The `stats` result document: the registry dump with `started`
    /// (RFC 3339), `uptime_secs` (monotonic) and span-derived per-stage
    /// `p50/p95/p99` percentiles spliced in.
    pub fn stats_json(&self) -> String {
        let base = self.registry.to_json();
        let trimmed = base.trim_end();
        let trimmed = trimmed.strip_suffix('}').unwrap_or(trimmed).trim_end();
        format!(
            "{trimmed},\n  \"started\": \"{}\",\n  \"uptime_secs\": {},\n  \"stages\": {}\n}}\n",
            self.started_rfc3339(),
            num(self.uptime_secs()),
            self.stage_percentiles_json()
        )
    }

    /// Per-stage `{"count", "p50_ms", "p95_ms", "p99_ms"}` derived from
    /// the spans currently in the ring, stage names sorted.
    pub fn stage_percentiles_json(&self) -> String {
        let spans = self.ring.last(self.ring.capacity());
        let mut by_stage: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
        for span in &spans {
            for st in &span.stages {
                by_stage
                    .entry(st.name.clone())
                    .or_default()
                    .push(st.dur_us / 1e3);
            }
        }
        let mut out = String::from("{");
        for (i, (name, durs)) in by_stage.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{}}}",
                escape(name),
                durs.len(),
                num(percentile(durs, 0.50).unwrap_or(0.0)),
                num(percentile(durs, 0.95).unwrap_or(0.0)),
                num(percentile(durs, 0.99).unwrap_or(0.0)),
            ));
        }
        out.push('}');
        out
    }

    /// Flush the structured-log sink (used by graceful drain so the last
    /// request lines — including the drain span itself — hit disk before
    /// the process exits). Stderr is unbuffered; file sinks sync.
    pub fn flush(&self) {
        let Some(sink) = &self.log else {
            return;
        };
        if let Ok(mut sink) = sink.lock() {
            let result = match &mut *sink {
                LogSink::Stderr => io::stderr().lock().flush(),
                LogSink::File(f) => f.flush().and_then(|()| f.sync_all()),
            };
            if let Err(e) = result {
                diag::warn(&format!("request log flush failed: {e}"));
            }
        }
    }

    /// The `/healthz` JSON body.
    pub fn healthz_json(&self) -> String {
        format!(
            "{{\"status\":\"ok\",\"started\":\"{}\",\"uptime_secs\":{},\
             \"requests_total\":{},\"spans_recorded\":{}}}",
            self.started_rfc3339(),
            num(self.uptime_secs()),
            self.registry.counter("serve.requests.total").get(),
            self.ring.recorded()
        )
    }
}

/// An in-flight request timer: accumulates stage timings and span fields,
/// then records everything at [`RequestTimer::finish`].
pub struct RequestTimer<'a> {
    telemetry: &'a Telemetry,
    span: RequestSpan,
    t0: Instant,
    metered: bool,
}

impl RequestTimer<'_> {
    /// This request's monotonically-assigned id.
    pub fn id(&self) -> u64 {
        self.span.id
    }

    /// Run `f` as the named stage, recording its window relative to the
    /// request start. Each stage name should occur at most once per
    /// request so stage histogram counts stay interpretable.
    pub fn stage<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start_us = self.t0.elapsed().as_secs_f64() * 1e6;
        let r = f();
        let end_us = self.t0.elapsed().as_secs_f64() * 1e6;
        self.span.stages.push(StageTiming {
            name: name.to_string(),
            start_us,
            dur_us: end_us - start_us,
        });
        r
    }

    /// Record a cache lookup outcome (`cache` is e.g. `"model"`).
    pub fn cache(&mut self, cache: &str, hit: bool) {
        self.span.caches.push((cache.to_string(), hit));
    }

    /// Record the replication count this request asked for.
    pub fn set_reps(&mut self, reps: usize) {
        self.span.reps = reps;
    }

    /// Record whether the request ran under a quorum.
    pub fn set_quorum(&mut self, quorum: bool) {
        self.span.quorum = quorum;
    }

    /// Record quorum-absorbed replication failures (or failed items for
    /// a batch frame span).
    pub fn set_replica_failures(&mut self, n: usize) {
        self.span.replica_failures = n;
    }

    /// Record how many replications adaptive stopping saved relative to
    /// the request's ceiling (`None` on the span means fixed-reps).
    pub fn set_reps_saved(&mut self, n: usize) {
        self.span.reps_saved = Some(n);
    }

    /// Mark that a panic was caught at the request boundary.
    pub fn set_panicked(&mut self) {
        self.span.panicked = true;
    }

    /// Close the span with its exit class and response payload size,
    /// record histograms/ring/log, and return the finished span (the CLI
    /// turns it into the pid-4 trace track).
    pub fn finish(mut self, outcome: &str, response_bytes: usize) -> RequestSpan {
        self.span.total_us = self.t0.elapsed().as_secs_f64() * 1e6;
        self.span.outcome = outcome.to_string();
        self.span.response_bytes = response_bytes;
        let span = self.span.clone();
        self.telemetry.finish(self.span, self.metered);
        span
    }
}

/// The observability sidecar: a second TCP listener speaking just enough
/// HTTP/1.1 for scrapers — `GET /metrics`, `GET /healthz`,
/// `GET /spans?last=N`, `Connection: close` on every response.
pub struct HttpServer {
    listener: TcpListener,
    telemetry: Arc<Telemetry>,
}

/// How long the accept loop sleeps between non-blocking accept polls
/// (also bounds shutdown latency).
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Per-connection read/write timeout: scrapers that stall cannot wedge
/// the sidecar thread forever.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

impl HttpServer {
    /// Bind the sidecar listener on `addr` (`host:port`; port 0 asks the
    /// OS for a free port).
    pub fn bind(addr: &str, telemetry: Arc<Telemetry>) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(HttpServer {
            listener,
            telemetry,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Start the accept loop on its own thread. Dropping (or calling
    /// [`HttpHandle::stop`] on) the returned handle stops the loop and
    /// joins the thread.
    pub fn spawn(self) -> io::Result<HttpHandle> {
        self.listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if let Err(e) = serve_http_connection(stream, &self.telemetry) {
                            diag::debug(&format!("http sidecar: connection error: {e}"));
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) => {
                        diag::info(&format!("http sidecar: accept failed: {e}"));
                        std::thread::sleep(ACCEPT_POLL);
                    }
                }
            }
        });
        Ok(HttpHandle {
            stop,
            join: Some(join),
        })
    }
}

/// Handle to a running sidecar accept loop; stops and joins on drop.
pub struct HttpHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl HttpHandle {
    /// Stop the accept loop and join its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for HttpHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_http_connection(stream: TcpStream, telemetry: &Telemetry) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.set_nonblocking(false)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers (bounded) so well-behaved clients see a clean close.
    let mut header = String::new();
    for _ in 0..64 {
        header.clear();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let (status, content_type, body) = http_response(telemetry, method, target);
    let mut stream = stream;
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Route one request to its response as `(status line, content type,
/// body)`. Pure — unit-testable without sockets.
pub fn http_response(
    telemetry: &Telemetry,
    method: &str,
    target: &str,
) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "application/json",
            "{\"error\":\"only GET is supported\"}".to_string(),
        );
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            telemetry.registry().render_prometheus(),
        ),
        "/healthz" => ("200 OK", "application/json", telemetry.healthz_json()),
        "/spans" => {
            let last = query
                .into_iter()
                .flat_map(|q| q.split('&'))
                .find_map(|kv| kv.strip_prefix("last="))
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(32);
            (
                "200 OK",
                "application/json",
                render_spans(&telemetry.ring().last(last)),
            )
        }
        _ => (
            "404 Not Found",
            "application/json",
            format!("{{\"error\":\"no route {}\"}}", escape(path)),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pevpm_obs::json::{self, Json};

    fn hub() -> Telemetry {
        Telemetry::new(Arc::new(Registry::new()), 4, None, None).unwrap()
    }

    #[test]
    fn metered_requests_record_stage_histograms_and_the_total_counter() {
        let t = hub();
        for _ in 0..3 {
            let mut timer = t.begin("predict", true);
            timer.set_reps(8);
            timer.stage("validate", || std::hint::black_box(1 + 1));
            timer.stage("eval", || std::thread::sleep(Duration::from_millis(2)));
            timer.cache("model", true);
            timer.finish("ok", 100);
        }
        assert_eq!(t.registry().counter("serve.requests.total").get(), 3);
        assert_eq!(
            t.registry()
                .histogram("serve.request_ms", 0.0, 1.0, 1)
                .count(),
            3
        );
        assert_eq!(
            t.registry()
                .histogram("serve.stage.eval_ms", 0.0, 1.0, 1)
                .count(),
            3
        );
        let spans = t.ring().last(10);
        assert_eq!(spans.len(), 3);
        assert!(spans[0].total_us >= spans[0].stage_sum_us());
        assert_eq!(spans[0].caches, vec![("model".to_string(), true)]);
    }

    #[test]
    fn unmetered_requests_only_enter_the_ring() {
        let t = hub();
        t.begin("ping", false).finish("ok", 10);
        assert_eq!(t.registry().counter("serve.requests.total").get(), 0);
        assert_eq!(t.ring().recorded(), 1);
    }

    #[test]
    fn stats_json_splices_uptime_start_and_stage_percentiles() {
        let t = hub();
        let mut timer = t.begin("predict", true);
        timer.stage("eval", || ());
        timer.finish("ok", 1);
        let js = t.stats_json();
        let v = json::parse(&js).expect("stats JSON parses");
        assert!(v.get("counters").is_some(), "registry dump retained");
        assert!(v
            .get("uptime_secs")
            .and_then(Json::as_num)
            .is_some_and(|u| u >= 0.0));
        let started = v.get("started").and_then(Json::as_str).unwrap();
        assert!(started.ends_with('Z') && started.contains('T'), "{started}");
        let eval = v.get("stages").and_then(|s| s.get("eval")).unwrap();
        assert_eq!(eval.get("count").and_then(Json::as_num), Some(1.0));
        assert!(eval.get("p95_ms").and_then(Json::as_num).is_some());
    }

    #[test]
    fn http_routes_answer_and_404s_are_scoped() {
        let t = hub();
        let mut timer = t.begin("predict", true);
        timer.stage("eval", || ());
        timer.finish("ok", 7);
        let (status, ct, body) = http_response(&t, "GET", "/metrics");
        assert_eq!(status, "200 OK");
        assert!(ct.starts_with("text/plain"));
        assert!(body.contains("serve_requests_total 1"), "{body}");
        assert!(body.contains("serve_stage_eval_ms_count 1"), "{body}");
        let (status, _, body) = http_response(&t, "GET", "/healthz");
        assert_eq!(status, "200 OK");
        let v = json::parse(&body).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
        let (status, _, body) = http_response(&t, "GET", "/spans?last=5");
        assert_eq!(status, "200 OK");
        assert_eq!(
            json::parse(&body).unwrap().as_array().map(<[_]>::len),
            Some(1)
        );
        let (status, _, _) = http_response(&t, "GET", "/nope");
        assert_eq!(status, "404 Not Found");
        let (status, _, _) = http_response(&t, "POST", "/metrics");
        assert_eq!(status, "405 Method Not Allowed");
    }

    #[test]
    fn sidecar_answers_over_a_real_socket_and_stops_cleanly() {
        let t = Arc::new(hub());
        let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&t)).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.spawn().unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        use std::io::Read as _;
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("\"status\":\"ok\""), "{response}");
        handle.stop();
    }

    #[test]
    fn slow_log_threshold_filters_fast_requests() {
        let dir = std::env::temp_dir().join(format!("pevpm-telemetry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("req.log");
        let t =
            Telemetry::new(Arc::new(Registry::new()), 8, Some(&path), Some(1_000_000.0)).unwrap();
        t.begin("predict", true).finish("ok", 1);
        drop(t);
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "",
            "a fast request must not log under a high threshold"
        );
        let t = Telemetry::new(Arc::new(Registry::new()), 8, Some(&path), None).unwrap();
        let mut timer = t.begin("predict", true);
        timer.stage("eval", || ());
        timer.finish("budget", 9);
        drop(t);
        let logged = std::fs::read_to_string(&path).unwrap();
        let v = json::parse(logged.trim()).expect("log line is one JSON object");
        assert_eq!(v.get("op").and_then(Json::as_str), Some("predict"));
        assert_eq!(v.get("outcome").and_then(Json::as_str), Some("budget"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
