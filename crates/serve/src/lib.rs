//! `pevpm-serve`: the long-running prediction service.
//!
//! A one-shot `pevpm predict` pays the full pipeline on every call —
//! load the benchmark database, compile its distributions into sampler
//! form, parse and lower the annotated model, then evaluate. For
//! interactive what-if exploration (the paper's intended PEVPM use case:
//! vary process counts, message sizes, and machine tables around a known
//! model) that repetition is almost pure waste: the tables and models
//! barely change between questions.
//!
//! This crate splits the pipeline at its natural joint:
//!
//! * [`plan`] — the front-end-agnostic request-plan layer: a
//!   [`plan::PredictRequest`] carries exactly what a prediction needs,
//!   and validation/classification mirrors the CLI's exit-code contract.
//!   Both the one-shot subcommands and the daemon build on it, so a
//!   daemon answer is bitwise-reproducible by a one-shot run.
//! * [`cache`] — content-addressed (FNV-1a) caches for parsed models and
//!   compiled timing models, with hit/miss/compile counters in a
//!   [`pevpm_obs::Registry`].
//! * [`proto`] — the wire protocol: length-prefixed JSON frames over
//!   TCP, deterministic response payloads.
//! * [`server`] — the daemon: a bounded concurrent connection layer
//!   (accept loop + fixed worker pool) with per-connection I/O
//!   deadlines, in-flight admission control with load shedding,
//!   graceful drain, per-request panic isolation, and batch fan-out
//!   onto the replication pool.
//! * [`telemetry`] — service-grade observability: per-request spans
//!   (validate → model → compile → eval → render) in a bounded ring,
//!   stage latency histograms, a structured one-line-JSON request log,
//!   and a dependency-free HTTP sidecar serving Prometheus `/metrics`,
//!   `/healthz`, and `/spans`.
//! * [`client`] — a small blocking client for the CLI subcommand, tests,
//!   and smoke scripts, with connect timeouts and bounded retries on
//!   the two unambiguous failures (connect-refused and `"overloaded"`).
//! * [`chaos`] — the fault-injection harness behind `client --chaos`:
//!   misbehaving peers (truncated prefixes, mid-frame stalls, half-open
//!   disconnects, oversized frames, garbage bytes, slow readers) that
//!   verify the daemon survives every mode without a panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod plan;
pub mod proto;
pub mod server;
pub mod telemetry;

pub use cache::{fnv1a, ModelCache, TimingCache};
pub use chaos::{ChaosMode, ChaosReport};
pub use client::{Client, ClientConfig};
pub use plan::{EvalOutcome, PlanError, PlanErrorKind, PredictRequest};
pub use proto::{read_frame, write_frame, Request};
pub use server::{ServeConfig, ServeError, Server};
pub use telemetry::{HttpServer, RequestTimer, Telemetry};
