//! The request-plan layer: everything a prediction request needs between
//! "here is an annotated source and a benchmark database" and "here is the
//! prediction", shared verbatim by the one-shot `pevpm predict`
//! subcommand and the `pevpm serve` daemon loop.
//!
//! The split keeps the two front-ends honest: the CLI parses flags into a
//! [`PredictRequest`], the server parses protocol frames into the same
//! struct, and from there model parsing, timing-model construction,
//! evaluation-config assembly, budget plumbing and error classification
//! are one code path. A daemon answer is therefore reproducible by a
//! one-shot CLI invocation with the same inputs — bitwise.

use pevpm::stats::AdaptivePolicy;
use pevpm::timing::{PredictionMode, TimingModel};
use pevpm::vm::{
    evaluate, monte_carlo, EvalConfig, McPrediction, PevpmError, Prediction, RunBudget,
};
use pevpm_dist::{CompileOptions, CompiledTable, DistTable};

/// How a plan failure maps onto the CLI's exit-code contract (and the
/// server's protocol error codes): `Usage` ↔ exit 2 / `"usage"`, `Input`
/// ↔ exit 3 / `"input"`, `Budget` ↔ exit 4 / `"budget"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanErrorKind {
    /// Malformed request (bad mode, zero reps, quorum out of range).
    Usage,
    /// Invalid input (unparseable model, table that fails compilation,
    /// evaluation failures other than terminations).
    Input,
    /// Evaluation terminated: run budget exceeded or deadlock.
    Budget,
}

impl PlanErrorKind {
    /// The protocol error-code string for this kind.
    pub fn code(self) -> &'static str {
        match self {
            PlanErrorKind::Usage => "usage",
            PlanErrorKind::Input => "input",
            PlanErrorKind::Budget => "budget",
        }
    }
}

/// A structured plan failure: a classification plus a printable message.
#[derive(Debug, Clone)]
pub struct PlanError {
    /// Failure class (drives exit codes and protocol error codes).
    pub kind: PlanErrorKind,
    /// Human-readable message.
    pub message: String,
}

impl PlanError {
    /// A usage-class error.
    pub fn usage(m: impl Into<String>) -> Self {
        PlanError {
            kind: PlanErrorKind::Usage,
            message: m.into(),
        }
    }

    /// An input-class error.
    pub fn input(m: impl Into<String>) -> Self {
        PlanError {
            kind: PlanErrorKind::Input,
            message: m.into(),
        }
    }

    /// A budget/termination-class error.
    pub fn budget(m: impl Into<String>) -> Self {
        PlanError {
            kind: PlanErrorKind::Budget,
            message: m.into(),
        }
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for PlanError {}

/// Classify an evaluation failure: deadlocks and budget aborts are
/// *terminations*; everything else — unknown parameters, missing
/// distributions, replication quorum failures — is a model/input error.
pub fn eval_error(e: PevpmError) -> PlanError {
    match &e {
        PevpmError::Deadlock { .. } | PevpmError::Budget(_) => {
            PlanError::budget(format!("evaluation failed: {e}"))
        }
        _ => PlanError::input(format!("evaluation failed: {e}")),
    }
}

/// One prediction request, front-end agnostic: the CLI builds it from
/// flags, the server from a protocol frame. The benchmark table is
/// *referenced*, not embedded — the CLI loads `--db`, the server resolves
/// a table name against the set it loaded at startup.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRequest {
    /// Annotated C source text of the model.
    pub model_src: String,
    /// Virtual process count.
    pub procs: usize,
    /// Prediction mode name: `dist`, `avg` or `min`.
    pub mode: String,
    /// Restrict the database to its ping-pong (lowest-contention) slice.
    pub pingpong: bool,
    /// Answer `Fit` quantiles by exact bisection instead of the LUT.
    pub exact_quantiles: bool,
    /// Free-parameter bindings, in application order.
    pub params: Vec<(String, f64)>,
    /// Base RNG seed.
    pub seed: u64,
    /// Monte-Carlo replications (1 = single evaluation).
    pub reps: usize,
    /// Worker threads (0 = all cores, 1 = serial); results are bitwise
    /// identical at any setting.
    pub threads: usize,
    /// Intra-evaluation DAG workers (0 = classic serial engine, >= 1 =
    /// SCC/DAG component scheduling); predictions are bitwise identical
    /// at every value >= 1. Shares the host core budget with `threads`.
    pub eval_threads: usize,
    /// k-of-n quorum: accept the batch when at least k replications
    /// succeed.
    pub quorum: Option<usize>,
    /// Budget: maximum directive executions per evaluation.
    pub max_steps: Option<u64>,
    /// Budget: maximum simulated seconds per evaluation.
    pub max_virtual_secs: Option<f64>,
    /// Adaptive sequential stopping: run replications until the relative
    /// 95% CI half-width on the mean is at most this value. `Some` makes
    /// the engine ignore `reps` and stop between `min_reps` and
    /// `max_reps` replications instead.
    pub precision: Option<f64>,
    /// Adaptive replication floor (requires `precision`; default 4).
    pub min_reps: Option<usize>,
    /// Adaptive replication ceiling (requires `precision`; default 64).
    /// The daemon additionally tightens this to its own `--max-reps` cap.
    pub max_reps: Option<usize>,
    /// Antithetic seed pairing (variance reduction): replicas 2j/2j+1
    /// share a derived seed with mirrored Monte-Carlo draws.
    pub antithetic: bool,
}

impl PredictRequest {
    /// A request with the CLI's defaults for everything optional.
    pub fn new(model_src: impl Into<String>, procs: usize) -> Self {
        PredictRequest {
            model_src: model_src.into(),
            procs,
            mode: "dist".to_string(),
            pingpong: false,
            exact_quantiles: false,
            params: Vec::new(),
            seed: 1,
            reps: 1,
            threads: 0,
            eval_threads: 0,
            quorum: None,
            max_steps: None,
            max_virtual_secs: None,
            precision: None,
            min_reps: None,
            max_reps: None,
            antithetic: false,
        }
    }

    /// Resolve the mode name (`dist`/`avg`/`min`).
    pub fn prediction_mode(&self) -> Result<PredictionMode, PlanError> {
        mode_from_name(&self.mode)
    }

    /// Sampler-compilation options implied by the request.
    pub fn compile_options(&self) -> CompileOptions {
        CompileOptions {
            exact_quantiles: self.exact_quantiles,
            ..CompileOptions::default()
        }
    }

    /// Assemble the [`EvalConfig`] for this request: process count, seed,
    /// threads, parameter bindings, quorum, and budget. Validates the
    /// request's numeric constraints.
    pub fn eval_config(&self) -> Result<EvalConfig, PlanError> {
        if self.reps == 0 {
            return Err(PlanError::usage("--reps must be at least 1"));
        }
        let mut cfg = EvalConfig::new(self.procs)
            .with_seed(self.seed)
            .with_threads(self.threads)
            .with_eval_threads(self.eval_threads);
        for (k, v) in &self.params {
            cfg = cfg.with_param(k, *v);
        }
        let policy = self.adaptive_policy()?;
        if let Some(policy) = policy {
            cfg = cfg.with_adaptive(policy);
        }
        if let Some(q) = self.quorum {
            // Quorum is k-of-(reps actually run): in adaptive mode the
            // ceiling bounds what can run, so that is what k must fit in.
            let ceiling = policy.map_or(self.reps, |p| p.max_reps);
            if q == 0 || q > ceiling {
                return Err(PlanError::usage(format!(
                    "--quorum {q} must be in 1..={ceiling} ({})",
                    if policy.is_some() {
                        "--max-reps"
                    } else {
                        "--reps"
                    }
                )));
            }
            cfg = cfg.with_quorum(q);
        }
        if self.antithetic {
            cfg = cfg.with_antithetic();
        }
        if let Some(budget) = self.budget() {
            cfg = cfg.with_budget(budget);
        }
        Ok(cfg)
    }

    /// The adaptive stopping policy this request asks for, validated.
    /// `--min-reps`/`--max-reps` without `--precision` is a usage error —
    /// they bound a stopping rule that would not be running.
    pub fn adaptive_policy(&self) -> Result<Option<AdaptivePolicy>, PlanError> {
        let Some(precision) = self.precision else {
            if self.min_reps.is_some() || self.max_reps.is_some() {
                return Err(PlanError::usage(
                    "--min-reps/--max-reps require --precision (adaptive mode)",
                ));
            }
            return Ok(None);
        };
        let mut policy = AdaptivePolicy::new(precision);
        if let Some(n) = self.min_reps {
            policy = policy.with_min_reps(n);
        }
        if let Some(n) = self.max_reps {
            policy = policy.with_max_reps(n);
        }
        policy.validate().map_err(PlanError::usage)?;
        Ok(Some(policy))
    }

    /// The replication count to hand [`evaluate_plan`]: the fixed `reps`,
    /// or the adaptive ceiling (≥ 2 by validation, so adaptive requests
    /// always take the Monte-Carlo path). Call after `eval_config()` has
    /// validated the request.
    pub fn effective_reps(&self) -> usize {
        match self.adaptive_policy() {
            Ok(Some(policy)) => policy.max_reps,
            _ => self.reps,
        }
    }

    /// The per-evaluation budget requested, if any axis is bounded.
    pub fn budget(&self) -> Option<RunBudget> {
        let mut budget = RunBudget::default();
        let mut bounded = false;
        if let Some(n) = self.max_steps {
            budget = budget.with_max_steps(n);
            bounded = true;
        }
        if let Some(s) = self.max_virtual_secs {
            budget = budget.with_max_virtual_secs(s);
            bounded = true;
        }
        bounded.then_some(budget)
    }
}

/// Resolve a prediction-mode name.
pub fn mode_from_name(name: &str) -> Result<PredictionMode, PlanError> {
    match name {
        "dist" => Ok(PredictionMode::FullDistribution),
        "avg" => Ok(PredictionMode::Average),
        "min" => Ok(PredictionMode::Minimum),
        other => Err(PlanError::usage(format!(
            "unknown mode {other:?} (dist|avg|min)"
        ))),
    }
}

/// Parse annotated source into a model. `origin` names the source in error
/// messages (a file path for the CLI, a request id for the server).
pub fn parse_model(src: &str, origin: &str) -> Result<pevpm::Model, PlanError> {
    pevpm::parse_annotations(src).map_err(|e| PlanError::input(format!("{origin}: {e}")))
}

/// Build the timing model a request asks for from a benchmark table.
///
/// Pre-validates the table compilation so invalid tables surface as
/// structured [`PlanError`]s instead of the panics the [`TimingModel`]
/// constructors document — a daemon cannot afford those.
pub fn build_timing(
    table: &DistTable,
    mode: PredictionMode,
    pingpong: bool,
    options: CompileOptions,
) -> Result<TimingModel, PlanError> {
    CompiledTable::compile_with(table, options)
        .map_err(|e| PlanError::input(format!("invalid benchmark table: {e}")))?;
    Ok(if pingpong {
        TimingModel::pingpong_only(table, mode)
    } else {
        match mode {
            PredictionMode::FullDistribution => {
                TimingModel::distributions_with(table.clone(), options)
            }
            PredictionMode::Average => {
                TimingModel::point(table.clone(), pevpm_dist::PointKind::Average)
            }
            PredictionMode::Minimum => {
                TimingModel::point(table.clone(), pevpm_dist::PointKind::Minimum)
            }
        }
    })
}

/// Outcome of one evaluated plan: a single prediction or a Monte-Carlo
/// batch.
#[derive(Debug, Clone)]
pub enum EvalOutcome {
    /// `reps == 1`: one deterministic evaluation.
    Single(Box<Prediction>),
    /// `reps > 1`: a Monte-Carlo batch.
    Batch(Box<McPrediction>),
}

impl EvalOutcome {
    /// The headline makespan: the single prediction's, or the batch mean.
    pub fn makespan(&self) -> f64 {
        match self {
            EvalOutcome::Single(p) => p.makespan,
            EvalOutcome::Batch(mc) => mc.mean,
        }
    }

    /// The prediction whose timeline belongs in a trace sink: the single
    /// run, or the batch's first replication (whose seed equals a
    /// `reps == 1` run with the same base seed).
    pub fn trace_prediction(&self) -> Option<&Prediction> {
        match self {
            EvalOutcome::Single(p) => Some(p),
            EvalOutcome::Batch(mc) => mc.runs.first(),
        }
    }
}

/// Evaluate a parsed model under a prepared timing model and config —
/// the shared tail of both front-ends. `reps` must already be validated
/// (≥ 1, see [`PredictRequest::eval_config`]).
pub fn evaluate_plan(
    model: &pevpm::Model,
    cfg: &EvalConfig,
    timing: &TimingModel,
    reps: usize,
) -> Result<EvalOutcome, PlanError> {
    if reps > 1 {
        let mc = monte_carlo(model, cfg, timing, reps).map_err(eval_error)?;
        Ok(EvalOutcome::Batch(Box::new(mc)))
    } else {
        let p = evaluate(model, cfg, timing).map_err(eval_error)?;
        Ok(EvalOutcome::Single(Box::new(p)))
    }
}

/// The deterministic headline line both front-ends print for a
/// Monte-Carlo batch (the CLI appends wall-clock statistics after it).
pub fn render_mc_headline(mc: &McPrediction, procs: usize) -> String {
    format!(
        "predicted makespan: {:.6} s +/- {:.6} (stderr) over {procs} procs\n",
        mc.mean, mc.stderr
    )
}

/// The deterministic adaptive-stopping line both front-ends append after
/// the headline when the batch ran under a precision target. Empty for
/// fixed-reps batches, so fixed output stays byte-identical.
pub fn render_adaptive_line(mc: &McPrediction) -> String {
    let Some(a) = &mc.adaptive else {
        return String::new();
    };
    let mut out = format!(
        "adaptive: stopped at {} rep(s) (bounds {}..={}), achieved half-width {:.4} of mean (target {:.4}, {:.0}% CI){}\n",
        a.reps,
        a.min_reps,
        a.max_reps,
        a.rel_half_width,
        a.precision,
        a.confidence * 100.0,
        if a.converged { "" } else { " [NOT CONVERGED]" },
    );
    if a.drift {
        out.push_str("warning: replication stream looks non-stationary (drift detected)\n");
    }
    out
}

/// The deterministic report for a single evaluation — byte-identical to
/// the one-shot `pevpm predict` output for the same request.
pub fn render_single_report(p: &Prediction) -> String {
    let mut out = format!(
        "predicted makespan: {:.6} s over {} procs ({} messages)\n",
        p.makespan, p.nprocs, p.messages
    );
    let mut losses: Vec<(&String, &f64)> = p.loss_by_label.iter().collect();
    losses.sort_by(|a, b| b.1.partial_cmp(a.1).unwrap_or(std::cmp::Ordering::Equal));
    if !losses.is_empty() {
        out.push_str("top blocking sources:\n");
        for (label, loss) in losses.iter().take(5) {
            out.push_str(&format!("  {label:<24} {:.6} s\n", **loss));
        }
    }
    if !p.races.is_empty() {
        out.push_str(&format!("{} potential race(s) detected:\n", p.races.len()));
        for (proc_, what) in p.races.iter().take(5) {
            out.push_str(&format!("  proc {proc_}: {what}\n"));
        }
    }
    out
}

/// The deterministic failure lines for a quorum-absorbed batch (shared so
/// daemon and CLI report partial failures identically).
pub fn render_failures(failures: &[(usize, String)]) -> String {
    if failures.is_empty() {
        return String::new();
    }
    let mut out = format!(
        "{} replication(s) failed (quorum met; prediction aggregates the rest):\n",
        failures.len()
    );
    for (idx, what) in failures {
        out.push_str(&format!("  replication {idx}: {what}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PINGPONG: &str = "\
// PEVPM Loop iterations = rounds
// PEVPM {
// PEVPM Runon c1 = procnum == 0
// PEVPM &     c2 = procnum == 1
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM }
";

    #[test]
    fn request_validation_mirrors_the_cli_contract() {
        let mut req = PredictRequest::new(PINGPONG, 2);
        req.reps = 0;
        assert_eq!(req.eval_config().unwrap_err().kind, PlanErrorKind::Usage);
        req.reps = 4;
        req.quorum = Some(5);
        assert_eq!(req.eval_config().unwrap_err().kind, PlanErrorKind::Usage);
        req.quorum = Some(2);
        assert!(req.eval_config().is_ok());
        assert!(mode_from_name("warp").is_err());
        assert!(matches!(
            mode_from_name("dist"),
            Ok(PredictionMode::FullDistribution)
        ));
    }

    #[test]
    fn adaptive_policy_validation_is_a_usage_error() {
        // Bounds without a precision: nonsense, and a usage error.
        let mut req = PredictRequest::new(PINGPONG, 2);
        req.min_reps = Some(4);
        let e = req.adaptive_policy().unwrap_err();
        assert_eq!(e.kind, PlanErrorKind::Usage);
        assert!(e.message.contains("--precision"), "{e}");

        // A malformed policy surfaces through eval_config too.
        let mut req = PredictRequest::new(PINGPONG, 2);
        req.precision = Some(-0.5);
        assert_eq!(req.eval_config().unwrap_err().kind, PlanErrorKind::Usage);
        req.precision = Some(0.05);
        req.min_reps = Some(1);
        assert_eq!(req.eval_config().unwrap_err().kind, PlanErrorKind::Usage);
        req.min_reps = Some(8);
        req.max_reps = Some(4);
        assert_eq!(req.eval_config().unwrap_err().kind, PlanErrorKind::Usage);

        // A valid policy lands in the EvalConfig and raises the rep
        // ceiling the plan layer evaluates with.
        let mut req = PredictRequest::new(PINGPONG, 2);
        req.precision = Some(0.05);
        req.max_reps = Some(24);
        let cfg = req.eval_config().unwrap();
        let policy = cfg.adaptive.expect("policy in config");
        assert_eq!(policy.max_reps, 24);
        assert_eq!(req.effective_reps(), 24);
        assert_eq!(PredictRequest::new(PINGPONG, 2).effective_reps(), 1);

        // Quorum validates against the adaptive ceiling, not req.reps.
        let mut req = PredictRequest::new(PINGPONG, 2);
        req.precision = Some(0.05);
        req.max_reps = Some(24);
        req.quorum = Some(24);
        assert!(req.eval_config().is_ok());
        req.quorum = Some(25);
        let e = req.eval_config().unwrap_err();
        assert_eq!(e.kind, PlanErrorKind::Usage);
        assert!(e.message.contains("--max-reps"), "{e}");
    }

    #[test]
    fn adaptive_render_line_reports_the_stopping_outcome() {
        let model = parse_model(PINGPONG, "test").unwrap();
        let timing = TimingModel::hockney(100e-6, 12.5e6);
        let mut req = PredictRequest::new(PINGPONG, 2);
        req.params.push(("rounds".to_string(), 5.0));
        req.precision = Some(0.05);
        let cfg = req.eval_config().unwrap();
        let outcome = evaluate_plan(&model, &cfg, &timing, req.effective_reps()).unwrap();
        let EvalOutcome::Batch(mc) = &outcome else {
            panic!("expected batch outcome")
        };
        // Hockney is deterministic: zero variance, stops at the floor.
        let report = mc.adaptive.expect("adaptive report");
        assert_eq!(report.reps, 4);
        assert!(report.converged);
        let line = render_adaptive_line(mc);
        assert!(line.contains("stopped at 4 rep(s)"), "{line}");
        assert!(!line.contains("NOT CONVERGED"), "{line}");
        assert!(!line.contains("drift"), "{line}");

        // Fixed-reps batches render nothing — the legacy report shape
        // is byte-preserved.
        let mut fixed_req = PredictRequest::new(PINGPONG, 2);
        fixed_req.params.push(("rounds".to_string(), 5.0));
        let fixed_cfg = fixed_req.eval_config().unwrap();
        let EvalOutcome::Batch(fixed_mc) = evaluate_plan(&model, &fixed_cfg, &timing, 3).unwrap()
        else {
            panic!("expected batch outcome")
        };
        assert_eq!(render_adaptive_line(&fixed_mc), "");
    }

    #[test]
    fn budget_is_none_unless_an_axis_is_bounded() {
        let mut req = PredictRequest::new(PINGPONG, 2);
        assert!(req.budget().is_none());
        req.max_steps = Some(100);
        assert!(req.budget().is_some());
    }

    #[test]
    fn invalid_tables_are_errors_not_panics() {
        let mut t = DistTable::new();
        t.insert(
            pevpm_dist::DistKey {
                op: pevpm_dist::Op::Send,
                size: 8,
                contention: 1,
            },
            pevpm_dist::CommDist::Hist(pevpm_dist::Histogram::new(0.0, 1.0)),
        );
        let e = build_timing(
            &t,
            PredictionMode::FullDistribution,
            false,
            CompileOptions::default(),
        )
        .unwrap_err();
        assert_eq!(e.kind, PlanErrorKind::Input);
        assert!(e.message.contains("empty histogram"), "{e}");
    }

    #[test]
    fn single_and_batch_evaluations_share_one_path() {
        let model = parse_model(PINGPONG, "test").unwrap();
        let timing = TimingModel::hockney(100e-6, 12.5e6);
        let mut req = PredictRequest::new(PINGPONG, 2);
        req.params.push(("rounds".to_string(), 5.0));
        let cfg = req.eval_config().unwrap();
        let single = evaluate_plan(&model, &cfg, &timing, 1).unwrap();
        let EvalOutcome::Single(p) = &single else {
            panic!("expected single outcome")
        };
        assert!(p.makespan > 0.0);
        assert!(single.trace_prediction().is_some());
        let batch = evaluate_plan(&model, &cfg, &timing, 3).unwrap();
        let EvalOutcome::Batch(mc) = &batch else {
            panic!("expected batch outcome")
        };
        // A deterministic (Hockney) model: every replication is identical.
        assert_eq!(mc.mean.to_bits(), p.makespan.to_bits());
        assert_eq!(batch.makespan().to_bits(), p.makespan.to_bits());
    }

    #[test]
    fn deadlock_classifies_as_budget() {
        let src = "\
// PEVPM Runon c1 = procnum == 0
// PEVPM &     c2 = procnum == 1
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 1024
// PEVPM &       from = 1
// PEVPM &       to = 0
// PEVPM }
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
";
        let model = parse_model(src, "test").unwrap();
        let timing = TimingModel::hockney(100e-6, 12.5e6);
        let cfg = PredictRequest::new(src, 2).eval_config().unwrap();
        let e = evaluate_plan(&model, &cfg, &timing, 1).unwrap_err();
        assert_eq!(e.kind, PlanErrorKind::Budget);
    }
}
