//! The daemon's wire protocol: length-prefixed JSON frames.
//!
//! Every message — request or response — is one frame: a 4-byte
//! big-endian `u32` byte length followed by that many bytes of UTF-8
//! JSON. Length prefixes make the stream self-delimiting without
//! requiring an incremental JSON parser, and the JSON reuses the
//! workspace's vendored dependency-free [`pevpm_obs::json`].
//!
//! Requests carry an `op` (`predict`, `batch`, `stats`, `ping`,
//! `shutdown`) and a client-chosen `id` echoed back on the response.
//! Responses are `{"id", "ok": true, "result": {...}}` on success and
//! `{"id", "ok": false, "code", "error"}` on failure, with `code` one of
//! `usage` / `input` / `budget` / `panic` — mirroring the CLI's exit-code
//! contract so a daemon refusal means exactly what the one-shot exit
//! status would — plus two transport-level codes: `overloaded` (the
//! request was shed before any evaluation; the response carries a
//! `retry_after_ms` hint and resending is always safe) and `timeout`
//! (the peer stalled mid-frame past the server's I/O deadline and the
//! connection is being closed).
//!
//! Result payloads contain only *deterministic* fields (no wall-clock
//! timings), so the byte-for-byte response to a request is independent of
//! cache temperature, batching, and thread count.

use std::io::{self, Read, Write};

use pevpm_obs::json::{self, escape, num, Json};

use crate::plan::{
    render_adaptive_line, render_failures, render_mc_headline, render_single_report, EvalOutcome,
    PlanError, PredictRequest,
};

/// Maximum accepted frame payload (16 MiB) unless the server configures
/// a different bound. Annotated sources are kilobytes; this is a
/// protect-the-daemon limit, not a capacity target.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Write one frame: 4-byte big-endian length, then the payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Read one frame. Returns `Ok(None)` on clean EOF at a frame boundary;
/// EOF mid-frame, an oversized length, or invalid UTF-8 are errors.
pub fn read_frame<R: Read>(r: &mut R, max: usize) -> io::Result<Option<String>> {
    match read_frame_deadline(r, max)? {
        FrameRead::Frame(f) => Ok(Some(f)),
        FrameRead::CleanEof => Ok(None),
        // Without a read deadline on the stream this variant cannot
        // occur; with one, an idle boundary timeout surfaces as an error
        // for callers of the legacy single-outcome API.
        FrameRead::IdleTimeout => Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "read timed out waiting for a frame",
        )),
    }
}

/// Classified outcome of reading one frame from a stream that may carry
/// a read deadline. The distinction the server's robustness contract
/// needs: a peer that closes *between* frames is clean, one that stalls
/// *between* frames is merely idle (evictable without an error), and one
/// that stalls or disappears *inside* a frame is a protocol failure.
#[derive(Debug)]
pub enum FrameRead {
    /// One complete frame payload.
    Frame(String),
    /// The peer closed the stream at a frame boundary.
    CleanEof,
    /// The read deadline expired before any byte of the next frame
    /// arrived: the connection is idle, not broken.
    IdleTimeout,
}

/// Whether an I/O error is a read/write deadline expiry. Linux surfaces
/// `SO_RCVTIMEO`/`SO_SNDTIMEO` expiry as `EAGAIN` (`WouldBlock`), other
/// platforms as `TimedOut`; both mean the same thing here.
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Read one frame, classifying boundary conditions (see [`FrameRead`]).
/// Errors are structured for the caller's diagnostics:
///
/// * EOF or a deadline expiry *inside* a frame (prefix or body) is an
///   error (`UnexpectedEof` / `TimedOut`) whose message names where the
///   stream stalled;
/// * an oversized declared length or invalid UTF-8 is `InvalidData`,
///   refused before the payload is allocated or decoded.
pub fn read_frame_deadline<R: Read>(r: &mut R, max: usize) -> io::Result<FrameRead> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            // EOF before any prefix byte is a clean end-of-stream; EOF
            // inside the prefix is a truncated frame.
            Ok(0) if filled == 0 => return Ok(FrameRead::CleanEof),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) && filled == 0 => return Ok(FrameRead::IdleTimeout),
            Err(e) if is_timeout(&e) => {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("peer stalled inside a frame length prefix ({filled}/4 bytes)"),
                ))
            }
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit {max}"),
        ));
    }
    let mut buf = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("stream ended inside a frame body ({got}/{len} bytes)"),
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("peer stalled inside a frame body ({got}/{len} bytes)"),
                ))
            }
            Err(e) => return Err(e),
        }
    }
    String::from_utf8(buf).map(FrameRead::Frame).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame is not UTF-8: {e}"),
        )
    })
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// One prediction against a named preloaded table.
    Predict {
        /// Client-chosen id, echoed on the response.
        id: String,
        /// Name of a table the daemon loaded at startup.
        table: String,
        /// The prediction request proper.
        req: Box<PredictRequest>,
    },
    /// Several predictions answered as one response, fanned out across
    /// the server's replication pool.
    Batch {
        /// Client-chosen id.
        id: String,
        /// `(table, request)` per item, in order.
        items: Vec<(String, PredictRequest)>,
    },
    /// The server's metrics registry as JSON.
    Stats {
        /// Client-chosen id.
        id: String,
    },
    /// Liveness probe.
    Ping {
        /// Client-chosen id.
        id: String,
    },
    /// Stop accepting connections and exit the serve loop.
    Shutdown {
        /// Client-chosen id.
        id: String,
    },
}

impl Request {
    /// The request's echo id.
    pub fn id(&self) -> &str {
        match self {
            Request::Predict { id, .. }
            | Request::Batch { id, .. }
            | Request::Stats { id }
            | Request::Ping { id }
            | Request::Shutdown { id } => id,
        }
    }
}

/// Best-effort id extraction so even a malformed request can be answered
/// with its own id (missing/unusable ids echo as `""`).
fn id_of(v: &Json) -> String {
    match v.get("id") {
        Some(Json::Str(s)) => s.clone(),
        Some(Json::Num(n)) => num(*n),
        _ => String::new(),
    }
}

fn str_field(v: &Json, key: &str) -> Result<String, PlanError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| PlanError::usage(format!("request missing string field {key:?}")))
}

fn usize_field(v: &Json, key: &str) -> Result<Option<usize>, PlanError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
            Ok(Some(*n as usize))
        }
        Some(_) => Err(PlanError::usage(format!(
            "field {key:?} must be a small non-negative integer"
        ))),
    }
}

fn u64_field(v: &Json, key: &str) -> Result<Option<u64>, PlanError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(Some(*n as u64)),
        Some(_) => Err(PlanError::usage(format!(
            "field {key:?} must be a non-negative integer"
        ))),
    }
}

fn bool_field(v: &Json, key: &str) -> Result<bool, PlanError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(false),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(PlanError::usage(format!("field {key:?} must be a boolean"))),
    }
}

/// Parse one predict body (the whole frame for `op: "predict"`, or one
/// element of `requests` for `op: "batch"`) into `(table, request)`.
pub fn parse_predict_body(v: &Json) -> Result<(String, PredictRequest), PlanError> {
    let model = str_field(v, "model")?;
    let table = match v.get("table") {
        None | Some(Json::Null) => "default".to_string(),
        Some(Json::Str(s)) => s.clone(),
        Some(_) => return Err(PlanError::usage("field \"table\" must be a string")),
    };
    let procs = usize_field(v, "procs")?
        .ok_or_else(|| PlanError::usage("request missing integer field \"procs\""))?;
    let mut req = PredictRequest::new(model, procs);
    if let Some(Json::Str(m)) = v.get("mode") {
        req.mode = m.clone();
    } else if matches!(v.get("mode"), Some(j) if !matches!(j, Json::Null)) {
        return Err(PlanError::usage("field \"mode\" must be a string"));
    }
    req.pingpong = bool_field(v, "pingpong")?;
    req.exact_quantiles = bool_field(v, "exact_quantiles")?;
    if let Some(params) = v.get("params") {
        let obj = params
            .as_object()
            .ok_or_else(|| PlanError::usage("field \"params\" must be an object of numbers"))?;
        for (k, pv) in obj {
            let n = pv
                .as_num()
                .ok_or_else(|| PlanError::usage(format!("param {k:?} must be a number")))?;
            req.params.push((k.clone(), n));
        }
    }
    if let Some(seed) = u64_field(v, "seed")? {
        req.seed = seed;
    }
    if let Some(reps) = usize_field(v, "reps")? {
        req.reps = reps;
    }
    if let Some(threads) = usize_field(v, "threads")? {
        req.threads = threads;
    }
    if let Some(eval_threads) = usize_field(v, "eval_threads")? {
        req.eval_threads = eval_threads;
    }
    req.quorum = usize_field(v, "quorum")?;
    req.precision = match v.get("precision") {
        None | Some(Json::Null) => None,
        Some(Json::Num(n)) if *n > 0.0 => Some(*n),
        Some(_) => {
            return Err(PlanError::usage(
                "field \"precision\" must be a positive number",
            ))
        }
    };
    req.min_reps = usize_field(v, "min_reps")?;
    req.max_reps = usize_field(v, "max_reps")?;
    req.antithetic = bool_field(v, "antithetic")?;
    req.max_steps = u64_field(v, "max_steps")?;
    req.max_virtual_secs = match v.get("max_virtual_secs") {
        None | Some(Json::Null) => None,
        Some(Json::Num(n)) if *n >= 0.0 => Some(*n),
        Some(_) => {
            return Err(PlanError::usage(
                "field \"max_virtual_secs\" must be a non-negative number",
            ))
        }
    };
    Ok((table, req))
}

/// Parse one request frame. Errors carry the best-effort id so the server
/// can still address its refusal.
pub fn parse_request(text: &str) -> Result<Request, (String, PlanError)> {
    let v = json::parse(text).map_err(|e| {
        (
            String::new(),
            PlanError::usage(format!("bad request JSON: {e}")),
        )
    })?;
    let id = id_of(&v);
    let op = str_field(&v, "op").map_err(|e| (id.clone(), e))?;
    match op.as_str() {
        "predict" => {
            let (table, req) = parse_predict_body(&v).map_err(|e| (id.clone(), e))?;
            Ok(Request::Predict {
                id,
                table,
                req: Box::new(req),
            })
        }
        "batch" => {
            let mut items = v
                .get("requests")
                .and_then(Json::as_array)
                .ok_or_else(|| {
                    (
                        id.clone(),
                        PlanError::usage("batch request missing array field \"requests\""),
                    )
                })?
                .iter()
                .map(parse_predict_body)
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| (id.clone(), e))?;
            if items.is_empty() {
                return Err((id, PlanError::usage("batch \"requests\" must be non-empty")));
            }
            // Common random numbers: `"crn": true` rewrites every item to
            // one shared base seed (the frame-level `"seed"` if given,
            // else the first item's), so what-if arms that differ only in
            // parameters/tables are compared on *paired* noise — the
            // per-arm Monte-Carlo draws line up one-to-one and the
            // arm-difference variance collapses to the model difference.
            let crn = bool_field(&v, "crn").map_err(|e| (id.clone(), e))?;
            if crn {
                let base = match u64_field(&v, "seed").map_err(|e| (id.clone(), e))? {
                    Some(s) => s,
                    None => items[0].1.seed,
                };
                for (_, req) in &mut items {
                    req.seed = base;
                }
            }
            Ok(Request::Batch { id, items })
        }
        "stats" => Ok(Request::Stats { id }),
        "ping" => Ok(Request::Ping { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err((
            id,
            PlanError::usage(format!(
                "unknown op {other:?} (predict|batch|stats|ping|shutdown)"
            )),
        )),
    }
}

/// A success response around an already-rendered result JSON value.
pub fn ok_response(id: &str, result_json: &str) -> String {
    format!(
        "{{\"id\":\"{}\",\"ok\":true,\"result\":{result_json}}}",
        escape(id)
    )
}

/// A failure response: `code` is
/// `usage`/`input`/`budget`/`panic`/`timeout`.
pub fn err_response(id: &str, code: &str, message: &str) -> String {
    format!(
        "{{\"id\":\"{}\",\"ok\":false,\"code\":\"{code}\",\"error\":\"{}\"}}",
        escape(id),
        escape(message)
    )
}

/// A load-shedding refusal: the request was *not* evaluated (no cache,
/// budget, or replication state was touched), so resending after
/// `retry_after_ms` is always safe — including for `batch` frames.
pub fn overloaded_response(id: &str, retry_after_ms: u64) -> String {
    format!(
        "{{\"id\":\"{}\",\"ok\":false,\"code\":\"overloaded\",\
         \"error\":\"server at capacity; retry after the hint\",\
         \"retry_after_ms\":{retry_after_ms}}}",
        escape(id)
    )
}

/// Render one evaluation outcome as a result JSON value. Deterministic by
/// construction: numbers go through [`pevpm_obs::json::num`] (shortest
/// round-trip — bit-exact through parse), the report is the shared
/// deterministic lines, and no wall-clock field is included.
pub fn render_outcome(outcome: &EvalOutcome) -> String {
    match outcome {
        EvalOutcome::Single(p) => {
            format!(
                "{{\"kind\":\"single\",\"makespan\":{},\"procs\":{},\"messages\":{},\"report\":\"{}\"}}",
                num(p.makespan),
                p.nprocs,
                p.messages,
                escape(&render_single_report(p))
            )
        }
        EvalOutcome::Batch(mc) => {
            let mut failures = String::from("[");
            for (i, (idx, what)) in mc.failures.iter().enumerate() {
                if i > 0 {
                    failures.push(',');
                }
                failures.push_str(&format!("[{idx},\"{}\"]", escape(what)));
            }
            failures.push(']');
            let report = format!(
                "{}{}{}",
                render_mc_headline(mc, mc.runs.first().map_or(0, |p| p.nprocs)),
                render_adaptive_line(mc),
                render_failures(&mc.failures)
            );
            // Adaptive runs get extra deterministic fields; fixed-reps
            // responses stay byte-identical to the historical frames.
            let adaptive = mc.adaptive.as_ref().map_or(String::new(), |a| {
                format!(
                    ",\"adaptive\":{{\"precision\":{},\"confidence\":{},\"min_reps\":{},\
                     \"max_reps\":{},\"reps\":{},\"reps_saved\":{},\"rel_half_width\":{},\
                     \"converged\":{},\"drift\":{}}}",
                    num(a.precision),
                    num(a.confidence),
                    a.min_reps,
                    a.max_reps,
                    a.reps,
                    a.reps_saved(),
                    if a.rel_half_width.is_finite() {
                        num(a.rel_half_width)
                    } else {
                        "null".to_string()
                    },
                    a.converged,
                    a.drift
                )
            });
            format!(
                "{{\"kind\":\"mc\",\"mean\":{},\"stderr\":{},\"min\":{},\"max\":{},\"reps\":{}{adaptive},\"failures\":{failures},\"report\":\"{}\"}}",
                num(mc.mean),
                num(mc.stderr),
                num(mc.min),
                num(mc.max),
                mc.runs.len() + mc.failures.len(),
                escape(&report)
            )
        }
    }
}

/// Render a batch response: an array of per-item results in request
/// order, each `{"ok": true, "result": ...}` or
/// `{"ok": false, "code": ..., "error": ...}`.
pub fn render_batch(items: &[Result<String, (String, String)>]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match item {
            Ok(result) => out.push_str(&format!("{{\"ok\":true,\"result\":{result}}}")),
            Err((code, msg)) => out.push_str(&format!(
                "{{\"ok\":false,\"code\":\"{code}\",\"error\":\"{}\"}}",
                escape(msg)
            )),
        }
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_eof_is_clean_only_at_boundaries() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"ping\",\"id\":\"1\"}").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, MAX_FRAME).unwrap().as_deref(),
            Some("{\"op\":\"ping\",\"id\":\"1\"}")
        );
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap().as_deref(), Some(""));
        assert_eq!(read_frame(&mut r, MAX_FRAME).unwrap(), None);
        // Truncated mid-frame: an error, not silent EOF.
        let mut partial = &buf[..3];
        assert!(read_frame(&mut partial, MAX_FRAME).is_err());
        // Oversized declared length is refused before allocation.
        let mut evil = Vec::new();
        evil.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(read_frame(&mut &evil[..], MAX_FRAME).is_err());
    }

    /// A reader that yields its script of chunks, then reports a read
    /// deadline expiry (`WouldBlock`, as Linux `SO_RCVTIMEO` does).
    struct StallingReader {
        chunks: Vec<Vec<u8>>,
    }

    impl Read for StallingReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.chunks.is_empty() {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "stalled"));
            }
            let chunk = self.chunks.remove(0);
            buf[..chunk.len()].copy_from_slice(&chunk);
            Ok(chunk.len())
        }
    }

    #[test]
    fn deadline_reads_classify_idle_vs_mid_frame_stalls() {
        // No bytes at all: idle, not an error.
        let mut idle = StallingReader { chunks: vec![] };
        assert!(matches!(
            read_frame_deadline(&mut idle, MAX_FRAME).unwrap(),
            FrameRead::IdleTimeout
        ));
        // Two of four prefix bytes, then stall: a timeout error naming
        // the prefix.
        let mut prefix = StallingReader {
            chunks: vec![vec![0, 0]],
        };
        let e = read_frame_deadline(&mut prefix, MAX_FRAME).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
        assert!(e.to_string().contains("length prefix"), "{e}");
        // A full prefix and a partial body, then stall: a timeout error
        // naming the body progress.
        let mut body = StallingReader {
            chunks: vec![8u32.to_be_bytes().to_vec(), b"abc".to_vec()],
        };
        let e = read_frame_deadline(&mut body, MAX_FRAME).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
        assert!(e.to_string().contains("3/8"), "{e}");
        // The legacy API surfaces idle timeouts as TimedOut errors.
        let mut idle = StallingReader { chunks: vec![] };
        let e = read_frame(&mut idle, MAX_FRAME).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn overloaded_responses_carry_the_retry_hint() {
        let r = overloaded_response("r7", 125);
        let v = json::parse(&r).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("r7"));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(v.get("retry_after_ms").and_then(Json::as_num), Some(125.0));
    }

    #[test]
    fn predict_requests_parse_with_defaults_and_overrides() {
        let r = parse_request(
            "{\"op\":\"predict\",\"id\":\"r1\",\"model\":\"src\",\"procs\":4,\
             \"params\":{\"rounds\":20},\"reps\":8,\"quorum\":6,\"seed\":7,\
             \"mode\":\"avg\",\"pingpong\":true,\"max_steps\":100}",
        )
        .unwrap();
        let Request::Predict { id, table, req } = r else {
            panic!("expected predict")
        };
        assert_eq!(id, "r1");
        assert_eq!(table, "default");
        assert_eq!(req.procs, 4);
        assert_eq!(req.mode, "avg");
        assert!(req.pingpong);
        assert_eq!(req.params, vec![("rounds".to_string(), 20.0)]);
        assert_eq!(req.reps, 8);
        assert_eq!(req.quorum, Some(6));
        assert_eq!(req.seed, 7);
        assert_eq!(req.max_steps, Some(100));
        assert_eq!(req.max_virtual_secs, None);
    }

    #[test]
    fn adaptive_fields_parse_and_validate() {
        let r = parse_request(
            "{\"op\":\"predict\",\"id\":\"a1\",\"model\":\"src\",\"procs\":4,\
             \"precision\":0.05,\"min_reps\":4,\"max_reps\":32,\"antithetic\":true}",
        )
        .unwrap();
        let Request::Predict { req, .. } = r else {
            panic!("expected predict")
        };
        assert_eq!(req.precision, Some(0.05));
        assert_eq!(req.min_reps, Some(4));
        assert_eq!(req.max_reps, Some(32));
        assert!(req.antithetic);

        // Absent fields stay absent: the legacy request shape is intact.
        let r = parse_request("{\"op\":\"predict\",\"id\":\"a2\",\"model\":\"m\",\"procs\":2}")
            .unwrap();
        let Request::Predict { req, .. } = r else {
            panic!("expected predict")
        };
        assert_eq!(req.precision, None);
        assert!(!req.antithetic);

        // A non-positive precision is refused at the parse layer.
        let (id, e) = parse_request(
            "{\"op\":\"predict\",\"id\":\"a3\",\"model\":\"m\",\"procs\":2,\"precision\":0}",
        )
        .unwrap_err();
        assert_eq!(id, "a3");
        assert!(e.message.contains("precision"), "{e}");
    }

    #[test]
    fn crn_batches_rewrite_item_seeds_to_a_common_base() {
        let r = parse_request(
            "{\"op\":\"batch\",\"id\":\"b\",\"crn\":true,\"requests\":[\
             {\"model\":\"a\",\"procs\":2,\"seed\":11},\
             {\"model\":\"b\",\"procs\":2,\"seed\":99},\
             {\"model\":\"c\",\"procs\":2}]}",
        )
        .unwrap();
        let Request::Batch { items, .. } = r else {
            panic!("expected batch")
        };
        assert!(items.iter().all(|(_, req)| req.seed == 11));

        // An explicit frame seed overrides the first item's.
        let r = parse_request(
            "{\"op\":\"batch\",\"id\":\"b\",\"crn\":true,\"seed\":7,\"requests\":[\
             {\"model\":\"a\",\"procs\":2,\"seed\":11},\
             {\"model\":\"b\",\"procs\":2,\"seed\":99}]}",
        )
        .unwrap();
        let Request::Batch { items, .. } = r else {
            panic!("expected batch")
        };
        assert!(items.iter().all(|(_, req)| req.seed == 7));

        // Without crn, per-item seeds survive untouched.
        let r = parse_request(
            "{\"op\":\"batch\",\"id\":\"b\",\"requests\":[\
             {\"model\":\"a\",\"procs\":2,\"seed\":11},\
             {\"model\":\"b\",\"procs\":2,\"seed\":99}]}",
        )
        .unwrap();
        let Request::Batch { items, .. } = r else {
            panic!("expected batch")
        };
        assert_eq!(items[0].1.seed, 11);
        assert_eq!(items[1].1.seed, 99);
    }

    #[test]
    fn malformed_requests_keep_their_id_for_the_error_response() {
        let (id, e) = parse_request("{\"op\":\"warp\",\"id\":\"x9\"}").unwrap_err();
        assert_eq!(id, "x9");
        assert!(e.message.contains("unknown op"), "{e}");
        let (id, _) = parse_request("{\"op\":\"predict\",\"id\":42}").unwrap_err();
        assert_eq!(id, "42");
        let (id, e) = parse_request("not json").unwrap_err();
        assert_eq!(id, "");
        assert!(e.message.contains("bad request JSON"), "{e}");
    }

    #[test]
    fn batch_requires_a_non_empty_request_array() {
        let (_, e) = parse_request("{\"op\":\"batch\",\"id\":\"b\",\"requests\":[]}").unwrap_err();
        assert!(e.message.contains("non-empty"), "{e}");
        let r = parse_request(
            "{\"op\":\"batch\",\"id\":\"b\",\"requests\":[\
             {\"model\":\"a\",\"procs\":2},{\"model\":\"b\",\"procs\":4,\"table\":\"t2\"}]}",
        )
        .unwrap();
        let Request::Batch { items, .. } = r else {
            panic!("expected batch")
        };
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].0, "default");
        assert_eq!(items[1].0, "t2");
    }

    #[test]
    fn responses_are_valid_json_with_escapes_intact() {
        let ok = ok_response("a\"b", "{\"kind\":\"single\"}");
        let v = json::parse(&ok).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("a\"b"));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let err = err_response("r", "input", "bad\nline");
        let v = json::parse(&err).unwrap();
        assert_eq!(v.get("code").and_then(Json::as_str), Some("input"));
        assert_eq!(v.get("error").and_then(Json::as_str), Some("bad\nline"));
    }
}
