//! The serve loop: load tables once, compile once, answer forever.
//!
//! The daemon binds a TCP listener, loads every `--db` table at startup
//! (hashing its canonical serialization once for cache keying), and then
//! answers framed requests from a bounded *concurrent* connection layer:
//! a non-blocking accept loop hands accepted streams to a fixed pool of
//! `--conns` worker threads through a bounded queue. Response payloads
//! stay deterministic anyway — every answer depends only on the request
//! (plus the preloaded tables), never on arrival order or neighbouring
//! connections — so concurrency changes wall-clock, not bytes.
//! Evaluation parallelism composes through [`pevpm::ThreadBudget`]:
//! each connection's replication pool gets the per-connection share of
//! the host, so `conns × reps-pool × eval-threads` never oversubscribes.
//!
//! Degraded operation is deliberate and observable, in four layers:
//!
//! * **deadlines** — every protocol socket carries `--io-timeout-ms`
//!   read/write deadlines. A peer that stalls *between* frames is idle
//!   and quietly evicted (`serve.conn.idle_closed`); one that stalls
//!   *mid-frame* (slowloris) gets a structured `"timeout"` error frame
//!   and a closed socket (`serve.conn.io_timeouts`), distinguished from
//!   clean EOF (`serve.conn.clean_eof`) and truncated frames
//!   (`serve.conn.truncated`);
//! * **admission control** — a semaphore bounds in-flight predictions
//!   (`--inflight`) with a bounded wait queue (`--queue`); past the
//!   high-water mark the server sheds with an `"overloaded"` response
//!   carrying a `retry_after_ms` hint instead of queueing unboundedly
//!   (`serve.inflight` gauge, `serve.shed.total` counter,
//!   `serve.queue_wait_ms` histogram);
//! * **graceful drain** — a `shutdown` request (or an external stop flag,
//!   e.g. SIGTERM via [`Server::run_until`]) stops accepting, lets
//!   in-flight requests finish under the `--drain-ms` deadline, then
//!   force-closes stragglers; the drain outcome lands in the span ring
//!   and the structured request log, and telemetry sinks are flushed;
//! * **crash containment** — the plan layer turns invalid tables and
//!   models into structured errors before any panicking constructor
//!   runs, the replication layer converts worker panics into
//!   `ReplicaPanic` values, and a final `catch_unwind` at the request
//!   boundary converts anything that still escapes into a
//!   `"panic"`-coded response instead of a dead daemon.
//!
//! Every request is traced through a [`crate::telemetry::RequestTimer`]:
//! prediction work records named stage windows (validate → model →
//! compile → eval → render), cache outcomes, and replication shape into
//! the span ring and the latency histograms; control ops (`ping`,
//! `stats`, `shutdown`, unparseable frames) get lightweight ring-only
//! spans. When [`ServeConfig::http_addr`] is set, `run` also starts the
//! HTTP observability sidecar (`/metrics`, `/healthz`, `/spans`).

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use pevpm::replicate::isolated_map_observed;
use pevpm_dist::{io as dist_io, DistTable};
use pevpm_obs::{diag, Registry};

use crate::cache::{fnv1a, ModelCache, TimingCache};
use crate::plan::{self, EvalOutcome, PlanError, PredictRequest};
use crate::proto::{self, FrameRead, Request};
use crate::telemetry::{HttpServer, RequestTimer, Telemetry, DEFAULT_SPAN_CAPACITY};

/// Worker-pool width when [`ServeConfig::conns`] is 0.
pub const DEFAULT_CONNS: usize = 4;

/// Default per-connection read/write deadline in milliseconds.
pub const DEFAULT_IO_TIMEOUT_MS: u64 = 30_000;

/// Default graceful-drain deadline in milliseconds.
pub const DEFAULT_DRAIN_MS: u64 = 2_000;

/// Default `retry_after_ms` hint on `"overloaded"` responses.
pub const DEFAULT_SHED_RETRY_MS: u64 = 100;

/// How long the non-blocking accept loop sleeps between polls (also
/// bounds shutdown-signal latency).
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Accept-error backoff bounds: persistent failures (EMFILE and friends)
/// back off exponentially inside this window instead of spinning hot.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// Pending-connection queue slots per worker; past this the accept loop
/// sheds fresh connections with an unsolicited `"overloaded"` frame.
const PENDING_PER_WORKER: usize = 8;

/// Lock a mutex, recovering the data on poisoning (a poisoned guard here
/// only means another worker panicked mid-update of a counter-like
/// state; the daemon must keep serving).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 asks the OS for a free port.
    pub addr: String,
    /// Benchmark tables to preload, as `(name, path)`.
    pub tables: Vec<(String, PathBuf)>,
    /// Worker threads for batch fan-out and Monte-Carlo replication
    /// (0 = all cores).
    pub threads: usize,
    /// Default intra-evaluation DAG worker count applied to requests that
    /// don't set `eval_threads` themselves (0 = classic serial engine).
    /// Shares the host core budget with `threads`: batch items and
    /// replications get the per-job share, so the fan-out × eval product
    /// never oversubscribes. Predictions are bitwise identical at every
    /// value >= 1.
    pub eval_threads: usize,
    /// Admission control: refuse requests asking for more replications
    /// than this (0 = unlimited).
    pub max_reps: usize,
    /// Admission control: cap every evaluation's directive budget.
    pub max_steps: Option<u64>,
    /// Admission control: cap every evaluation's simulated-seconds budget.
    pub max_virtual_secs: Option<f64>,
    /// Maximum accepted frame payload in bytes.
    pub max_frame: usize,
    /// Bind address for the HTTP observability sidecar (`/metrics`,
    /// `/healthz`, `/spans`); `None` disables it.
    pub http_addr: Option<String>,
    /// Write the structured one-line-JSON request log to this file
    /// instead of stderr.
    pub log_out: Option<PathBuf>,
    /// Only log requests at least this slow, in milliseconds. Setting it
    /// (even to `0.0`) enables the request log.
    pub log_slow_ms: Option<f64>,
    /// How many finished request spans the in-memory ring retains.
    pub span_capacity: usize,
    /// Connection worker-pool width (0 = [`DEFAULT_CONNS`]). Responses
    /// are bitwise identical at every value — concurrency changes
    /// wall-clock, never payloads.
    pub conns: usize,
    /// Per-connection read/write deadline in milliseconds (0 = none).
    /// Bounds both idle occupancy of a worker slot and mid-frame stalls.
    pub io_timeout_ms: u64,
    /// Maximum in-flight predictions (`predict`/`batch` frames being
    /// evaluated); 0 = the worker-pool width.
    pub inflight: usize,
    /// Bounded wait-queue slots past `inflight` before the server sheds
    /// with an `"overloaded"` response; `None` = same as `inflight`.
    pub queue: Option<usize>,
    /// The `retry_after_ms` hint carried on shed responses.
    pub shed_retry_ms: u64,
    /// Graceful-drain deadline in milliseconds: how long `shutdown` (or
    /// an external stop) waits for in-flight requests before
    /// force-closing their connections.
    pub drain_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            tables: Vec::new(),
            threads: 0,
            eval_threads: 0,
            max_reps: 0,
            max_steps: None,
            max_virtual_secs: None,
            max_frame: proto::MAX_FRAME,
            http_addr: None,
            log_out: None,
            log_slow_ms: None,
            span_capacity: DEFAULT_SPAN_CAPACITY,
            conns: 0,
            io_timeout_ms: DEFAULT_IO_TIMEOUT_MS,
            inflight: 0,
            queue: None,
            shed_retry_ms: DEFAULT_SHED_RETRY_MS,
            drain_ms: DEFAULT_DRAIN_MS,
        }
    }
}

/// The in-flight prediction semaphore: `max_inflight` permits plus a
/// bounded wait queue of `max_queue` slots. A request arriving past both
/// is shed immediately — the daemon never queues unboundedly.
struct Gate {
    max_inflight: usize,
    max_queue: usize,
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    inflight: usize,
    waiting: usize,
    /// Set on drain: queued acquirers wake and shed instead of waiting
    /// out work that will never be admitted.
    closed: bool,
}

/// Outcome of asking the gate for a permit.
enum Admission {
    /// Admitted after waiting this long in the queue.
    Admitted { waited: Duration },
    /// Both the in-flight permits and the wait queue are full.
    Shed,
}

impl Gate {
    fn new(max_inflight: usize, max_queue: usize) -> Gate {
        Gate {
            max_inflight: max_inflight.max(1),
            max_queue,
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self) -> Admission {
        let t0 = Instant::now();
        let mut st = lock_recover(&self.state);
        if st.closed {
            return Admission::Shed;
        }
        if st.inflight < self.max_inflight {
            st.inflight += 1;
            return Admission::Admitted {
                waited: Duration::ZERO,
            };
        }
        if st.waiting >= self.max_queue {
            return Admission::Shed;
        }
        st.waiting += 1;
        loop {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            if st.closed {
                st.waiting -= 1;
                return Admission::Shed;
            }
            if st.inflight < self.max_inflight {
                st.waiting -= 1;
                st.inflight += 1;
                return Admission::Admitted {
                    waited: t0.elapsed(),
                };
            }
        }
    }

    /// Drain: wake every queued acquirer and shed it (plus anything that
    /// arrives later), so shutdown never waits on parked requests that
    /// would otherwise be admitted and evaluated long past `--drain-ms`.
    fn close(&self) {
        let mut st = lock_recover(&self.state);
        st.closed = true;
        drop(st);
        self.cv.notify_all();
    }

    /// Re-arm a drained gate; the server outlives a `run` and must
    /// admit again on the next one.
    fn open(&self) {
        lock_recover(&self.state).closed = false;
    }

    fn release(&self) {
        let mut st = lock_recover(&self.state);
        st.inflight = st.inflight.saturating_sub(1);
        drop(st);
        self.cv.notify_one();
    }

    fn inflight(&self) -> usize {
        lock_recover(&self.state).inflight
    }
}

/// RAII permit: releases the gate slot and refreshes the `serve.inflight`
/// gauge even if the request path unwinds.
struct GatePermit<'a> {
    gate: &'a Gate,
    registry: &'a Registry,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        self.gate.release();
        self.registry
            .gauge("serve.inflight")
            .set(self.gate.inflight() as f64);
    }
}

/// The bounded queue of accepted-but-unserved connections between the
/// accept loop and the worker pool.
struct ConnQueue {
    cap: usize,
    state: Mutex<(VecDeque<TcpStream>, bool)>,
    cv: Condvar,
}

impl ConnQueue {
    fn new(cap: usize) -> ConnQueue {
        ConnQueue {
            cap: cap.max(1),
            state: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    /// Enqueue a stream; gives it back when the queue is full or closed
    /// so the caller can shed it.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut st = lock_recover(&self.state);
        if st.1 || st.0.len() >= self.cap {
            return Err(stream);
        }
        st.0.push_back(stream);
        drop(st);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocking pop; `None` once the queue is closed and empty.
    fn pop(&self) -> Option<TcpStream> {
        let mut st = lock_recover(&self.state);
        loop {
            if let Some(s) = st.0.pop_front() {
                return Some(s);
            }
            if st.1 {
                return None;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Close the queue: wakes all workers and drops pending streams.
    fn close(&self) {
        let mut st = lock_recover(&self.state);
        st.1 = true;
        st.0.clear();
        drop(st);
        self.cv.notify_all();
    }
}

/// Live-connection registry: a socket handle plus a busy flag per served
/// connection, so drain can wake idle readers immediately and force-close
/// stragglers after the deadline.
struct ConnTracker {
    next: AtomicU64,
    conns: Mutex<HashMap<u64, ConnEntry>>,
}

struct ConnEntry {
    stream: TcpStream,
    busy: Arc<AtomicBool>,
}

impl ConnTracker {
    fn new() -> ConnTracker {
        ConnTracker {
            next: AtomicU64::new(1),
            conns: Mutex::new(HashMap::new()),
        }
    }

    fn register(&self, stream: &TcpStream) -> io::Result<(u64, Arc<AtomicBool>)> {
        let clone = stream.try_clone()?;
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        let busy = Arc::new(AtomicBool::new(false));
        lock_recover(&self.conns).insert(
            id,
            ConnEntry {
                stream: clone,
                busy: Arc::clone(&busy),
            },
        );
        Ok((id, busy))
    }

    fn unregister(&self, id: u64) {
        lock_recover(&self.conns).remove(&id);
    }

    fn any_busy(&self) -> bool {
        lock_recover(&self.conns)
            .values()
            .any(|c| c.busy.load(Ordering::SeqCst))
    }

    /// Shut down tracked sockets — all of them, or only those whose
    /// worker is parked in a read (not mid-request). Returns how many.
    fn shutdown_conns(&self, include_busy: bool) -> usize {
        let conns = lock_recover(&self.conns);
        let mut n = 0;
        for c in conns.values() {
            if include_busy || !c.busy.load(Ordering::SeqCst) {
                let _ = c.stream.shutdown(Shutdown::Both);
                n += 1;
            }
        }
        n
    }
}

/// RAII unregistration: drops the tracker entry (and its cloned socket
/// handle) on *every* exit from `serve_connection`, including `?` early
/// returns — a peer whose response write fails must not leak an fd and
/// a map entry in a daemon meant to face misbehaving peers forever.
struct TrackerGuard<'a> {
    tracker: &'a ConnTracker,
    id: u64,
}

impl Drop for TrackerGuard<'_> {
    fn drop(&mut self) {
        self.tracker.unregister(self.id);
    }
}

/// Per-`run` shared state between the accept loop and the worker pool.
struct RunShared {
    stop: AtomicBool,
    draining: AtomicBool,
    queue: ConnQueue,
    tracker: ConnTracker,
}

impl RunShared {
    fn new(pending_cap: usize) -> RunShared {
        RunShared {
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            queue: ConnQueue::new(pending_cap),
            tracker: ConnTracker::new(),
        }
    }
}

/// A daemon startup failure.
#[derive(Debug)]
pub struct ServeError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ServeError {}

struct LoadedTable {
    hash: u64,
    table: Arc<DistTable>,
}

/// The prediction daemon: preloaded tables, content-addressed caches, a
/// metrics registry, request telemetry, and a bound listener.
pub struct Server {
    cfg: ServeConfig,
    listener: TcpListener,
    tables: HashMap<String, LoadedTable>,
    models: ModelCache,
    timings: TimingCache,
    registry: Arc<Registry>,
    telemetry: Arc<Telemetry>,
    // Bound at construction (so the sidecar port is known before `run`),
    // taken and spawned by `run`.
    http: Mutex<Option<HttpServer>>,
    gate: Gate,
    // Resolved worker-pool width and the per-request replication-pool
    // share of the host budget (`conns × request_threads` ≤ host cores).
    conns: usize,
    request_threads: usize,
    io_timeout: Option<Duration>,
}

impl Server {
    /// Bind the listener and load every configured table from disk.
    pub fn bind(cfg: ServeConfig) -> Result<Server, ServeError> {
        let mut loaded = Vec::with_capacity(cfg.tables.len());
        for (name, path) in &cfg.tables {
            let table = dist_io::load_table(path).map_err(|e| ServeError {
                message: format!("table {name:?}: {e}"),
            })?;
            loaded.push((name.clone(), table));
        }
        Server::with_tables(cfg, loaded)
    }

    /// Bind the listener around already-loaded tables (tests, embedding).
    pub fn with_tables(
        cfg: ServeConfig,
        tables: Vec<(String, DistTable)>,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| ServeError {
            message: format!("cannot bind {}: {e}", cfg.addr),
        })?;
        let registry = Arc::new(Registry::new());
        let telemetry = Arc::new(
            Telemetry::new(
                Arc::clone(&registry),
                cfg.span_capacity,
                cfg.log_out.as_deref(),
                cfg.log_slow_ms,
            )
            .map_err(|e| ServeError {
                message: format!("cannot open request log: {e}"),
            })?,
        );
        let http = match &cfg.http_addr {
            Some(addr) => {
                Some(
                    HttpServer::bind(addr, Arc::clone(&telemetry)).map_err(|e| ServeError {
                        message: format!("cannot bind http sidecar {addr}: {e}"),
                    })?,
                )
            }
            None => None,
        };
        let models = ModelCache::new(&registry);
        let timings = TimingCache::new(&registry);
        let mut map = HashMap::new();
        for (name, table) in tables {
            let hash = fnv1a(dist_io::write_table(&table).as_bytes());
            if map
                .insert(
                    name.clone(),
                    LoadedTable {
                        hash,
                        table: Arc::new(table),
                    },
                )
                .is_some()
            {
                return Err(ServeError {
                    message: format!("duplicate table name {name:?}"),
                });
            }
        }
        let conns = if cfg.conns == 0 {
            DEFAULT_CONNS
        } else {
            cfg.conns
        };
        // Each concurrently-served request gets the per-connection share
        // of the host budget for its replication pool, so the product
        // `conns × reps-pool × eval-threads` never oversubscribes. With a
        // single worker the serial behavior (and `cfg.threads`) is kept
        // verbatim.
        let request_threads = if conns <= 1 {
            cfg.threads
        } else {
            let budget = pevpm::ThreadBudget::new(cfg.threads);
            budget.inner(conns, budget.total()).max(1)
        };
        let max_inflight = if cfg.inflight == 0 {
            conns
        } else {
            cfg.inflight
        };
        let max_queue = cfg.queue.unwrap_or(max_inflight);
        let io_timeout = if cfg.io_timeout_ms == 0 {
            None
        } else {
            Some(Duration::from_millis(cfg.io_timeout_ms))
        };
        let gate = Gate::new(max_inflight, max_queue);
        registry.gauge("serve.inflight").set(0.0);
        Ok(Server {
            cfg,
            listener,
            tables: map,
            models,
            timings,
            registry,
            telemetry,
            http: Mutex::new(http),
            gate,
            conns,
            request_threads,
            io_timeout,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The HTTP sidecar's bound address, when one is configured and not
    /// yet consumed by `run`.
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http
            .lock()
            .ok()
            .and_then(|g| g.as_ref().and_then(|s| s.local_addr().ok()))
    }

    /// The daemon's metrics registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The daemon's telemetry hub (span ring, stats, sidecar routes).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Accept and serve connections until a `shutdown` request arrives.
    /// Equivalent to [`Server::run_until`] with a flag nobody sets.
    pub fn run(&self) -> io::Result<()> {
        self.run_until(&AtomicBool::new(false))
    }

    /// Accept and serve connections until a `shutdown` request arrives
    /// or `external_stop` becomes true (e.g. from a SIGTERM handler).
    /// Accepted streams are fanned to a fixed pool of `--conns` worker
    /// threads; on stop the daemon drains gracefully (in-flight requests
    /// finish under `--drain-ms`, then stragglers are force-closed) and
    /// flushes telemetry sinks. The HTTP
    /// sidecar (if configured) runs on its own thread for the duration
    /// and stops when this returns.
    pub fn run_until(&self, external_stop: &AtomicBool) -> io::Result<()> {
        let http = match self.http.lock() {
            Ok(mut guard) => guard.take(),
            Err(_) => {
                // A poisoned lock only means some earlier reader panicked
                // while holding it; losing the observability plane
                // silently would be worse than serving with it.
                self.registry.counter("serve.sidecar_lost").inc();
                diag::warn(
                    "pevpm serve: http sidecar state poisoned; \
                     observability sidecar NOT started",
                );
                None
            }
        };
        let _http_handle = match http {
            Some(server) => {
                let addr = server.local_addr()?;
                let handle = server.spawn()?;
                diag::info(&format!("pevpm serve: observability http on {addr}"));
                Some(handle)
            }
            None => None,
        };
        diag::info(&format!(
            "pevpm serve: listening on {} ({} table(s) loaded, {} conn worker(s))",
            self.local_addr()?,
            self.tables.len(),
            self.conns,
        ));
        // Non-blocking accept + poll: the same loop notices queue
        // pressure, shutdown frames, and the external stop flag within
        // ACCEPT_POLL without platform-specific readiness APIs.
        self.listener.set_nonblocking(true)?;
        // A previous run's drain closed the gate; re-arm it.
        self.gate.open();
        let shared = RunShared::new(self.conns * PENDING_PER_WORKER);
        std::thread::scope(|scope| {
            for i in 0..self.conns {
                let shared = &shared;
                std::thread::Builder::new()
                    .name(format!("serve-conn-{i}"))
                    .spawn_scoped(scope, move || self.worker_loop(shared))
                    .map_err(|e| {
                        // Wake the workers already spawned; without this
                        // they stay parked in queue.pop() and the scope
                        // deadlocks joining them instead of surfacing
                        // the spawn error.
                        shared.stop.store(true, Ordering::SeqCst);
                        shared.queue.close();
                        io::Error::other(format!("cannot spawn connection worker: {e}"))
                    })?;
            }
            let mut backoff = ACCEPT_BACKOFF_MIN;
            while !shared.stop.load(Ordering::SeqCst) && !external_stop.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        backoff = ACCEPT_BACKOFF_MIN;
                        self.registry.counter("serve.conn.accepted").inc();
                        if let Err(stream) = shared.queue.push(stream) {
                            self.shed_connection(stream);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(ACCEPT_POLL);
                    }
                    Err(e) => {
                        // Persistent accept failures (EMFILE and friends)
                        // must not spin hot: bounded exponential backoff.
                        self.registry.counter("serve.accept_errors").inc();
                        diag::warn(&format!(
                            "pevpm serve: accept failed: {e} (backing off {backoff:?})"
                        ));
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    }
                }
            }
            self.drain(&shared);
            Ok::<(), io::Error>(())
        })?;
        self.telemetry.flush();
        diag::info("pevpm serve: shut down");
        Ok(())
    }

    /// Stop accepting, then give in-flight requests `--drain-ms` to
    /// finish before force-closing their sockets. Idle readers are woken
    /// (socket shutdown) immediately so their workers can exit.
    fn drain(&self, shared: &RunShared) {
        let timer = self.telemetry.begin("drain", false);
        shared.draining.store(true, Ordering::SeqCst);
        shared.queue.close();
        // Requests parked in the admission queue are not in flight —
        // shed them now so their workers exit under the deadline instead
        // of evaluating into force-closed sockets long past it.
        self.gate.close();
        shared.tracker.shutdown_conns(false);
        let deadline = Instant::now() + Duration::from_millis(self.cfg.drain_ms);
        while shared.tracker.any_busy() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let outcome = if shared.tracker.any_busy() {
            self.registry.counter("serve.drain.forced").inc();
            "forced"
        } else {
            "clean"
        };
        let closed = shared.tracker.shutdown_conns(true);
        diag::info(&format!(
            "pevpm serve: drain {outcome} within {} ms ({closed} connection(s) closed)",
            self.cfg.drain_ms
        ));
        timer.finish(outcome, 0);
    }

    /// The accept loop's overflow path: tell the peer the daemon is at
    /// capacity (best effort, short write deadline) and close.
    fn shed_connection(&self, stream: TcpStream) {
        self.registry.counter("serve.conn.shed").inc();
        self.registry.counter("serve.shed.total").inc();
        // Accepted sockets can inherit the listener's O_NONBLOCK on
        // BSD-derived platforms; the shed frame needs a blocking write
        // bounded by the short deadline below.
        let _ = stream.set_nonblocking(false);
        let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
        let mut writer = BufWriter::new(stream);
        let _ = proto::write_frame(
            &mut writer,
            &proto::overloaded_response("", self.cfg.shed_retry_ms),
        );
    }

    /// One worker: pop accepted streams and serve each until it closes.
    fn worker_loop(&self, shared: &RunShared) {
        while let Some(stream) = shared.queue.pop() {
            match self.serve_connection(stream, shared) {
                Ok(true) => {
                    shared.stop.store(true, Ordering::SeqCst);
                    return;
                }
                Ok(false) => {}
                Err(e) => {
                    self.registry.counter("serve.conn.errors").inc();
                    diag::warn(&format!("pevpm serve: connection error: {e}"));
                }
            }
        }
    }

    /// Serve one connection until the peer closes it, it times out, or
    /// drain begins. Returns `Ok(true)` when the peer asked the daemon to
    /// shut down. Disconnect classes are kept distinct: clean EOF between
    /// frames (`serve.conn.clean_eof`), idle deadline between frames
    /// (`serve.conn.idle_closed`), mid-frame stall (`serve.conn.io_timeouts`
    /// plus a `"timeout"` error frame), mid-frame EOF
    /// (`serve.conn.truncated`), and malformed framing
    /// (`serve.conn.bad_frames` plus a `"usage"` error frame).
    fn serve_connection(&self, stream: TcpStream, shared: &RunShared) -> io::Result<bool> {
        // The listener is non-blocking and BSD-derived platforms make
        // accepted sockets inherit O_NONBLOCK; left set, the first read
        // would return EAGAIN instantly and be misclassified as an idle
        // deadline. Restore blocking mode before arming real deadlines.
        stream.set_nonblocking(false)?;
        // Responses are written whole; Nagle + delayed ACK would stall
        // multi-segment response frames ~40 ms.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.io_timeout)?;
        stream.set_write_timeout(self.io_timeout)?;
        let (conn_id, busy) = shared.tracker.register(&stream)?;
        let _unregister = TrackerGuard {
            tracker: &shared.tracker,
            id: conn_id,
        };
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        loop {
            if shared.draining.load(Ordering::SeqCst) {
                break Ok(false);
            }
            match proto::read_frame_deadline(&mut reader, self.cfg.max_frame) {
                Ok(FrameRead::Frame(frame)) => {
                    busy.store(true, Ordering::SeqCst);
                    // handle_frame already isolates prediction panics; a
                    // second net here keeps even a control-path panic from
                    // taking the worker thread (and its slot) down.
                    let handled = catch_unwind(AssertUnwindSafe(|| self.handle_frame(&frame)));
                    busy.store(false, Ordering::SeqCst);
                    let (response, shutdown) = handled.unwrap_or_else(|_| {
                        self.registry.counter("serve.panics_isolated").inc();
                        (
                            proto::err_response("", "panic", "request handler panicked"),
                            false,
                        )
                    });
                    proto::write_frame(&mut writer, &response)?;
                    if shutdown {
                        break Ok(true);
                    }
                }
                Ok(FrameRead::CleanEof) => {
                    self.registry.counter("serve.conn.clean_eof").inc();
                    break Ok(false);
                }
                Ok(FrameRead::IdleTimeout) => {
                    // Quiet eviction: the peer simply went silent between
                    // frames; closing reclaims the worker slot.
                    self.registry.counter("serve.conn.idle_closed").inc();
                    break Ok(false);
                }
                Err(e) if proto::is_timeout(&e) => {
                    // Slowloris: stalled *inside* a frame. Tell the peer
                    // (best effort — it may be gone) and close.
                    self.registry.counter("serve.conn.io_timeouts").inc();
                    let _ = proto::write_frame(
                        &mut writer,
                        &proto::err_response("", "timeout", &e.to_string()),
                    );
                    break Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                    self.registry.counter("serve.conn.truncated").inc();
                    break Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    // Oversized frame or invalid UTF-8: structured usage
                    // error, then close (framing is unrecoverable).
                    self.registry.counter("serve.conn.bad_frames").inc();
                    let _ = proto::write_frame(
                        &mut writer,
                        &proto::err_response("", "usage", &e.to_string()),
                    );
                    break Ok(false);
                }
                Err(e) => break Err(e),
            }
        }
    }

    /// Answer one request frame. The second element is true when the
    /// daemon should stop accepting after this response.
    pub fn handle_frame(&self, frame: &str) -> (String, bool) {
        self.registry.counter("serve.requests").inc();
        let request = match proto::parse_request(frame) {
            Ok(r) => r,
            Err((id, e)) => {
                let timer = self.telemetry.begin("invalid", false);
                let resp = proto::err_response(&id, e.kind.code(), &e.message);
                timer.finish(e.kind.code(), resp.len());
                return (resp, false);
            }
        };
        match request {
            Request::Ping { id } => {
                let timer = self.telemetry.begin("ping", false);
                let resp = proto::ok_response(&id, "{\"kind\":\"pong\"}");
                timer.finish("ok", resp.len());
                (resp, false)
            }
            Request::Stats { id } => {
                let timer = self.telemetry.begin("stats", false);
                let resp = proto::ok_response(&id, &self.telemetry.stats_json());
                timer.finish("ok", resp.len());
                (resp, false)
            }
            Request::Shutdown { id } => {
                let timer = self.telemetry.begin("shutdown", false);
                let resp = proto::ok_response(&id, "{\"kind\":\"shutdown\"}");
                timer.finish("ok", resp.len());
                (resp, true)
            }
            Request::Predict { id, table, req } => {
                let permit = match self.admit_inflight(&id) {
                    Ok(p) => p,
                    Err(shed) => return (shed, false),
                };
                let mut timer = self.telemetry.begin("predict", true);
                let (resp, outcome) =
                    match self.predict_guarded(&table, &req, self.request_threads, &mut timer) {
                        Ok(result) => (proto::ok_response(&id, &result), "ok"),
                        Err(e) => (
                            proto::err_response(&id, e.kind_code(), &e.message()),
                            e.kind_code(),
                        ),
                    };
                timer.finish(outcome, resp.len());
                drop(permit);
                (resp, false)
            }
            Request::Batch { id, items } => {
                let permit = match self.admit_inflight(&id) {
                    Ok(p) => p,
                    Err(shed) => return (shed, false),
                };
                let resp = self.handle_batch(&id, &items);
                drop(permit);
                (resp, false)
            }
        }
    }

    /// Take an in-flight permit for a prediction-carrying frame, or shed.
    /// Control ops (`ping`, `stats`, `shutdown`) bypass the gate — they
    /// must stay answerable while the daemon is saturated. On admission
    /// the queue wait lands in `serve.queue_wait_ms` and the
    /// `serve.inflight` gauge is refreshed; on shed the frame gets an
    /// `"overloaded"` response carrying the `retry_after_ms` hint, which
    /// is always safe for the peer to act on (the request never started).
    fn admit_inflight(&self, id: &str) -> Result<GatePermit<'_>, String> {
        match self.gate.acquire() {
            Admission::Admitted { waited } => {
                self.registry
                    .histogram("serve.queue_wait_ms", 0.0, 250.0, 50)
                    .record(waited.as_secs_f64() * 1e3);
                self.registry
                    .gauge("serve.inflight")
                    .set(self.gate.inflight() as f64);
                Ok(GatePermit {
                    gate: &self.gate,
                    registry: &self.registry,
                })
            }
            Admission::Shed => {
                self.registry.counter("serve.shed.total").inc();
                let timer = self.telemetry.begin("shed", false);
                let resp = proto::overloaded_response(id, self.cfg.shed_retry_ms);
                timer.finish("overloaded", resp.len());
                Err(resp)
            }
        }
    }

    fn handle_batch(&self, id: &str, items: &[(String, PredictRequest)]) -> String {
        // Fan the batch across the replication pool. Each item evaluates
        // single-threaded inside its slot; replication results are
        // bitwise invariant to thread count, so this cannot change any
        // answer — only the wall-clock. The frame itself gets an
        // unmetered span (fanout/collect stages, failed-item count); each
        // item gets its own metered span, so stage histogram counts still
        // equal the number of predictions served.
        let mut frame_timer = self.telemetry.begin("batch", false);
        let pool_job_ms = self.registry.histogram("serve.pool.job_ms", 0.0, 250.0, 50);
        // Each concurrent item gets the per-slot share of the host budget
        // for its DAG scheduler — `pool width × eval-threads` stays within
        // the budget, and capping cannot change an answer.
        let budget = pevpm::ThreadBudget::from_host();
        let pool_width = budget.outer(self.request_threads, items.len());
        let (slots, _profile) = frame_timer.stage("fanout", || {
            isolated_map_observed(
                items.len(),
                self.request_threads,
                |i| {
                    let (table, req) = &items[i];
                    let mut item_timer = self.telemetry.begin("batch-item", true);
                    let mut req = req.clone();
                    req.threads = 1;
                    let requested_eval = if req.eval_threads == 0 {
                        self.cfg.eval_threads
                    } else {
                        req.eval_threads
                    };
                    req.eval_threads = budget.inner(pool_width, requested_eval);
                    match self.predict_guarded(table, &req, 1, &mut item_timer) {
                        Ok(result) => {
                            item_timer.finish("ok", result.len());
                            Ok(result)
                        }
                        Err(e) => {
                            let code = e.kind_code();
                            item_timer.finish(code, 0);
                            Err((code.to_string(), e.message()))
                        }
                    }
                },
                |_i, secs| pool_job_ms.record(secs * 1e3),
            )
        });
        let (resp, failed) = frame_timer.stage("collect", || {
            let rendered: Vec<Result<String, (String, String)>> = slots
                .into_iter()
                .map(|slot| match slot {
                    Ok(result) => Ok(result),
                    Err(pevpm::replicate::JobError::Err((code, msg))) => Err((code, msg)),
                    // isolated_map already caught the panic; report it as
                    // a per-item failure, daemon intact.
                    Err(pevpm::replicate::JobError::Panic(p)) => {
                        self.registry.counter("serve.panics_isolated").inc();
                        Err(("panic".to_string(), p.to_string()))
                    }
                })
                .collect();
            let failed = rendered.iter().filter(|r| r.is_err()).count();
            (
                proto::ok_response(id, &proto::render_batch(&rendered)),
                failed,
            )
        });
        frame_timer.set_reps(items.len());
        frame_timer.set_replica_failures(failed);
        let bytes = resp.len();
        frame_timer.finish(if failed == 0 { "ok" } else { "partial" }, bytes);
        resp
    }

    /// One prediction with the request boundary hardened: any panic that
    /// escapes the plan layer and the replication pool becomes a
    /// `RequestError::Panic`, never a daemon crash. The timer outlives
    /// the `catch_unwind`, so even a panicking request leaves a span
    /// (flagged `panicked`, minus the stage that blew up).
    fn predict_guarded(
        &self,
        table: &str,
        req: &PredictRequest,
        threads: usize,
        timer: &mut RequestTimer<'_>,
    ) -> Result<String, RequestError> {
        match catch_unwind(AssertUnwindSafe(|| {
            self.predict(table, req, threads, timer)
        })) {
            Ok(r) => r.map_err(RequestError::Plan),
            Err(payload) => {
                self.registry.counter("serve.panics_isolated").inc();
                timer.set_panicked();
                let what = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                Err(RequestError::Panic(format!("request panicked: {what}")))
            }
        }
    }

    /// Admission control: refuse work the daemon is configured not to
    /// carry, before any compilation or evaluation happens.
    fn admit(&self, req: &PredictRequest) -> Result<(), PlanError> {
        if self.cfg.max_reps > 0 && req.reps > self.cfg.max_reps {
            self.registry.counter("serve.rejected_admission").inc();
            return Err(PlanError::budget(format!(
                "admission: {} replications exceed the server limit of {}",
                req.reps, self.cfg.max_reps
            )));
        }
        Ok(())
    }

    /// The cached-plan prediction path shared by `predict` and `batch`.
    /// Each pipeline step runs as a named timer stage.
    fn predict(
        &self,
        table_name: &str,
        req: &PredictRequest,
        threads: usize,
        timer: &mut RequestTimer<'_>,
    ) -> Result<String, PlanError> {
        timer.set_reps(req.reps);
        timer.set_quorum(req.quorum.is_some());
        let (loaded, mode) = timer.stage("validate", || {
            self.admit(req)?;
            let loaded = self.tables.get(table_name).ok_or_else(|| {
                let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
                names.sort_unstable();
                PlanError::usage(format!(
                    "unknown table {table_name:?} (loaded: {})",
                    if names.is_empty() {
                        "none".to_string()
                    } else {
                        names.join(", ")
                    }
                ))
            })?;
            let mode = req.prediction_mode()?;
            Ok::<_, PlanError>((loaded, mode))
        })?;
        let (model, model_hit) = timer.stage("model", || {
            self.models.get_or_parse(&req.model_src, "request model")
        })?;
        timer.cache("model", model_hit);
        let (timing, table_hit) = timer.stage("compile", || {
            self.timings.get_or_build(
                loaded.hash,
                &loaded.table,
                mode,
                req.pingpong,
                req.compile_options(),
            )
        })?;
        timer.cache("table", table_hit);
        let outcome = timer.stage("eval", || {
            // The server's budget caps tighten whatever the request asked
            // for; a request axis the server also caps takes the minimum.
            let mut req = req.clone();
            req.threads = threads;
            // The daemon default applies when the request doesn't choose;
            // replication nesting is budgeted inside `monte_carlo`.
            if req.eval_threads == 0 {
                req.eval_threads = self.cfg.eval_threads;
            }
            if let Some(cap) = self.cfg.max_steps {
                req.max_steps = Some(req.max_steps.map_or(cap, |n| n.min(cap)));
            }
            if let Some(cap) = self.cfg.max_virtual_secs {
                req.max_virtual_secs = Some(req.max_virtual_secs.map_or(cap, |s| s.min(cap)));
            }
            // Adaptive replication ceiling tightens like the budget axes:
            // a precision request may not run more replications than the
            // daemon's `--max-reps` cap, whatever ceiling it asked for.
            if self.cfg.max_reps > 0 && req.precision.is_some() {
                let cap = self.cfg.max_reps;
                req.max_reps = Some(req.max_reps.map_or(cap, |n| n.min(cap)));
            }
            // Engine and DAG-scheduler metrics (vm.*, dag.*) land in the
            // daemon registry, surfacing through `stats` and /metrics.
            let cfg = req
                .eval_config()?
                .with_metrics(Arc::clone(self.telemetry.registry()));
            plan::evaluate_plan(&model, &cfg, &timing, req.effective_reps())
        })?;
        if let EvalOutcome::Batch(mc) = &outcome {
            timer.set_replica_failures(mc.failures.len());
            if let Some(a) = &mc.adaptive {
                timer.set_reps(a.reps);
                timer.set_reps_saved(a.reps_saved());
                self.registry
                    .counter("serve.reps.saved")
                    .add(a.reps_saved() as u64);
                self.registry
                    .histogram(
                        "serve.reps.chosen",
                        crate::telemetry::REPS_CHOSEN_BINS.0,
                        crate::telemetry::REPS_CHOSEN_BINS.1,
                        crate::telemetry::REPS_CHOSEN_BINS.2,
                    )
                    .record(a.reps as f64);
            }
        }
        Ok(timer.stage("render", || proto::render_outcome(&outcome)))
    }
}

/// A request failure: a classified plan error or an isolated panic.
enum RequestError {
    Plan(PlanError),
    Panic(String),
}

impl RequestError {
    fn kind_code(&self) -> &'static str {
        match self {
            RequestError::Plan(e) => e.kind.code(),
            RequestError::Panic(_) => "panic",
        }
    }

    fn message(&self) -> String {
        match self {
            RequestError::Plan(e) => e.message.clone(),
            RequestError::Panic(m) => m.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pevpm_obs::json::{self, Json};

    const SRC: &str = "\
// PEVPM Loop iterations = rounds
// PEVPM {
// PEVPM Runon c1 = procnum == 0
// PEVPM &     c2 = procnum == 1
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM }
";

    fn test_table() -> DistTable {
        let mut t = DistTable::new();
        let mut h = pevpm_dist::Histogram::new(0.0, 1e-6);
        for i in 0..64 {
            h.add(1e-6 * f64::from(i % 11));
        }
        for op in [pevpm_dist::Op::Send, pevpm_dist::Op::Recv] {
            for size in [512u64, 1024, 2048] {
                for contention in [1u32, 2] {
                    t.insert(
                        pevpm_dist::DistKey {
                            op,
                            size,
                            contention,
                        },
                        pevpm_dist::CommDist::Hist(h.clone()),
                    );
                }
            }
        }
        t
    }

    fn test_server() -> Server {
        Server::with_tables(
            ServeConfig::default(),
            vec![("default".to_string(), test_table())],
        )
        .unwrap()
    }

    fn predict_frame(reps: usize) -> String {
        format!(
            "{{\"op\":\"predict\",\"id\":\"p\",\"model\":\"{}\",\"procs\":2,\
             \"params\":{{\"rounds\":20}},\"reps\":{reps},\"seed\":3}}",
            pevpm_obs::json::escape(SRC)
        )
    }

    #[test]
    fn predict_answers_and_caches_compile_exactly_once() {
        let s = test_server();
        let (r1, stop) = s.handle_frame(&predict_frame(1));
        assert!(!stop);
        let v = json::parse(&r1).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{r1}");
        let makespan = v
            .get("result")
            .and_then(|r| r.get("makespan"))
            .and_then(Json::as_num)
            .unwrap();
        assert!(makespan > 0.0);
        // 99 more identical requests: same bytes back, zero new compiles.
        for _ in 0..99 {
            let (r, _) = s.handle_frame(&predict_frame(1));
            assert_eq!(r, r1);
        }
        assert_eq!(s.registry().counter("serve.table_compiles").get(), 1);
        assert_eq!(s.registry().counter("serve.model_compiles").get(), 1);
        assert_eq!(s.registry().counter("serve.model_cache_hits").get(), 99);
    }

    #[test]
    fn predictions_leave_spans_with_every_stage_and_cache_outcome() {
        let s = test_server();
        s.handle_frame(&predict_frame(1));
        s.handle_frame(&predict_frame(1));
        let spans = s.telemetry().ring().last(10);
        assert_eq!(spans.len(), 2);
        let names: Vec<&str> = spans[1].stages.iter().map(|st| st.name.as_str()).collect();
        assert_eq!(names, crate::telemetry::STAGES);
        // First request misses both caches, second hits both.
        assert_eq!(
            spans[0].caches,
            vec![("model".to_string(), false), ("table".to_string(), false)]
        );
        assert_eq!(
            spans[1].caches,
            vec![("model".to_string(), true), ("table".to_string(), true)]
        );
        assert_eq!(spans[1].outcome, "ok");
        assert!(spans[1].response_bytes > 0);
        assert_eq!(s.registry().counter("serve.requests.total").get(), 2);
    }

    #[test]
    fn batch_answers_match_one_at_a_time_answers_bitwise() {
        let s = test_server();
        let (single, _) = s.handle_frame(&predict_frame(4));
        let sv = json::parse(&single).unwrap();
        let sresult = sv.get("result").unwrap();
        let body = format!(
            "{{\"model\":\"{}\",\"procs\":2,\"params\":{{\"rounds\":20}},\"reps\":4,\"seed\":3}}",
            pevpm_obs::json::escape(SRC)
        );
        let frame =
            format!("{{\"op\":\"batch\",\"id\":\"b\",\"requests\":[{body},{body},{body}]}}");
        let (resp, _) = s.handle_frame(&frame);
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        let items = v.get("result").and_then(Json::as_array).unwrap();
        assert_eq!(items.len(), 3);
        for item in items {
            assert_eq!(item.get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(item.get("result").unwrap(), sresult);
        }
        // 1 metered predict + 3 metered batch items; the frame span is
        // unmetered but lands in the ring.
        assert_eq!(s.registry().counter("serve.requests.total").get(), 4);
        let batch_span = s
            .telemetry()
            .ring()
            .last(10)
            .into_iter()
            .find(|sp| sp.op == "batch")
            .expect("batch frame span recorded");
        let stage_names: Vec<&str> = batch_span
            .stages
            .iter()
            .map(|st| st.name.as_str())
            .collect();
        assert_eq!(stage_names, ["fanout", "collect"]);
        assert_eq!(batch_span.replica_failures, 0);
    }

    #[test]
    fn errors_are_classified_and_never_kill_the_daemon() {
        let s = test_server();
        // Unknown table.
        let (r, _) = s.handle_frame(
            "{\"op\":\"predict\",\"id\":\"x\",\"model\":\"m\",\"procs\":2,\"table\":\"nope\"}",
        );
        let v = json::parse(&r).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("usage"));
        // Unparseable model: input.
        let (r, _) = s.handle_frame(
            "{\"op\":\"predict\",\"id\":\"x\",\"model\":\"// PEVPM Loop iterations =\",\"procs\":2}",
        );
        assert_eq!(
            json::parse(&r).unwrap().get("code").and_then(Json::as_str),
            Some("input")
        );
        // Garbage frame: usage, id preserved where possible.
        let (r, _) = s.handle_frame("{\"op\":\"predict\",\"id\":\"q\"}");
        let v = json::parse(&r).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("q"));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("usage"));
        // The daemon still answers afterwards.
        let (r, _) = s.handle_frame("{\"op\":\"ping\",\"id\":\"alive\"}");
        assert!(json::parse(&r).unwrap().get("ok").and_then(Json::as_bool) == Some(true));
        // Every failure above still left a span with its exit class.
        let outcomes: Vec<String> = s
            .telemetry()
            .ring()
            .last(10)
            .into_iter()
            .map(|sp| sp.outcome)
            .collect();
        assert_eq!(outcomes, ["usage", "input", "usage", "ok"]);
    }

    #[test]
    fn admission_control_rejects_oversized_requests_up_front() {
        let cfg = ServeConfig {
            max_reps: 4,
            ..ServeConfig::default()
        };
        let s = Server::with_tables(cfg, vec![("default".to_string(), test_table())]).unwrap();
        let (r, _) = s.handle_frame(&predict_frame(5));
        let v = json::parse(&r).unwrap();
        assert_eq!(v.get("code").and_then(Json::as_str), Some("budget"), "{r}");
        assert_eq!(s.registry().counter("serve.rejected_admission").get(), 1);
        // No compilation was wasted on the rejected request.
        assert_eq!(s.registry().counter("serve.table_compiles").get(), 0);
        let (r, _) = s.handle_frame(&predict_frame(4));
        assert_eq!(
            json::parse(&r).unwrap().get("ok").and_then(Json::as_bool),
            Some(true),
            "{r}"
        );
    }

    #[test]
    fn server_budget_caps_tighten_requests() {
        let cfg = ServeConfig {
            max_steps: Some(3),
            ..ServeConfig::default()
        };
        let s = Server::with_tables(cfg, vec![("default".to_string(), test_table())]).unwrap();
        let (r, _) = s.handle_frame(&predict_frame(1));
        let v = json::parse(&r).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{r}");
        assert_eq!(v.get("code").and_then(Json::as_str), Some("budget"), "{r}");
    }

    #[test]
    fn stats_exposes_the_cache_counters() {
        let s = test_server();
        s.handle_frame(&predict_frame(1));
        s.handle_frame(&predict_frame(1));
        let (r, _) = s.handle_frame("{\"op\":\"stats\",\"id\":\"s\"}");
        let v = json::parse(&r).unwrap();
        let counters = v
            .get("result")
            .and_then(|r| r.get("counters"))
            .and_then(Json::as_object)
            .unwrap();
        assert_eq!(
            counters.get("serve.table_compiles").and_then(Json::as_num),
            Some(1.0)
        );
        assert_eq!(
            counters.get("serve.requests").and_then(Json::as_num),
            Some(3.0)
        );
        // The span-derived extensions ride along in the same document.
        let result = v.get("result").unwrap();
        assert!(result
            .get("uptime_secs")
            .and_then(Json::as_num)
            .is_some_and(|u| u >= 0.0));
        assert!(result
            .get("started")
            .and_then(Json::as_str)
            .is_some_and(|s| s.ends_with('Z')));
        let validate = result
            .get("stages")
            .and_then(|st| st.get("validate"))
            .unwrap();
        assert_eq!(validate.get("count").and_then(Json::as_num), Some(2.0));
    }

    #[test]
    fn shutdown_frame_flags_the_loop_to_stop() {
        let s = test_server();
        let (r, stop) = s.handle_frame("{\"op\":\"shutdown\",\"id\":\"z\"}");
        assert!(stop);
        assert!(r.contains("\"ok\":true"));
    }

    #[test]
    fn gate_admits_queues_and_sheds_in_order() {
        let gate = Gate::new(1, 1);
        assert!(matches!(gate.acquire(), Admission::Admitted { .. }));
        assert_eq!(gate.inflight(), 1);
        // Second acquirer queues; third (queue full) would shed. Exercise
        // the queue with a real waiter to prove release wakes it.
        let waited = std::thread::scope(|scope| {
            let waiter = scope.spawn(|| match gate.acquire() {
                Admission::Admitted { waited } => waited,
                Admission::Shed => panic!("queued acquirer was shed"),
            });
            // Wait until the waiter is parked in the queue.
            while lock_recover(&gate.state).waiting == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            assert!(matches!(gate.acquire(), Admission::Shed));
            gate.release();
            waiter.join().unwrap()
        });
        assert!(waited >= Duration::ZERO);
        assert_eq!(gate.inflight(), 1);
        gate.release();
        assert_eq!(gate.inflight(), 0);
    }

    #[test]
    fn drained_gate_sheds_queued_waiters_immediately() {
        let gate = Gate::new(1, 4);
        assert!(matches!(gate.acquire(), Admission::Admitted { .. }));
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| gate.acquire());
            while lock_recover(&gate.state).waiting == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
            // Drain: the parked waiter wakes and sheds without waiting
            // for the permit to free; later arrivals shed up front.
            gate.close();
            assert!(matches!(waiter.join().unwrap(), Admission::Shed));
            assert!(matches!(gate.acquire(), Admission::Shed));
        });
        assert_eq!(lock_recover(&gate.state).waiting, 0);
        // Re-arming restores admission for the next run.
        gate.release();
        gate.open();
        assert!(matches!(gate.acquire(), Admission::Admitted { .. }));
    }

    #[test]
    fn saturated_gate_sheds_predictions_with_a_retry_hint() {
        let cfg = ServeConfig {
            inflight: 1,
            queue: Some(0),
            shed_retry_ms: 70,
            ..ServeConfig::default()
        };
        let s = Server::with_tables(cfg, vec![("default".to_string(), test_table())]).unwrap();
        // Occupy the single permit directly; with zero queue slots the
        // next prediction frame must shed rather than wait.
        assert!(matches!(s.gate.acquire(), Admission::Admitted { .. }));
        let (r, stop) = s.handle_frame(&predict_frame(1));
        assert!(!stop);
        let v = json::parse(&r).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{r}");
        assert_eq!(v.get("code").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(v.get("retry_after_ms").and_then(Json::as_num), Some(70.0));
        assert_eq!(s.registry().counter("serve.shed.total").get(), 1);
        // Control ops bypass the gate even while saturated.
        let (r, _) = s.handle_frame("{\"op\":\"ping\",\"id\":\"alive\"}");
        assert!(r.contains("\"ok\":true"));
        // Releasing the permit restores service.
        s.gate.release();
        let (r, _) = s.handle_frame(&predict_frame(1));
        assert!(r.contains("\"ok\":true"), "{r}");
        // The shed left an "overloaded" span in the ring.
        assert!(s
            .telemetry()
            .ring()
            .last(10)
            .iter()
            .any(|sp| sp.op == "shed" && sp.outcome == "overloaded"));
    }

    #[test]
    fn conn_queue_bounds_and_closes() {
        let q = ConnQueue::new(1);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let c1 = TcpStream::connect(addr).unwrap();
        let c2 = TcpStream::connect(addr).unwrap();
        assert!(q.push(c1).is_ok());
        // Full: the stream comes back for shedding.
        assert!(q.push(c2).is_err());
        assert!(q.pop().is_some());
        q.close();
        assert!(q.pop().is_none());
        let c3 = TcpStream::connect(addr).unwrap();
        assert!(q.push(c3).is_err(), "closed queue accepts nothing");
    }

    #[test]
    fn thread_budget_composes_with_the_conn_pool() {
        let cfg = ServeConfig {
            conns: 4,
            threads: 8,
            ..ServeConfig::default()
        };
        let s = Server::with_tables(cfg, vec![("default".to_string(), test_table())]).unwrap();
        assert_eq!(s.conns, 4);
        // 4 workers × request_threads ≤ the 8-core budget.
        assert!(s.request_threads >= 1);
        assert!(s.conns * s.request_threads <= 8);
        // Serial config keeps the classic behavior verbatim.
        let serial = Server::with_tables(
            ServeConfig {
                conns: 1,
                threads: 8,
                ..ServeConfig::default()
            },
            vec![("default".to_string(), test_table())],
        )
        .unwrap();
        assert_eq!(serial.request_threads, 8);
    }
}
