//! The serve loop: load tables once, compile once, answer forever.
//!
//! The daemon binds a TCP listener, loads every `--db` table at startup
//! (hashing its canonical serialization once for cache keying), and then
//! answers framed requests from a *serial* accept loop — connections are
//! handled one at a time, in arrival order, which keeps the daemon's
//! observable behaviour deterministic. Parallelism lives where it always
//! has in this workspace: inside the replication pool. `batch` requests
//! fan their items across the server's worker threads via
//! [`pevpm::replicate::isolated_map_observed`] (each item forced to
//! single-threaded evaluation, which is bitwise-equivalent by the
//! replication layer's thread-count invariance), and Monte-Carlo
//! `predict` requests use the pool directly.
//!
//! Crash containment is layered: the plan layer turns invalid tables and
//! models into structured errors before any panicking constructor runs,
//! the replication layer converts worker panics into `ReplicaPanic`
//! values, and a final `catch_unwind` at the request boundary converts
//! anything that still escapes into a `"panic"`-coded response instead of
//! a dead daemon.
//!
//! Every request is traced through a [`crate::telemetry::RequestTimer`]:
//! prediction work records named stage windows (validate → model →
//! compile → eval → render), cache outcomes, and replication shape into
//! the span ring and the latency histograms; control ops (`ping`,
//! `stats`, `shutdown`, unparseable frames) get lightweight ring-only
//! spans. When [`ServeConfig::http_addr`] is set, `run` also starts the
//! HTTP observability sidecar (`/metrics`, `/healthz`, `/spans`).

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use pevpm::replicate::isolated_map_observed;
use pevpm_dist::{io as dist_io, DistTable};
use pevpm_obs::{diag, Registry};

use crate::cache::{fnv1a, ModelCache, TimingCache};
use crate::plan::{self, EvalOutcome, PlanError, PredictRequest};
use crate::proto::{self, Request};
use crate::telemetry::{HttpServer, RequestTimer, Telemetry, DEFAULT_SPAN_CAPACITY};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 asks the OS for a free port.
    pub addr: String,
    /// Benchmark tables to preload, as `(name, path)`.
    pub tables: Vec<(String, PathBuf)>,
    /// Worker threads for batch fan-out and Monte-Carlo replication
    /// (0 = all cores).
    pub threads: usize,
    /// Default intra-evaluation DAG worker count applied to requests that
    /// don't set `eval_threads` themselves (0 = classic serial engine).
    /// Shares the host core budget with `threads`: batch items and
    /// replications get the per-job share, so the fan-out × eval product
    /// never oversubscribes. Predictions are bitwise identical at every
    /// value >= 1.
    pub eval_threads: usize,
    /// Admission control: refuse requests asking for more replications
    /// than this (0 = unlimited).
    pub max_reps: usize,
    /// Admission control: cap every evaluation's directive budget.
    pub max_steps: Option<u64>,
    /// Admission control: cap every evaluation's simulated-seconds budget.
    pub max_virtual_secs: Option<f64>,
    /// Maximum accepted frame payload in bytes.
    pub max_frame: usize,
    /// Bind address for the HTTP observability sidecar (`/metrics`,
    /// `/healthz`, `/spans`); `None` disables it.
    pub http_addr: Option<String>,
    /// Write the structured one-line-JSON request log to this file
    /// instead of stderr.
    pub log_out: Option<PathBuf>,
    /// Only log requests at least this slow, in milliseconds. Setting it
    /// (even to `0.0`) enables the request log.
    pub log_slow_ms: Option<f64>,
    /// How many finished request spans the in-memory ring retains.
    pub span_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            tables: Vec::new(),
            threads: 0,
            eval_threads: 0,
            max_reps: 0,
            max_steps: None,
            max_virtual_secs: None,
            max_frame: proto::MAX_FRAME,
            http_addr: None,
            log_out: None,
            log_slow_ms: None,
            span_capacity: DEFAULT_SPAN_CAPACITY,
        }
    }
}

/// A daemon startup failure.
#[derive(Debug)]
pub struct ServeError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ServeError {}

struct LoadedTable {
    hash: u64,
    table: Arc<DistTable>,
}

/// The prediction daemon: preloaded tables, content-addressed caches, a
/// metrics registry, request telemetry, and a bound listener.
pub struct Server {
    cfg: ServeConfig,
    listener: TcpListener,
    tables: HashMap<String, LoadedTable>,
    models: ModelCache,
    timings: TimingCache,
    registry: Arc<Registry>,
    telemetry: Arc<Telemetry>,
    // Bound at construction (so the sidecar port is known before `run`),
    // taken and spawned by `run`.
    http: Mutex<Option<HttpServer>>,
}

impl Server {
    /// Bind the listener and load every configured table from disk.
    pub fn bind(cfg: ServeConfig) -> Result<Server, ServeError> {
        let mut loaded = Vec::with_capacity(cfg.tables.len());
        for (name, path) in &cfg.tables {
            let table = dist_io::load_table(path).map_err(|e| ServeError {
                message: format!("table {name:?}: {e}"),
            })?;
            loaded.push((name.clone(), table));
        }
        Server::with_tables(cfg, loaded)
    }

    /// Bind the listener around already-loaded tables (tests, embedding).
    pub fn with_tables(
        cfg: ServeConfig,
        tables: Vec<(String, DistTable)>,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| ServeError {
            message: format!("cannot bind {}: {e}", cfg.addr),
        })?;
        let registry = Arc::new(Registry::new());
        let telemetry = Arc::new(
            Telemetry::new(
                Arc::clone(&registry),
                cfg.span_capacity,
                cfg.log_out.as_deref(),
                cfg.log_slow_ms,
            )
            .map_err(|e| ServeError {
                message: format!("cannot open request log: {e}"),
            })?,
        );
        let http = match &cfg.http_addr {
            Some(addr) => {
                Some(
                    HttpServer::bind(addr, Arc::clone(&telemetry)).map_err(|e| ServeError {
                        message: format!("cannot bind http sidecar {addr}: {e}"),
                    })?,
                )
            }
            None => None,
        };
        let models = ModelCache::new(&registry);
        let timings = TimingCache::new(&registry);
        let mut map = HashMap::new();
        for (name, table) in tables {
            let hash = fnv1a(dist_io::write_table(&table).as_bytes());
            if map
                .insert(
                    name.clone(),
                    LoadedTable {
                        hash,
                        table: Arc::new(table),
                    },
                )
                .is_some()
            {
                return Err(ServeError {
                    message: format!("duplicate table name {name:?}"),
                });
            }
        }
        Ok(Server {
            cfg,
            listener,
            tables: map,
            models,
            timings,
            registry,
            telemetry,
            http: Mutex::new(http),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// The HTTP sidecar's bound address, when one is configured and not
    /// yet consumed by `run`.
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http
            .lock()
            .ok()
            .and_then(|g| g.as_ref().and_then(|s| s.local_addr().ok()))
    }

    /// The daemon's metrics registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The daemon's telemetry hub (span ring, stats, sidecar routes).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Accept and serve connections until a `shutdown` request arrives.
    /// Connections are served serially, in arrival order. The HTTP
    /// sidecar (if configured) runs on its own thread for the duration
    /// and stops when this returns.
    pub fn run(&self) -> io::Result<()> {
        let http = match self.http.lock() {
            Ok(mut guard) => guard.take(),
            Err(_) => None,
        };
        let _http_handle = match http {
            Some(server) => {
                let addr = server.local_addr()?;
                let handle = server.spawn()?;
                diag::info(&format!("pevpm serve: observability http on {addr}"));
                Some(handle)
            }
            None => None,
        };
        diag::info(&format!(
            "pevpm serve: listening on {} ({} table(s) loaded)",
            self.local_addr()?,
            self.tables.len()
        ));
        for conn in self.listener.incoming() {
            let stream = match conn {
                Ok(s) => s,
                Err(e) => {
                    diag::info(&format!("pevpm serve: accept failed: {e}"));
                    continue;
                }
            };
            match self.serve_connection(stream) {
                Ok(true) => break,
                Ok(false) => {}
                Err(e) => diag::info(&format!("pevpm serve: connection error: {e}")),
            }
        }
        diag::info("pevpm serve: shutting down");
        Ok(())
    }

    /// Serve one connection until the peer closes it. Returns `Ok(true)`
    /// when the peer asked the daemon to shut down.
    fn serve_connection(&self, stream: TcpStream) -> io::Result<bool> {
        // Responses are written whole; Nagle + delayed ACK would stall
        // multi-segment response frames ~40 ms.
        stream.set_nodelay(true)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        while let Some(frame) = proto::read_frame(&mut reader, self.cfg.max_frame)? {
            let (response, shutdown) = self.handle_frame(&frame);
            proto::write_frame(&mut writer, &response)?;
            if shutdown {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Answer one request frame. The second element is true when the
    /// daemon should stop accepting after this response.
    pub fn handle_frame(&self, frame: &str) -> (String, bool) {
        self.registry.counter("serve.requests").inc();
        let request = match proto::parse_request(frame) {
            Ok(r) => r,
            Err((id, e)) => {
                let timer = self.telemetry.begin("invalid", false);
                let resp = proto::err_response(&id, e.kind.code(), &e.message);
                timer.finish(e.kind.code(), resp.len());
                return (resp, false);
            }
        };
        match request {
            Request::Ping { id } => {
                let timer = self.telemetry.begin("ping", false);
                let resp = proto::ok_response(&id, "{\"kind\":\"pong\"}");
                timer.finish("ok", resp.len());
                (resp, false)
            }
            Request::Stats { id } => {
                let timer = self.telemetry.begin("stats", false);
                let resp = proto::ok_response(&id, &self.telemetry.stats_json());
                timer.finish("ok", resp.len());
                (resp, false)
            }
            Request::Shutdown { id } => {
                let timer = self.telemetry.begin("shutdown", false);
                let resp = proto::ok_response(&id, "{\"kind\":\"shutdown\"}");
                timer.finish("ok", resp.len());
                (resp, true)
            }
            Request::Predict { id, table, req } => {
                let mut timer = self.telemetry.begin("predict", true);
                let (resp, outcome) =
                    match self.predict_guarded(&table, &req, self.cfg.threads, &mut timer) {
                        Ok(result) => (proto::ok_response(&id, &result), "ok"),
                        Err(e) => (
                            proto::err_response(&id, e.kind_code(), &e.message()),
                            e.kind_code(),
                        ),
                    };
                timer.finish(outcome, resp.len());
                (resp, false)
            }
            Request::Batch { id, items } => (self.handle_batch(&id, &items), false),
        }
    }

    fn handle_batch(&self, id: &str, items: &[(String, PredictRequest)]) -> String {
        // Fan the batch across the replication pool. Each item evaluates
        // single-threaded inside its slot; replication results are
        // bitwise invariant to thread count, so this cannot change any
        // answer — only the wall-clock. The frame itself gets an
        // unmetered span (fanout/collect stages, failed-item count); each
        // item gets its own metered span, so stage histogram counts still
        // equal the number of predictions served.
        let mut frame_timer = self.telemetry.begin("batch", false);
        let pool_job_ms = self.registry.histogram("serve.pool.job_ms", 0.0, 250.0, 50);
        // Each concurrent item gets the per-slot share of the host budget
        // for its DAG scheduler — `pool width × eval-threads` stays within
        // the budget, and capping cannot change an answer.
        let budget = pevpm::ThreadBudget::from_host();
        let pool_width = budget.outer(self.cfg.threads, items.len());
        let (slots, _profile) = frame_timer.stage("fanout", || {
            isolated_map_observed(
                items.len(),
                self.cfg.threads,
                |i| {
                    let (table, req) = &items[i];
                    let mut item_timer = self.telemetry.begin("batch-item", true);
                    let mut req = req.clone();
                    req.threads = 1;
                    let requested_eval = if req.eval_threads == 0 {
                        self.cfg.eval_threads
                    } else {
                        req.eval_threads
                    };
                    req.eval_threads = budget.inner(pool_width, requested_eval);
                    match self.predict_guarded(table, &req, 1, &mut item_timer) {
                        Ok(result) => {
                            item_timer.finish("ok", result.len());
                            Ok(result)
                        }
                        Err(e) => {
                            let code = e.kind_code();
                            item_timer.finish(code, 0);
                            Err((code.to_string(), e.message()))
                        }
                    }
                },
                |_i, secs| pool_job_ms.record(secs * 1e3),
            )
        });
        let (resp, failed) = frame_timer.stage("collect", || {
            let rendered: Vec<Result<String, (String, String)>> = slots
                .into_iter()
                .map(|slot| match slot {
                    Ok(result) => Ok(result),
                    Err(pevpm::replicate::JobError::Err((code, msg))) => Err((code, msg)),
                    // isolated_map already caught the panic; report it as
                    // a per-item failure, daemon intact.
                    Err(pevpm::replicate::JobError::Panic(p)) => {
                        self.registry.counter("serve.panics_isolated").inc();
                        Err(("panic".to_string(), p.to_string()))
                    }
                })
                .collect();
            let failed = rendered.iter().filter(|r| r.is_err()).count();
            (
                proto::ok_response(id, &proto::render_batch(&rendered)),
                failed,
            )
        });
        frame_timer.set_reps(items.len());
        frame_timer.set_replica_failures(failed);
        let bytes = resp.len();
        frame_timer.finish(if failed == 0 { "ok" } else { "partial" }, bytes);
        resp
    }

    /// One prediction with the request boundary hardened: any panic that
    /// escapes the plan layer and the replication pool becomes a
    /// `RequestError::Panic`, never a daemon crash. The timer outlives
    /// the `catch_unwind`, so even a panicking request leaves a span
    /// (flagged `panicked`, minus the stage that blew up).
    fn predict_guarded(
        &self,
        table: &str,
        req: &PredictRequest,
        threads: usize,
        timer: &mut RequestTimer<'_>,
    ) -> Result<String, RequestError> {
        match catch_unwind(AssertUnwindSafe(|| {
            self.predict(table, req, threads, timer)
        })) {
            Ok(r) => r.map_err(RequestError::Plan),
            Err(payload) => {
                self.registry.counter("serve.panics_isolated").inc();
                timer.set_panicked();
                let what = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                Err(RequestError::Panic(format!("request panicked: {what}")))
            }
        }
    }

    /// Admission control: refuse work the daemon is configured not to
    /// carry, before any compilation or evaluation happens.
    fn admit(&self, req: &PredictRequest) -> Result<(), PlanError> {
        if self.cfg.max_reps > 0 && req.reps > self.cfg.max_reps {
            self.registry.counter("serve.rejected_admission").inc();
            return Err(PlanError::budget(format!(
                "admission: {} replications exceed the server limit of {}",
                req.reps, self.cfg.max_reps
            )));
        }
        Ok(())
    }

    /// The cached-plan prediction path shared by `predict` and `batch`.
    /// Each pipeline step runs as a named timer stage.
    fn predict(
        &self,
        table_name: &str,
        req: &PredictRequest,
        threads: usize,
        timer: &mut RequestTimer<'_>,
    ) -> Result<String, PlanError> {
        timer.set_reps(req.reps);
        timer.set_quorum(req.quorum.is_some());
        let (loaded, mode) = timer.stage("validate", || {
            self.admit(req)?;
            let loaded = self.tables.get(table_name).ok_or_else(|| {
                let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
                names.sort_unstable();
                PlanError::usage(format!(
                    "unknown table {table_name:?} (loaded: {})",
                    if names.is_empty() {
                        "none".to_string()
                    } else {
                        names.join(", ")
                    }
                ))
            })?;
            let mode = req.prediction_mode()?;
            Ok::<_, PlanError>((loaded, mode))
        })?;
        let (model, model_hit) = timer.stage("model", || {
            self.models.get_or_parse(&req.model_src, "request model")
        })?;
        timer.cache("model", model_hit);
        let (timing, table_hit) = timer.stage("compile", || {
            self.timings.get_or_build(
                loaded.hash,
                &loaded.table,
                mode,
                req.pingpong,
                req.compile_options(),
            )
        })?;
        timer.cache("table", table_hit);
        let outcome = timer.stage("eval", || {
            // The server's budget caps tighten whatever the request asked
            // for; a request axis the server also caps takes the minimum.
            let mut req = req.clone();
            req.threads = threads;
            // The daemon default applies when the request doesn't choose;
            // replication nesting is budgeted inside `monte_carlo`.
            if req.eval_threads == 0 {
                req.eval_threads = self.cfg.eval_threads;
            }
            if let Some(cap) = self.cfg.max_steps {
                req.max_steps = Some(req.max_steps.map_or(cap, |n| n.min(cap)));
            }
            if let Some(cap) = self.cfg.max_virtual_secs {
                req.max_virtual_secs = Some(req.max_virtual_secs.map_or(cap, |s| s.min(cap)));
            }
            // Engine and DAG-scheduler metrics (vm.*, dag.*) land in the
            // daemon registry, surfacing through `stats` and /metrics.
            let cfg = req
                .eval_config()?
                .with_metrics(Arc::clone(self.telemetry.registry()));
            plan::evaluate_plan(&model, &cfg, &timing, req.reps)
        })?;
        if let EvalOutcome::Batch(mc) = &outcome {
            timer.set_replica_failures(mc.failures.len());
        }
        Ok(timer.stage("render", || proto::render_outcome(&outcome)))
    }
}

/// A request failure: a classified plan error or an isolated panic.
enum RequestError {
    Plan(PlanError),
    Panic(String),
}

impl RequestError {
    fn kind_code(&self) -> &'static str {
        match self {
            RequestError::Plan(e) => e.kind.code(),
            RequestError::Panic(_) => "panic",
        }
    }

    fn message(&self) -> String {
        match self {
            RequestError::Plan(e) => e.message.clone(),
            RequestError::Panic(m) => m.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pevpm_obs::json::{self, Json};

    const SRC: &str = "\
// PEVPM Loop iterations = rounds
// PEVPM {
// PEVPM Runon c1 = procnum == 0
// PEVPM &     c2 = procnum == 1
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM }
";

    fn test_table() -> DistTable {
        let mut t = DistTable::new();
        let mut h = pevpm_dist::Histogram::new(0.0, 1e-6);
        for i in 0..64 {
            h.add(1e-6 * f64::from(i % 11));
        }
        for op in [pevpm_dist::Op::Send, pevpm_dist::Op::Recv] {
            for size in [512u64, 1024, 2048] {
                for contention in [1u32, 2] {
                    t.insert(
                        pevpm_dist::DistKey {
                            op,
                            size,
                            contention,
                        },
                        pevpm_dist::CommDist::Hist(h.clone()),
                    );
                }
            }
        }
        t
    }

    fn test_server() -> Server {
        Server::with_tables(
            ServeConfig::default(),
            vec![("default".to_string(), test_table())],
        )
        .unwrap()
    }

    fn predict_frame(reps: usize) -> String {
        format!(
            "{{\"op\":\"predict\",\"id\":\"p\",\"model\":\"{}\",\"procs\":2,\
             \"params\":{{\"rounds\":20}},\"reps\":{reps},\"seed\":3}}",
            pevpm_obs::json::escape(SRC)
        )
    }

    #[test]
    fn predict_answers_and_caches_compile_exactly_once() {
        let s = test_server();
        let (r1, stop) = s.handle_frame(&predict_frame(1));
        assert!(!stop);
        let v = json::parse(&r1).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{r1}");
        let makespan = v
            .get("result")
            .and_then(|r| r.get("makespan"))
            .and_then(Json::as_num)
            .unwrap();
        assert!(makespan > 0.0);
        // 99 more identical requests: same bytes back, zero new compiles.
        for _ in 0..99 {
            let (r, _) = s.handle_frame(&predict_frame(1));
            assert_eq!(r, r1);
        }
        assert_eq!(s.registry().counter("serve.table_compiles").get(), 1);
        assert_eq!(s.registry().counter("serve.model_compiles").get(), 1);
        assert_eq!(s.registry().counter("serve.model_cache_hits").get(), 99);
    }

    #[test]
    fn predictions_leave_spans_with_every_stage_and_cache_outcome() {
        let s = test_server();
        s.handle_frame(&predict_frame(1));
        s.handle_frame(&predict_frame(1));
        let spans = s.telemetry().ring().last(10);
        assert_eq!(spans.len(), 2);
        let names: Vec<&str> = spans[1].stages.iter().map(|st| st.name.as_str()).collect();
        assert_eq!(names, crate::telemetry::STAGES);
        // First request misses both caches, second hits both.
        assert_eq!(
            spans[0].caches,
            vec![("model".to_string(), false), ("table".to_string(), false)]
        );
        assert_eq!(
            spans[1].caches,
            vec![("model".to_string(), true), ("table".to_string(), true)]
        );
        assert_eq!(spans[1].outcome, "ok");
        assert!(spans[1].response_bytes > 0);
        assert_eq!(s.registry().counter("serve.requests.total").get(), 2);
    }

    #[test]
    fn batch_answers_match_one_at_a_time_answers_bitwise() {
        let s = test_server();
        let (single, _) = s.handle_frame(&predict_frame(4));
        let sv = json::parse(&single).unwrap();
        let sresult = sv.get("result").unwrap();
        let body = format!(
            "{{\"model\":\"{}\",\"procs\":2,\"params\":{{\"rounds\":20}},\"reps\":4,\"seed\":3}}",
            pevpm_obs::json::escape(SRC)
        );
        let frame =
            format!("{{\"op\":\"batch\",\"id\":\"b\",\"requests\":[{body},{body},{body}]}}");
        let (resp, _) = s.handle_frame(&frame);
        let v = json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        let items = v.get("result").and_then(Json::as_array).unwrap();
        assert_eq!(items.len(), 3);
        for item in items {
            assert_eq!(item.get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(item.get("result").unwrap(), sresult);
        }
        // 1 metered predict + 3 metered batch items; the frame span is
        // unmetered but lands in the ring.
        assert_eq!(s.registry().counter("serve.requests.total").get(), 4);
        let batch_span = s
            .telemetry()
            .ring()
            .last(10)
            .into_iter()
            .find(|sp| sp.op == "batch")
            .expect("batch frame span recorded");
        let stage_names: Vec<&str> = batch_span
            .stages
            .iter()
            .map(|st| st.name.as_str())
            .collect();
        assert_eq!(stage_names, ["fanout", "collect"]);
        assert_eq!(batch_span.replica_failures, 0);
    }

    #[test]
    fn errors_are_classified_and_never_kill_the_daemon() {
        let s = test_server();
        // Unknown table.
        let (r, _) = s.handle_frame(
            "{\"op\":\"predict\",\"id\":\"x\",\"model\":\"m\",\"procs\":2,\"table\":\"nope\"}",
        );
        let v = json::parse(&r).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("usage"));
        // Unparseable model: input.
        let (r, _) = s.handle_frame(
            "{\"op\":\"predict\",\"id\":\"x\",\"model\":\"// PEVPM Loop iterations =\",\"procs\":2}",
        );
        assert_eq!(
            json::parse(&r).unwrap().get("code").and_then(Json::as_str),
            Some("input")
        );
        // Garbage frame: usage, id preserved where possible.
        let (r, _) = s.handle_frame("{\"op\":\"predict\",\"id\":\"q\"}");
        let v = json::parse(&r).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("q"));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("usage"));
        // The daemon still answers afterwards.
        let (r, _) = s.handle_frame("{\"op\":\"ping\",\"id\":\"alive\"}");
        assert!(json::parse(&r).unwrap().get("ok").and_then(Json::as_bool) == Some(true));
        // Every failure above still left a span with its exit class.
        let outcomes: Vec<String> = s
            .telemetry()
            .ring()
            .last(10)
            .into_iter()
            .map(|sp| sp.outcome)
            .collect();
        assert_eq!(outcomes, ["usage", "input", "usage", "ok"]);
    }

    #[test]
    fn admission_control_rejects_oversized_requests_up_front() {
        let cfg = ServeConfig {
            max_reps: 4,
            ..ServeConfig::default()
        };
        let s = Server::with_tables(cfg, vec![("default".to_string(), test_table())]).unwrap();
        let (r, _) = s.handle_frame(&predict_frame(5));
        let v = json::parse(&r).unwrap();
        assert_eq!(v.get("code").and_then(Json::as_str), Some("budget"), "{r}");
        assert_eq!(s.registry().counter("serve.rejected_admission").get(), 1);
        // No compilation was wasted on the rejected request.
        assert_eq!(s.registry().counter("serve.table_compiles").get(), 0);
        let (r, _) = s.handle_frame(&predict_frame(4));
        assert_eq!(
            json::parse(&r).unwrap().get("ok").and_then(Json::as_bool),
            Some(true),
            "{r}"
        );
    }

    #[test]
    fn server_budget_caps_tighten_requests() {
        let cfg = ServeConfig {
            max_steps: Some(3),
            ..ServeConfig::default()
        };
        let s = Server::with_tables(cfg, vec![("default".to_string(), test_table())]).unwrap();
        let (r, _) = s.handle_frame(&predict_frame(1));
        let v = json::parse(&r).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{r}");
        assert_eq!(v.get("code").and_then(Json::as_str), Some("budget"), "{r}");
    }

    #[test]
    fn stats_exposes_the_cache_counters() {
        let s = test_server();
        s.handle_frame(&predict_frame(1));
        s.handle_frame(&predict_frame(1));
        let (r, _) = s.handle_frame("{\"op\":\"stats\",\"id\":\"s\"}");
        let v = json::parse(&r).unwrap();
        let counters = v
            .get("result")
            .and_then(|r| r.get("counters"))
            .and_then(Json::as_object)
            .unwrap();
        assert_eq!(
            counters.get("serve.table_compiles").and_then(Json::as_num),
            Some(1.0)
        );
        assert_eq!(
            counters.get("serve.requests").and_then(Json::as_num),
            Some(3.0)
        );
        // The span-derived extensions ride along in the same document.
        let result = v.get("result").unwrap();
        assert!(result
            .get("uptime_secs")
            .and_then(Json::as_num)
            .is_some_and(|u| u >= 0.0));
        assert!(result
            .get("started")
            .and_then(Json::as_str)
            .is_some_and(|s| s.ends_with('Z')));
        let validate = result
            .get("stages")
            .and_then(|st| st.get("validate"))
            .unwrap();
        assert_eq!(validate.get("count").and_then(Json::as_num), Some(2.0));
    }

    #[test]
    fn shutdown_frame_flags_the_loop_to_stop() {
        let s = test_server();
        let (r, stop) = s.handle_frame("{\"op\":\"shutdown\",\"id\":\"z\"}");
        assert!(stop);
        assert!(r.contains("\"ok\":true"));
    }
}
