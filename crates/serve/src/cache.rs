//! Content-addressed caches that make the daemon cheap per-request.
//!
//! The two expensive request-independent stages of a prediction are
//! parsing/lowering the annotated model and compiling a benchmark table
//! into sampler form. A one-shot CLI run pays both every time; the daemon
//! pays each exactly once per distinct content and answers every later
//! request from the cache.
//!
//! Keys are FNV-1a hashes of canonical content: the annotated source text
//! for models, the `PEVPM-DIST v1` serialization for tables (computed
//! once at table load, not per request). Both caches are bounded with
//! the same clear-on-full policy the sampler blend cache uses — an epoch
//! flush is deterministic, cheap, and cannot leak under adversarial key
//! streams.
//!
//! Each wipe increments the shared `serve.cache.evictions` counter and
//! resets the cache's epoch-local hit-rate gauge
//! (`serve.model_cache_hit_rate` / `serve.table_cache_hit_rate`), so a
//! `/metrics` scrape never shows a ratio computed across a flush. The
//! lifetime hit/miss counters keep accumulating across epochs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pevpm::timing::{PredictionMode, TimingModel};
use pevpm::Model;
use pevpm_dist::{CompileOptions, DistTable};
use pevpm_obs::{Counter, Gauge, Registry};

use crate::plan::{self, PlanError};

/// Upper bound on distinct cached models / timing models. Small because
/// entries are whole lowered models; a serve deployment rarely cycles
/// through more than a handful of model sources and machine tables.
pub const CACHE_CAP: usize = 256;

/// 64-bit FNV-1a over raw bytes — the workspace's standard dependency-free
/// content hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Epoch-local hit-rate tracking behind a gauge: lookups and hits since
/// the last clear-on-full wipe. Reset alongside the map so the exported
/// ratio always describes the *current* cache contents.
struct HitRate {
    gauge: Arc<Gauge>,
    hits: AtomicU64,
    lookups: AtomicU64,
}

impl HitRate {
    fn new(gauge: Arc<Gauge>) -> Self {
        gauge.set(0.0);
        HitRate {
            gauge,
            hits: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
        }
    }

    fn observe(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        let lookups = self.lookups.fetch_add(1, Ordering::Relaxed) + 1;
        let hits = self.hits.load(Ordering::Relaxed);
        self.gauge.set(hits as f64 / lookups as f64);
    }

    fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.lookups.store(0, Ordering::Relaxed);
        self.gauge.set(0.0);
    }
}

/// Parsed-and-lowered models keyed by a hash of their source text.
pub struct ModelCache {
    map: Mutex<HashMap<u64, Arc<Model>>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    compiles: Arc<Counter>,
    evictions: Arc<Counter>,
    hit_rate: HitRate,
}

impl ModelCache {
    /// A cache whose hit/miss/compile counters live in `registry` under
    /// `serve.model_cache_hits`, `serve.model_cache_misses` and
    /// `serve.model_compiles`, with an epoch-local
    /// `serve.model_cache_hit_rate` gauge and the shared
    /// `serve.cache.evictions` counter.
    pub fn new(registry: &Registry) -> Self {
        ModelCache {
            map: Mutex::new(HashMap::new()),
            hits: registry.counter("serve.model_cache_hits"),
            misses: registry.counter("serve.model_cache_misses"),
            compiles: registry.counter("serve.model_compiles"),
            evictions: registry.counter("serve.cache.evictions"),
            hit_rate: HitRate::new(registry.gauge("serve.model_cache_hit_rate")),
        }
    }

    /// The cached model for `src`, parsing (and caching) it on first
    /// sight. `origin` labels parse errors. The second element reports
    /// whether the lookup was a cache hit.
    pub fn get_or_parse(&self, src: &str, origin: &str) -> Result<(Arc<Model>, bool), PlanError> {
        let key = fnv1a(src.as_bytes());
        if let Some(m) = self.lookup(key) {
            self.hits.inc();
            self.hit_rate.observe(true);
            return Ok((m, true));
        }
        self.misses.inc();
        self.hit_rate.observe(false);
        let model = Arc::new(plan::parse_model(src, origin)?);
        self.compiles.inc();
        self.store(key, Arc::clone(&model));
        Ok((model, false))
    }

    fn lookup(&self, key: u64) -> Option<Arc<Model>> {
        self.map.lock().ok()?.get(&key).cloned()
    }

    fn store(&self, key: u64, model: Arc<Model>) {
        if let Ok(mut map) = self.map.lock() {
            if map.len() >= CACHE_CAP {
                map.clear();
                self.evictions.inc();
                self.hit_rate.reset();
            }
            map.insert(key, model);
        }
    }
}

/// Cache key for a built timing model: which table content, which
/// prediction mode, and which compile-affecting options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingKey {
    /// FNV-1a of the table's canonical serialization.
    pub table_hash: u64,
    /// Prediction-mode discriminant.
    pub mode: u8,
    /// Ping-pong-only slice of the database.
    pub pingpong: bool,
    /// Exact-bisection quantiles instead of the LUT.
    pub exact_quantiles: bool,
}

impl TimingKey {
    /// The key for a (table, request-shape) pair.
    pub fn new(
        table_hash: u64,
        mode: PredictionMode,
        pingpong: bool,
        exact_quantiles: bool,
    ) -> Self {
        let mode = match mode {
            PredictionMode::FullDistribution => 0,
            PredictionMode::Average => 1,
            PredictionMode::Minimum => 2,
        };
        TimingKey {
            table_hash,
            mode,
            pingpong,
            exact_quantiles,
        }
    }
}

/// Compiled timing models keyed by table content and request shape.
pub struct TimingCache {
    map: Mutex<HashMap<TimingKey, Arc<TimingModel>>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    compiles: Arc<Counter>,
    evictions: Arc<Counter>,
    hit_rate: HitRate,
}

impl TimingCache {
    /// A cache whose counters live in `registry` under
    /// `serve.table_cache_hits`, `serve.table_cache_misses` and
    /// `serve.table_compiles`, with an epoch-local
    /// `serve.table_cache_hit_rate` gauge and the shared
    /// `serve.cache.evictions` counter.
    pub fn new(registry: &Registry) -> Self {
        TimingCache {
            map: Mutex::new(HashMap::new()),
            hits: registry.counter("serve.table_cache_hits"),
            misses: registry.counter("serve.table_cache_misses"),
            compiles: registry.counter("serve.table_compiles"),
            evictions: registry.counter("serve.cache.evictions"),
            hit_rate: HitRate::new(registry.gauge("serve.table_cache_hit_rate")),
        }
    }

    /// The cached timing model for this (table, shape), building it on
    /// first sight. `table_hash` must be the hash of `table`'s canonical
    /// serialization (the daemon computes it once at load). The second
    /// element reports whether the lookup was a cache hit.
    pub fn get_or_build(
        &self,
        table_hash: u64,
        table: &DistTable,
        mode: PredictionMode,
        pingpong: bool,
        options: CompileOptions,
    ) -> Result<(Arc<TimingModel>, bool), PlanError> {
        let key = TimingKey::new(table_hash, mode, pingpong, options.exact_quantiles);
        if let Some(t) = self.lookup(key) {
            self.hits.inc();
            self.hit_rate.observe(true);
            return Ok((t, true));
        }
        self.misses.inc();
        self.hit_rate.observe(false);
        let timing = Arc::new(plan::build_timing(table, mode, pingpong, options)?);
        self.compiles.inc();
        self.store(key, Arc::clone(&timing));
        Ok((timing, false))
    }

    fn lookup(&self, key: TimingKey) -> Option<Arc<TimingModel>> {
        self.map.lock().ok()?.get(&key).cloned()
    }

    fn store(&self, key: TimingKey, timing: Arc<TimingModel>) {
        if let Ok(mut map) = self.map.lock() {
            if map.len() >= CACHE_CAP {
                map.clear();
                self.evictions.inc();
                self.hit_rate.reset();
            }
            map.insert(key, timing);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
// PEVPM Runon c1 = procnum == 0
// PEVPM &     c2 = procnum == 1
// PEVPM {
// PEVPM Message type = MPI_Send
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
// PEVPM {
// PEVPM Message type = MPI_Recv
// PEVPM &       size = 1024
// PEVPM &       from = 0
// PEVPM &       to = 1
// PEVPM }
";

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn model_cache_parses_each_distinct_source_once() {
        let reg = Registry::new();
        let cache = ModelCache::new(&reg);
        let (a, hit_a) = cache.get_or_parse(SRC, "t").unwrap();
        let (b, hit_b) = cache.get_or_parse(SRC, "t").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!hit_a, "first sight is a miss");
        assert!(hit_b, "second sight is a hit");
        assert_eq!(reg.counter("serve.model_compiles").get(), 1);
        assert_eq!(reg.counter("serve.model_cache_hits").get(), 1);
        assert_eq!(reg.counter("serve.model_cache_misses").get(), 1);
        assert_eq!(reg.gauge("serve.model_cache_hit_rate").get(), 0.5);
    }

    #[test]
    fn parse_failures_are_not_cached_as_successes() {
        let reg = Registry::new();
        let cache = ModelCache::new(&reg);
        assert!(cache
            .get_or_parse("// PEVPM Loop iterations =", "t")
            .is_err());
        assert!(cache
            .get_or_parse("// PEVPM Loop iterations =", "t")
            .is_err());
        assert_eq!(reg.counter("serve.model_compiles").get(), 0);
        assert_eq!(reg.counter("serve.model_cache_misses").get(), 2);
    }

    #[test]
    fn timing_cache_distinguishes_request_shape_not_just_table() {
        let table = pevpm_bench_table();
        let hash = fnv1a(pevpm_dist::io::write_table(&table).as_bytes());
        let reg = Registry::new();
        let cache = TimingCache::new(&reg);
        let opts = CompileOptions::default();
        let (a, _) = cache
            .get_or_build(hash, &table, PredictionMode::FullDistribution, false, opts)
            .unwrap();
        let (b, hit) = cache
            .get_or_build(hash, &table, PredictionMode::FullDistribution, false, opts)
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(hit);
        assert_eq!(reg.counter("serve.table_compiles").get(), 1);
        // Same table, different mode: a distinct compiled artifact.
        cache
            .get_or_build(hash, &table, PredictionMode::Average, false, opts)
            .unwrap();
        assert_eq!(reg.counter("serve.table_compiles").get(), 2);
        assert_eq!(reg.counter("serve.table_cache_hits").get(), 1);
    }

    #[test]
    fn clear_on_full_resets_the_hit_rate_epoch() {
        let reg = Registry::new();
        let cache = ModelCache::new(&reg);
        // Distinct sources: vary an annotation constant so every source
        // parses but hashes differently.
        let src_n = |n: usize| SRC.replace("size = 1024", &format!("size = {}", 1024 + n * 8));
        for n in 0..CACHE_CAP {
            cache.get_or_parse(&src_n(n), "t").unwrap();
        }
        // A warm hit inside the first epoch pushes the rate above zero.
        cache.get_or_parse(&src_n(0), "t").unwrap();
        assert!(reg.gauge("serve.model_cache_hit_rate").get() > 0.0);
        assert_eq!(reg.counter("serve.cache.evictions").get(), 0);
        // The CAP+1-th distinct insert wipes the map: the evictions
        // counter ticks and the epoch hit-rate returns to a fresh state,
        // not a stale ratio spanning the wipe.
        cache.get_or_parse(&src_n(CACHE_CAP), "t").unwrap();
        assert_eq!(reg.counter("serve.cache.evictions").get(), 1);
        assert_eq!(reg.gauge("serve.model_cache_hit_rate").get(), 0.0);
        // Lifetime counters keep accumulating across the wipe.
        assert_eq!(
            reg.counter("serve.model_cache_misses").get(),
            CACHE_CAP as u64 + 1
        );
        // The next lookup starts the new epoch's ratio from scratch.
        cache.get_or_parse(&src_n(CACHE_CAP), "t").unwrap();
        assert_eq!(reg.gauge("serve.model_cache_hit_rate").get(), 1.0);
    }

    fn pevpm_bench_table() -> DistTable {
        let mut t = DistTable::new();
        let mut h = pevpm_dist::Histogram::new(0.0, 1e-6);
        for i in 0..32 {
            h.add(1e-6 * f64::from(i % 7));
        }
        for op in [pevpm_dist::Op::Send, pevpm_dist::Op::Recv] {
            for size in [512u64, 1024, 2048] {
                t.insert(
                    pevpm_dist::DistKey {
                        op,
                        size,
                        contention: 1,
                    },
                    pevpm_dist::CommDist::Hist(h.clone()),
                );
            }
        }
        t
    }
}
