//! Fault injection for the serve protocol: deliberately misbehaving
//! peers that earn the daemon's robustness guarantees.
//!
//! Each [`ChaosMode`] opens a raw TCP connection to a running daemon and
//! violates the framing contract in one specific way — truncating a
//! length prefix, stalling mid-frame, disappearing half-open, announcing
//! an oversized frame, sending garbage bytes, or reading the response
//! glacially. After the misbehavior the harness verifies the daemon is
//! still alive (a fresh connection answers `ping`) and reports what the
//! daemon did about the abuse. `scripts/serve_chaos.sh` drives every
//! mode against a real daemon in CI and asserts zero panics.
//!
//! The modes map onto the server's disconnect classification (see
//! [`crate::server`]): truncated prefixes land in `serve.conn.truncated`,
//! mid-frame stalls in `serve.conn.io_timeouts` (plus a structured
//! `"timeout"` error frame), oversized/garbage frames in
//! `serve.conn.bad_frames` (plus a `"usage"` error frame), and clean
//! closes in `serve.conn.clean_eof`.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

use pevpm_obs::json::{self, escape, Json};

use crate::proto;

/// One way a peer can misbehave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Send 2 of the 4 length-prefix bytes, then close.
    TruncatedPrefix,
    /// Announce a frame, send part of its body, then stall silently
    /// (slowloris). The daemon must evict within `--io-timeout-ms` with
    /// a structured `"timeout"` error.
    StalledWrite,
    /// Send a valid request, then vanish without reading the response
    /// (the response write hits a dead socket).
    HalfOpen,
    /// Announce a frame larger than the daemon's `--max-frame` cap.
    Oversized,
    /// A correctly-framed body of invalid UTF-8 garbage.
    Garbage,
    /// A valid request whose response the peer reads one byte at a time.
    SlowRead,
}

impl ChaosMode {
    /// Every mode, in the order `--chaos all` runs them.
    pub const ALL: [ChaosMode; 6] = [
        ChaosMode::TruncatedPrefix,
        ChaosMode::StalledWrite,
        ChaosMode::HalfOpen,
        ChaosMode::Oversized,
        ChaosMode::Garbage,
        ChaosMode::SlowRead,
    ];

    /// The mode's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            ChaosMode::TruncatedPrefix => "truncated-prefix",
            ChaosMode::StalledWrite => "stalled-write",
            ChaosMode::HalfOpen => "half-open",
            ChaosMode::Oversized => "oversized",
            ChaosMode::Garbage => "garbage",
            ChaosMode::SlowRead => "slow-read",
        }
    }

    /// Parse a CLI name back to a mode.
    pub fn parse(name: &str) -> Option<ChaosMode> {
        ChaosMode::ALL.into_iter().find(|m| m.name() == name)
    }
}

/// What one chaos mode observed.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Which mode ran.
    pub mode: ChaosMode,
    /// What the daemon did about the misbehavior (mode-specific).
    pub outcome: String,
    /// The daemon answered a fresh `ping` after the abuse.
    pub survived: bool,
    /// Wall-clock for the whole mode, milliseconds.
    pub elapsed_ms: f64,
}

impl ChaosReport {
    /// The report as one JSON object (for `BENCH_serve_robustness.json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"mode\":\"{}\",\"outcome\":\"{}\",\"survived\":{},\"elapsed_ms\":{:.3}}}",
            self.mode.name(),
            escape(&self.outcome),
            self.survived,
            self.elapsed_ms
        )
    }
}

/// How long chaos connections wait for a daemon reaction beyond the
/// daemon's own I/O deadline.
const REACTION_MARGIN: Duration = Duration::from_millis(2_000);

/// Run one fault mode against the daemon at `addr`. `io_timeout_hint_ms`
/// is the daemon's `--io-timeout-ms` (how long eviction may take); pass
/// the real value so stall modes wait just long enough.
pub fn run_mode(addr: &str, mode: ChaosMode, io_timeout_hint_ms: u64) -> io::Result<ChaosReport> {
    let t0 = Instant::now();
    let deadline = Duration::from_millis(io_timeout_hint_ms).saturating_add(REACTION_MARGIN);
    let outcome = match mode {
        ChaosMode::TruncatedPrefix => truncated_prefix(addr)?,
        ChaosMode::StalledWrite => stalled_write(addr, deadline)?,
        ChaosMode::HalfOpen => half_open(addr)?,
        ChaosMode::Oversized => oversized(addr, deadline)?,
        ChaosMode::Garbage => garbage(addr, deadline)?,
        ChaosMode::SlowRead => slow_read(addr, deadline)?,
    };
    let survived = fresh_ping(addr)?;
    Ok(ChaosReport {
        mode,
        outcome,
        survived,
        elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
    })
}

/// Run every mode in [`ChaosMode::ALL`] order.
pub fn run_all(addr: &str, io_timeout_hint_ms: u64) -> io::Result<Vec<ChaosReport>> {
    ChaosMode::ALL
        .into_iter()
        .map(|mode| run_mode(addr, mode, io_timeout_hint_ms))
        .collect()
}

fn connect(addr: &str) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// The abused daemon must still answer a clean ping on a new connection.
fn fresh_ping(addr: &str) -> io::Result<bool> {
    let mut client = crate::Client::connect(addr)?;
    let resp = client.ping("chaos-liveness")?;
    let alive = json::parse(&resp)
        .ok()
        .and_then(|v| v.get("ok").and_then(Json::as_bool))
        == Some(true);
    Ok(alive)
}

/// Read one frame with a socket deadline; classify what came back.
fn read_reaction(stream: &TcpStream, deadline: Duration) -> io::Result<String> {
    stream.set_read_timeout(Some(deadline))?;
    let mut reader = io::BufReader::new(stream.try_clone()?);
    Ok(
        match proto::read_frame_deadline(&mut reader, proto::MAX_FRAME) {
            Ok(proto::FrameRead::Frame(frame)) => {
                let code = json::parse(&frame)
                    .ok()
                    .and_then(|v| v.get("code").and_then(Json::as_str).map(str::to_string));
                match code {
                    Some(code) => format!("error-frame:{code}"),
                    None => "frame:ok".to_string(),
                }
            }
            Ok(proto::FrameRead::CleanEof) => "closed".to_string(),
            Ok(proto::FrameRead::IdleTimeout) => "no-reaction".to_string(),
            Err(e) if proto::is_timeout(&e) => "no-reaction".to_string(),
            Err(_) => "closed".to_string(),
        },
    )
}

fn truncated_prefix(addr: &str) -> io::Result<String> {
    let mut stream = connect(addr)?;
    stream.write_all(&[0x00, 0x00])?;
    stream.flush()?;
    stream.shutdown(Shutdown::Both)?;
    Ok("sent 2/4 prefix bytes then closed".to_string())
}

fn stalled_write(addr: &str, deadline: Duration) -> io::Result<String> {
    let stream = connect(addr)?;
    let mut w = stream.try_clone()?;
    // Announce 64 bytes, deliver 10, then go silent. The daemon must
    // evict this connection with a structured timeout error.
    w.write_all(&64u32.to_be_bytes())?;
    w.write_all(b"{\"op\":\"pi")?;
    w.flush()?;
    read_reaction(&stream, deadline)
}

fn half_open(addr: &str) -> io::Result<String> {
    let mut stream = connect(addr)?;
    proto::write_frame(&mut stream, "{\"op\":\"ping\",\"id\":\"half-open\"}")?;
    // Vanish without reading: the daemon's response write hits a dead
    // socket and must be absorbed, not panicked on.
    drop(stream);
    Ok("request sent, peer vanished before the response".to_string())
}

fn oversized(addr: &str, deadline: Duration) -> io::Result<String> {
    let stream = connect(addr)?;
    let mut w = stream.try_clone()?;
    // Announce a frame past the 16 MiB protocol cap; no body follows.
    let announced = u32::try_from(proto::MAX_FRAME)
        .unwrap_or(u32::MAX)
        .saturating_add(1);
    w.write_all(&announced.to_be_bytes())?;
    w.flush()?;
    read_reaction(&stream, deadline)
}

fn garbage(addr: &str, deadline: Duration) -> io::Result<String> {
    let stream = connect(addr)?;
    let mut w = stream.try_clone()?;
    let body = [0xFFu8; 32];
    w.write_all(&u32::try_from(body.len()).unwrap_or(32).to_be_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    read_reaction(&stream, deadline)
}

fn slow_read(addr: &str, deadline: Duration) -> io::Result<String> {
    let mut stream = connect(addr)?;
    proto::write_frame(&mut stream, "{\"op\":\"ping\",\"id\":\"slow-read\"}")?;
    stream.set_read_timeout(Some(deadline))?;
    // Drain the response one byte at a time with pauses: a glacial
    // reader must not wedge the daemon (the response is already queued;
    // the worker slot frees as soon as the write lands in the kernel).
    let mut got = Vec::new();
    let mut byte = [0u8; 1];
    let t0 = Instant::now();
    loop {
        match stream.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                got.push(byte[0]);
                if got.len() >= 4 {
                    let len = u32::from_be_bytes([got[0], got[1], got[2], got[3]]) as usize;
                    if got.len() == 4 + len {
                        break;
                    }
                }
                if got.len() <= 16 && t0.elapsed() < deadline {
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
            Err(e) if proto::is_timeout(&e) => return Ok("no-reaction".to_string()),
            Err(e) => return Err(e),
        }
    }
    if got.len() > 4 {
        let body = String::from_utf8_lossy(&got[4..]);
        if body.contains("\"ok\":true") {
            return Ok("frame:ok".to_string());
        }
    }
    Ok("closed".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip() {
        for mode in ChaosMode::ALL {
            assert_eq!(ChaosMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(ChaosMode::parse("nope"), None);
    }

    #[test]
    fn reports_render_as_json() {
        let r = ChaosReport {
            mode: ChaosMode::Garbage,
            outcome: "error-frame:usage".to_string(),
            survived: true,
            elapsed_ms: 1.5,
        };
        let v = json::parse(&r.to_json()).unwrap();
        assert_eq!(v.get("mode").and_then(Json::as_str), Some("garbage"));
        assert_eq!(v.get("survived").and_then(Json::as_bool), Some(true));
    }
}
