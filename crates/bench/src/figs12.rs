//! Figures 1 & 2: average MPI_Isend times vs message size for `n×p`
//! machine shapes, plus the `min` (contention-free) curve — and the
//! in-text claims T-70% (1 KB contention penalty) and T-knee (16 KB
//! eager→rendezvous knee, ~81 Mbit/s two-process goodput at 16 KB).

use pevpm_mpibench::{run_sweep, MachineShape, SweepConfig, SweepResult};

/// Configuration for the Figure 1/2 sweeps.
#[derive(Debug, Clone)]
pub struct FigsConfig {
    /// Machine shapes (lines of the figure).
    pub shapes: Vec<MachineShape>,
    /// Message sizes (x axis).
    pub sizes: Vec<u64>,
    /// Repetitions per point.
    pub repetitions: usize,
    /// Base seed.
    pub seed: u64,
}

impl FigsConfig {
    /// Figure 1: small messages (64 B – 4 KB).
    pub fn fig1() -> Self {
        FigsConfig {
            shapes: pevpm_mpibench::paper_shapes(),
            sizes: pevpm_mpibench::size_grid(64, 4096),
            repetitions: 50,
            seed: 1,
        }
    }

    /// Figure 2: large messages (1 KB – 256 KB).
    pub fn fig2() -> Self {
        FigsConfig {
            shapes: pevpm_mpibench::paper_shapes(),
            sizes: pevpm_mpibench::size_grid(1024, 256 * 1024),
            repetitions: 25,
            seed: 2,
        }
    }
}

/// Run the sweep behind a figure.
pub fn run(cfg: &FigsConfig) -> SweepResult {
    run_sweep(&SweepConfig {
        shapes: cfg.shapes.clone(),
        sizes: cfg.sizes.clone(),
        repetitions: cfg.repetitions,
        seed: cfg.seed,
        bins: 100,
    })
    .expect("sweep failed")
}

/// Render the figure's series: one row per size, one column per shape
/// (average µs), plus the `min` column (the fastest message observed in
/// the least-loaded configuration).
pub fn render(res: &SweepResult) -> String {
    let mut header: Vec<String> = vec!["size".into()];
    header.extend(
        res.runs
            .iter()
            .map(|r| format!("{}x{} avg", r.nodes, r.ppn)),
    );
    header.push("min".into());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();

    let nsizes = res.runs.first().map(|r| r.by_size.len()).unwrap_or(0);
    let mut rows = Vec::new();
    for si in 0..nsizes {
        let size = res.runs[0].by_size[si].size;
        let mut row = vec![size.to_string()];
        let mut min = f64::INFINITY;
        for run in &res.runs {
            let s = &run.by_size[si];
            row.push(format!("{:.1}", s.summary.mean().unwrap_or(0.0) * 1e6));
            min = min.min(s.summary.min().unwrap_or(f64::INFINITY));
        }
        row.push(format!("{:.1}", min * 1e6));
        rows.push(row);
    }
    crate::report::table(&header_refs, &rows)
}

/// The T-70% claim: ratio of the 1 KB average at the largest `n×1` shape
/// to the 2×1 average. The paper reports ≈1.7 on Perseus.
pub fn contention_penalty_1k(res: &SweepResult) -> Option<f64> {
    let t2 = res
        .run_for(MachineShape { nodes: 2, ppn: 1 })?
        .by_size
        .iter()
        .find(|s| s.size == 1024)?
        .summary
        .mean()?;
    let big = res
        .runs
        .iter()
        .filter(|r| r.ppn == 1)
        .max_by_key(|r| r.nodes)?;
    let tn = big
        .by_size
        .iter()
        .find(|s| s.size == 1024)?
        .summary
        .mean()?;
    Some(tn / t2)
}

/// The T-knee claim: effective two-process goodput (Mbit/s) per size, and
/// the size at which the marginal per-byte cost jumps (the protocol knee).
pub fn knee_analysis(res: &SweepResult) -> (Vec<(u64, f64)>, Option<u64>) {
    let Some(run) = res.run_for(MachineShape { nodes: 2, ppn: 1 }) else {
        return (Vec::new(), None);
    };
    let goodput: Vec<(u64, f64)> = run
        .by_size
        .iter()
        .filter_map(|s| {
            let mean = s.summary.mean()?;
            Some((s.size, s.size as f64 * 8.0 / mean / 1e6))
        })
        .collect();

    // Knee: compare each point against the local linear extrapolation of
    // the two preceding points. A protocol switch shows up as an excess
    // over the extrapolated line (the rendezvous handshake), which is
    // subtle relative to wire time — the paper itself says the knee is
    // only visible on "closer inspection".
    let mut knee = None;
    let mut worst = 0.0;
    for w in run.by_size.windows(3) {
        let (a, b, c) = (&w[0], &w[1], &w[2]);
        let (Some(ta), Some(tb), Some(tc)) = (a.summary.mean(), b.summary.mean(), c.summary.mean())
        else {
            continue;
        };
        let slope = (tb - ta) / (b.size - a.size) as f64;
        let t_ext = tb + slope * (c.size - b.size) as f64;
        let excess = tc - t_ext;
        let threshold = (0.02 * t_ext).max(25e-6);
        if excess > threshold && excess > worst {
            worst = excess;
            knee = Some(c.size);
        }
    }
    (goodput, knee)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_result() -> SweepResult {
        run(&FigsConfig {
            shapes: vec![
                MachineShape { nodes: 2, ppn: 1 },
                MachineShape { nodes: 32, ppn: 1 },
            ],
            sizes: vec![1024, 4096, 8192, 16384, 32768],
            repetitions: 12,
            seed: 3,
        })
    }

    #[test]
    fn render_produces_one_row_per_size() {
        let res = small_result();
        let text = render(&res);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2 + 5, "{text}");
        assert!(lines[0].contains("2x1 avg"));
        assert!(lines[0].contains("min"));
    }

    #[test]
    fn contention_penalty_exceeds_one() {
        let res = small_result();
        let p = contention_penalty_1k(&res).unwrap();
        assert!(p > 1.05, "penalty {p}");
    }

    #[test]
    fn knee_detected_at_rendezvous_threshold() {
        let res = small_result();
        let (goodput, knee) = knee_analysis(&res);
        assert_eq!(goodput.len(), 5);
        // Goodput grows with size below saturation.
        assert!(goodput[1].1 > goodput[0].1);
        assert_eq!(knee, Some(16384), "knee at the 16 KB protocol switch");
    }
}
