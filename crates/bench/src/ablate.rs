//! Ablations of design choices the paper calls out.
//!
//! - **Abl-bins** (§6): "the small prediction errors … were mainly due to
//!   the granularity (i.e. histogram bin size) of the benchmark results …
//!   these errors could be reduced even further by using smaller bin
//!   sizes". We coarsen the benchmark histograms by increasing factors and
//!   watch the prediction drift and the information loss (KS distance).
//! - **Abl-clock** (§2): MPIBench's defining feature is its precise global
//!   clock. We inject clock-synchronisation error into the benchmark and
//!   quantify the distortion of the measured distributions.

use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, EvalConfig};
use pevpm_apps::jacobi::{self, JacobiConfig};
use pevpm_dist::{CommDist, DistTable, Ecdf};
use pevpm_mpibench::{run_p2p, ClockModel, Direction, P2pConfig, PairPattern};
use pevpm_mpisim::WorldConfig;

/// Coarsen every histogram in a table by `factor`.
pub fn coarsen_table(table: &DistTable, factor: usize) -> DistTable {
    let mut out = DistTable::new();
    for (k, d) in table.iter() {
        let d2 = match d {
            CommDist::Hist(h) => CommDist::Hist(h.coarsen(factor)),
            other => other.clone(),
        };
        out.insert(k, d2);
    }
    out
}

/// One bin-granularity ablation row.
#[derive(Debug, Clone)]
pub struct BinRow {
    /// Coarsening factor applied to the benchmark histograms.
    pub factor: usize,
    /// PEVPM prediction with the coarsened table.
    pub predicted: f64,
    /// Relative deviation from the finest-grained prediction.
    pub drift: f64,
}

/// Abl-bins: prediction sensitivity to histogram bin width.
pub fn run_bins(
    shape: pevpm_mpibench::MachineShape,
    jacobi_cfg: &JacobiConfig,
    factors: &[usize],
    bench_reps: usize,
    seed: u64,
) -> Vec<BinRow> {
    let halo = jacobi_cfg.halo_bytes();
    let table = crate::fig6::shape_table(shape, &[halo / 2, halo, halo * 2], bench_reps, seed);
    let model = jacobi::model(jacobi_cfg);
    let nprocs = shape.nodes * shape.ppn;

    let base = evaluate(
        &model,
        &EvalConfig::new(nprocs).with_seed(seed),
        &TimingModel::distributions(table.clone()),
    )
    .expect("baseline prediction failed")
    .makespan;

    // Each coarsening factor re-evaluates the same model independently;
    // fan the factors across all cores.
    pevpm::replicate::parallel_map(factors.len(), 0, |i| {
        let factor = factors[i];
        let coarse = coarsen_table(&table, factor);
        let predicted = evaluate(
            &model,
            &EvalConfig::new(nprocs).with_seed(seed),
            &TimingModel::distributions(coarse),
        )
        .expect("coarse prediction failed")
        .makespan;
        BinRow {
            factor,
            predicted,
            drift: (predicted - base) / base,
        }
    })
}

/// Result of the parametric-fit ablation (§2's "parametrised functions").
#[derive(Debug, Clone)]
pub struct FitResult {
    /// Prediction from the raw histogram database.
    pub hist_prediction: f64,
    /// Prediction from the best-fit parametric database.
    pub fit_prediction: f64,
    /// Serialised size of the histogram database (`.dist` bytes).
    pub hist_bytes: usize,
    /// Serialised size of the fitted database.
    pub fit_bytes: usize,
    /// Worst per-cell KS distance of the chosen fits.
    pub worst_ks: f64,
}

impl FitResult {
    /// Relative disagreement between fitted and histogram predictions.
    pub fn drift(&self) -> f64 {
        (self.fit_prediction - self.hist_prediction) / self.hist_prediction
    }

    /// Compression factor of the fitted database.
    pub fn compression(&self) -> f64 {
        self.hist_bytes as f64 / self.fit_bytes.max(1) as f64
    }
}

/// Abl-fit: replace the benchmark histograms by best-fit parametric models
/// and compare predictions and database sizes.
pub fn run_fits(
    shape: pevpm_mpibench::MachineShape,
    jacobi_cfg: &JacobiConfig,
    bench_reps: usize,
    seed: u64,
) -> FitResult {
    use pevpm_dist::{CommDist, ParametricFit};

    let halo = jacobi_cfg.halo_bytes();
    let table = crate::fig6::shape_table(shape, &[halo / 2, halo, halo * 2], bench_reps, seed);
    let fitted = table.fitted();
    let worst_ks = table
        .iter()
        .filter_map(|(_, d)| match d {
            CommDist::Hist(h) => ParametricFit::best_fit(h).map(|(_, ks)| ks),
            _ => None,
        })
        .fold(0.0, f64::max);

    let model = jacobi::model(jacobi_cfg);
    let nprocs = shape.nodes * shape.ppn;
    let predict = |t: pevpm_dist::DistTable| {
        evaluate(
            &model,
            &EvalConfig::new(nprocs).with_seed(seed),
            &TimingModel::distributions(t),
        )
        .expect("fit-ablation prediction failed")
        .makespan
    };

    FitResult {
        hist_prediction: predict(table.clone()),
        fit_prediction: predict(fitted.clone()),
        hist_bytes: pevpm_dist::io::write_table(&table).len(),
        fit_bytes: pevpm_dist::io::write_table(&fitted).len(),
        worst_ks,
    }
}

/// One clock-skew ablation row.
#[derive(Debug, Clone)]
pub struct ClockRow {
    /// Maximum injected per-rank clock offset (seconds).
    pub max_offset: f64,
    /// Mean of the measured distribution under this skew.
    pub mean: f64,
    /// KS distance between the skewed and clean measured distributions.
    pub ks: f64,
}

/// Abl-clock: distribution distortion under clock-synchronisation error.
pub fn run_clock(
    nodes: usize,
    size: u64,
    offsets: &[f64],
    reps: usize,
    seed: u64,
) -> Vec<ClockRow> {
    let base_cfg = P2pConfig {
        world: WorldConfig::perseus(nodes, 1, seed),
        sizes: vec![size],
        repetitions: reps,
        warmup: 4,
        sync_every: 1,
        pattern: PairPattern::HalfSplit,
        direction: Direction::Exchange,
        clock: None,
    };
    let clean = run_p2p(&base_cfg).expect("clean benchmark failed");
    let clean_ecdf = Ecdf::new(&clean.by_size[0].samples);

    // Skew levels are independent benchmark runs; fan them across cores.
    pevpm::replicate::parallel_map(offsets.len(), 0, |i| {
        let off = offsets[i];
        let mut cfg = base_cfg.clone();
        cfg.clock = Some(ClockModel::skewed(nodes, off, seed ^ 0xc10c));
        let res = run_p2p(&cfg).expect("skewed benchmark failed");
        let s = &res.by_size[0];
        ClockRow {
            max_offset: off,
            mean: s.summary.mean().unwrap_or(0.0),
            ks: clean_ecdf.ks_distance(&Ecdf::new(&s.samples)),
        }
    })
}

/// Render both ablations.
pub fn render_bins(rows: &[BinRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}x", r.factor),
                crate::report::secs(r.predicted),
                crate::report::pct(r.drift),
            ]
        })
        .collect();
    crate::report::table(&["bin-coarsening", "prediction", "drift"], &body)
}

/// Render the clock ablation table.
pub fn render_clock(rows: &[ClockRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                crate::report::secs(r.max_offset),
                crate::report::secs(r.mean),
                format!("{:.3}", r.ks),
            ]
        })
        .collect();
    crate::report::table(&["max-skew", "measured-mean", "KS-vs-clean"], &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pevpm_mpibench::MachineShape;

    #[test]
    fn coarse_bins_drift_but_mildly() {
        let cfg = JacobiConfig {
            xsize: 256,
            iterations: 30,
            serial_secs: 3.24e-3,
        };
        let rows = run_bins(MachineShape { nodes: 4, ppn: 1 }, &cfg, &[1, 4, 16], 20, 5);
        assert_eq!(rows.len(), 3);
        // Identity coarsening = no drift.
        assert!(rows[0].drift.abs() < 1e-12);
        // Sampled quantiles stay bounded: even 16× coarsening moves the
        // prediction by at most a few percent.
        assert!(rows[2].drift.abs() < 0.05, "drift {}", rows[2].drift);
    }

    #[test]
    fn fitted_databases_predict_close_to_histograms() {
        let cfg = JacobiConfig {
            xsize: 256,
            iterations: 30,
            serial_secs: 3.24e-3,
        };
        let res = run_fits(MachineShape { nodes: 4, ppn: 1 }, &cfg, 25, 7);
        assert!(
            res.drift().abs() < 0.03,
            "fit prediction drift {:.2}% (hist {}, fit {})",
            res.drift() * 100.0,
            res.hist_prediction,
            res.fit_prediction
        );
        assert!(
            res.compression() > 3.0,
            "fitted database should be much smaller: {}x",
            res.compression()
        );
        assert!(res.worst_ks < 0.35, "fits too poor: KS {}", res.worst_ks);
    }

    #[test]
    fn clock_skew_distorts_distributions_monotonically() {
        // The KS statistic saturates at 0.5 once every pair's clock
        // displacement exceeds the ~30 µs support of the clean 1 KB
        // distribution, so the monotonicity probe must stay in the
        // sub-saturation regime: 10 µs (partial overlap) vs 100 µs
        // (fully displaced). See EXPERIMENTS.md (Abl-clock).
        let rows = run_clock(4, 1024, &[0.0, 1e-5, 1e-4], 40, 6);
        assert_eq!(rows.len(), 3);
        assert!(
            rows[0].ks < 0.05,
            "zero skew should match clean: {}",
            rows[0].ks
        );
        assert!(
            rows[2].ks > rows[1].ks,
            "bigger skew should distort more: {} vs {}",
            rows[1].ks,
            rows[2].ks
        );
        assert!(rows[2].ks > 0.2, "0.1 ms skew must be clearly visible");
    }
}
