//! Extension experiments: FFT (regular-global) and task farm (irregular)
//! measured-vs-predicted comparisons — the application classes §6 says
//! were validated in refs [9, 10].

use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, EvalConfig};
use pevpm_apps::fft::{self, FftConfig};
use pevpm_apps::taskfarm::{self, FarmConfig};
use pevpm_dist::{CommDist, DistKey, DistTable, Op};
use pevpm_mpibench::{run_collective, CollConfig, CollKind};
use pevpm_mpisim::WorldConfig;

/// A measured-vs-predicted comparison row.
#[derive(Debug, Clone)]
pub struct ExtRow {
    /// Number of ranks.
    pub nprocs: usize,
    /// Measured execution time (packet-level simulation).
    pub measured: f64,
    /// PEVPM full-distribution prediction.
    pub predicted: f64,
}

impl ExtRow {
    /// Signed relative error of the prediction.
    pub fn error(&self) -> f64 {
        (self.predicted - self.measured) / self.measured
    }
}

/// FFT experiment: benchmark Alltoall at each rank count, then compare the
/// PEVPM model against the measured run.
pub fn run_fft(
    rank_counts: &[usize],
    cfg: &FftConfig,
    bench_reps: usize,
    seed: u64,
) -> Vec<ExtRow> {
    // Rank counts are independent experiments; fan them across all cores.
    pevpm::replicate::parallel_map(rank_counts.len(), 0, |i| {
        let n = rank_counts[i];
        // Benchmark the Alltoall collective at the exact block size the
        // FFT will use (plus brackets for interpolation).
        let block = cfg.alltoall_block_bytes(n).max(1);
        let coll = run_collective(&CollConfig {
            world: WorldConfig::perseus(n, 1, seed),
            kind: CollKind::Alltoall,
            sizes: vec![(block / 2).max(1), block, block * 2],
            repetitions: bench_reps,
            warmup: 2,
            clock: None,
        })
        .expect("alltoall benchmark failed");
        let mut table = DistTable::new();
        coll.add_to_table(&mut table, 100);
        // A nominal p2p entry so eager sends in other models don't starve
        // (not used by the FFT model but keeps the table well-formed).
        table.insert(
            DistKey {
                op: Op::Send,
                size: 1024,
                contention: n as u32,
            },
            CommDist::Point(260e-6),
        );
        let timing = TimingModel::distributions(table);

        let measured = fft::run_measured(WorldConfig::perseus(n, 1, seed ^ 0x5a), cfg)
            .expect("measured FFT failed")
            .time;
        let predicted = evaluate(
            &fft::model(cfg),
            &EvalConfig::new(n).with_seed(seed),
            &timing,
        )
        .expect("FFT prediction failed")
        .makespan;
        ExtRow {
            nprocs: n,
            measured,
            predicted,
        }
    })
}

/// Task-farm experiment: measured dynamic farm vs the PEVPM static
/// round-robin model with p2p distributions from a 2×1 ring benchmark
/// (farm messages are small, so contention is negligible and a single
/// benchmark suffices).
pub fn run_farm(
    rank_counts: &[usize],
    cfg: &FarmConfig,
    bench_reps: usize,
    seed: u64,
) -> Vec<ExtRow> {
    let table = crate::fig6::shape_table(
        pevpm_mpibench::MachineShape { nodes: 2, ppn: 1 },
        &[64, cfg.task_bytes.max(65), cfg.task_bytes.max(65) * 2],
        bench_reps,
        seed,
    );
    let timing = TimingModel::distributions(table);
    pevpm::replicate::parallel_map(rank_counts.len(), 0, |i| {
        let n = rank_counts[i];
        let workers = n - 1;
        assert!(
            cfg.tasks.is_multiple_of(workers),
            "model requires tasks divisible by workers"
        );
        let measured = taskfarm::run_measured(WorldConfig::perseus(n, 1, seed ^ 0x77), cfg)
            .expect("measured farm failed")
            .time;
        let predicted = evaluate(
            &taskfarm::model(cfg),
            &EvalConfig::new(n).with_seed(seed),
            &timing,
        )
        .expect("farm prediction failed")
        .makespan;
        ExtRow {
            nprocs: n,
            measured,
            predicted,
        }
    })
}

/// Render extension rows.
pub fn render(name: &str, rows: &[ExtRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.nprocs.to_string(),
                crate::report::secs(r.measured),
                crate::report::secs(r.predicted),
                crate::report::pct(r.error()),
            ]
        })
        .collect();
    format!(
        "{name}\n{}",
        crate::report::table(&["procs", "measured", "predicted", "error"], &body)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_predictions_track_measured() {
        let cfg = FftConfig {
            n1: 64,
            n2: 64,
            flops_per_sec: 50e6,
            iterations: 8,
        };
        let rows = run_fft(&[2, 4], &cfg, 10, 3);
        for r in &rows {
            assert!(
                r.error().abs() < 0.15,
                "{} procs: measured {} predicted {} ({:+.1}%)",
                r.nprocs,
                r.measured,
                r.predicted,
                r.error() * 100.0
            );
        }
    }

    #[test]
    fn farm_predictions_track_measured() {
        let cfg = FarmConfig {
            tasks: 24,
            work_mean_secs: 0.05,
            work_spread_secs: 0.01,
            ..Default::default()
        };
        let rows = run_farm(&[3, 5], &cfg, 10, 4);
        for r in &rows {
            assert!(
                r.error().abs() < 0.15,
                "{} procs: measured {} predicted {} ({:+.1}%)",
                r.nprocs,
                r.measured,
                r.predicted,
                r.error() * 100.0
            );
        }
    }
}
