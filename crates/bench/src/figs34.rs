//! Figures 3 & 4: sampled performance profiles (PDFs) of individual
//! MPI_Isend times.
//!
//! - Figure 3: small messages (0–1024 B) with 64×2 processes — high
//!   contention for the per-node NIC and the backplane. Distributions show
//!   a bounded minimum, a peak near the mean, and a fast-decaying tail.
//! - Figure 4: large messages with 64×1 processes — backplane saturation.
//!   Distributions grow long tails, with detached outliers "at values
//!   related to the network's retransmission timeout parameters".

use pevpm_dist::{Ecdf, Histogram};
use pevpm_mpibench::{run_p2p, Direction, P2pConfig, PairPattern};
use pevpm_mpisim::WorldConfig;

/// Configuration of a PDF experiment.
#[derive(Debug, Clone)]
pub struct PdfConfig {
    /// Nodes × processes-per-node.
    pub nodes: usize,
    /// Processes per node.
    pub ppn: usize,
    /// Message sizes whose PDFs are produced.
    pub sizes: Vec<u64>,
    /// Repetitions per size.
    pub repetitions: usize,
    /// Seed.
    pub seed: u64,
    /// Histogram bins.
    pub bins: usize,
}

impl PdfConfig {
    /// Figure 3: 64×2, sizes 0–1024 B.
    pub fn fig3() -> Self {
        PdfConfig {
            nodes: 64,
            ppn: 2,
            sizes: vec![64, 256, 512, 1024],
            repetitions: 60,
            seed: 3,
            bins: 60,
        }
    }

    /// Figure 4: 64×1, large messages into saturation.
    pub fn fig4() -> Self {
        PdfConfig {
            nodes: 64,
            ppn: 1,
            sizes: vec![16 * 1024, 32 * 1024, 64 * 1024, 256 * 1024],
            repetitions: 15,
            seed: 4,
            bins: 60,
        }
    }
}

/// One size's distribution with summary statistics.
#[derive(Debug, Clone)]
pub struct PdfSeries {
    /// Message size.
    pub size: u64,
    /// Histogram over the observed per-message times.
    pub hist: Histogram,
    /// Exact empirical CDF (kept for tail analysis).
    pub ecdf: Ecdf,
}

/// Run the experiment: per-size PDFs of individual message times.
pub fn run(cfg: &PdfConfig) -> Vec<PdfSeries> {
    let p2p = P2pConfig {
        world: WorldConfig::perseus(cfg.nodes, cfg.ppn, cfg.seed),
        sizes: cfg.sizes.clone(),
        repetitions: cfg.repetitions,
        warmup: (cfg.repetitions / 10).max(2),
        sync_every: 1,
        pattern: PairPattern::HalfSplit,
        direction: Direction::Exchange,
        clock: None,
    };
    let res = run_p2p(&p2p).expect("PDF benchmark failed");
    res.by_size
        .iter()
        .map(|s| PdfSeries {
            size: s.size,
            hist: pevpm_mpibench::histogram_from_samples(&s.samples, cfg.bins),
            ecdf: Ecdf::new(&s.samples),
        })
        .collect()
}

/// Render PDFs as ASCII histograms with the paper's qualitative markers
/// (min, mode, mean, max, outlier tail mass beyond 100 ms).
pub fn render(series: &[PdfSeries]) -> String {
    let mut out = String::new();
    for s in series {
        let sum = s.hist.summary();
        out.push_str(&format!(
            "== size {} B: min {} mode {} mean {} max {} | tail>100ms {:.1}% ==\n",
            s.size,
            crate::report::secs(sum.min().unwrap_or(0.0)),
            crate::report::secs(s.hist.mode().unwrap_or(0.0)),
            crate::report::secs(sum.mean().unwrap_or(0.0)),
            crate::report::secs(sum.max().unwrap_or(0.0)),
            s.hist.tail_mass(0.1) * 100.0
        ));
        // Print only populated bins (the RTO gap would otherwise produce
        // thousands of empty lines).
        let max_mass = s
            .hist
            .pdf_series()
            .map(|(_, m)| m)
            .fold(0.0f64, f64::max)
            .max(1e-12);
        for (mid, mass) in s.hist.pdf_series() {
            if mass > 0.0 {
                out.push_str(&format!(
                    "  {:>10} {:<40} {:.3}\n",
                    crate::report::secs(mid),
                    crate::report::bar(mass / max_mass, 40),
                    mass
                ));
            }
        }
    }
    out
}

/// The Figure-3 shape test: smooth rise from a bounded minimum, peak close
/// to the mean, fast decay (quantified as p99 within a few× the median).
pub fn is_fig3_shape(s: &PdfSeries) -> bool {
    let sum = s.hist.summary();
    let (Some(min), Some(mean)) = (sum.min(), sum.mean()) else {
        return false;
    };
    let Some(mode) = s.hist.mode() else {
        return false;
    };
    let Some(p99) = s.ecdf.quantile(0.99) else {
        return false;
    };
    let Some(med) = s.ecdf.quantile(0.5) else {
        return false;
    };
    min > 0.0 && (mode - mean).abs() / mean < 0.35 && p99 < med * 3.0
}

/// The Figure-4 shape test: long tail and/or detached RTO outliers.
pub fn is_fig4_shape(s: &PdfSeries) -> bool {
    let Some(med) = s.ecdf.quantile(0.5) else {
        return false;
    };
    let Some(max) = s.ecdf.quantile(1.0) else {
        return false;
    };
    // Outliers beyond 100 ms (RTO scale) or a very stretched tail.
    (max > 0.1 && s.hist.tail_mass(0.1) > 0.0) || max > med * 5.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_like_distributions_at_modest_scale() {
        let series = run(&PdfConfig {
            nodes: 16,
            ppn: 2,
            sizes: vec![256, 1024],
            repetitions: 40,
            seed: 5,
            bins: 40,
        });
        assert_eq!(series.len(), 2);
        for s in &series {
            assert!(
                is_fig3_shape(s),
                "size {}: min {:?} mean {:?} mode {:?}",
                s.size,
                s.hist.summary().min(),
                s.hist.summary().mean(),
                s.hist.mode()
            );
        }
    }

    #[test]
    fn fig4_like_tails_under_saturation() {
        let series = run(&PdfConfig {
            nodes: 64,
            ppn: 1,
            sizes: vec![32 * 1024],
            repetitions: 12,
            seed: 6,
            bins: 40,
        });
        assert!(is_fig4_shape(&series[0]), "expected saturation tail");
    }

    #[test]
    fn render_is_compact_despite_outlier_gap() {
        let series = run(&PdfConfig {
            nodes: 8,
            ppn: 1,
            sizes: vec![512],
            repetitions: 20,
            seed: 7,
            bins: 30,
        });
        let text = render(&series);
        assert!(text.lines().count() < 60, "render too long:\n{text}");
        assert!(text.contains("size 512"));
    }
}
