//! Experiment harnesses regenerating every table and figure of the paper.
//!
//! Each module implements one experiment end-to-end (benchmark → model →
//! comparison); the `benches/` targets of this crate call these with
//! paper-scale parameters and print the same rows/series the paper
//! reports, while the workspace tests call them with reduced parameters.
//!
//! | Module | Paper artefact |
//! |--------|----------------|
//! | [`figs12`]  | Figures 1 & 2: average MPI_Isend times vs size per `n×p` shape (+`min` curve, 70%-contention and 16 KB-knee claims) |
//! | [`figs34`]  | Figures 3 & 4: per-size time PDFs under contention, incl. saturation tails and RTO outliers |
//! | [`fig6`]    | Figure 6: Jacobi speedups, measured vs PEVPM under four prediction inputs (+ error table T-err) |
//! | [`tcost`]   | §6 evaluation-cost claim: PEVPM evaluation speed vs simulated execution |
//! | [`ext`]     | FFT and task-farm measured-vs-predicted extensions |
//! | [`ablate`]  | Ablations: histogram bin granularity, clock-sync error |
//! | [`robustness`] | Extension: prediction error on a fault-degraded machine, clean vs refreshed database |
//! | [`report`]  | Small text-table formatting helpers shared by the benches |

pub mod ablate;
pub mod ext;
pub mod fig6;
pub mod figs12;
pub mod figs34;
pub mod report;
pub mod robustness;
pub mod tcost;
