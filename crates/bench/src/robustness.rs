//! Robustness: prediction quality on an *unhealthy* machine.
//!
//! The paper's methodology assumes the benchmarked machine and the
//! predicted machine are the same. This experiment measures what happens
//! when they are not: the Jacobi application is re-measured on a cluster
//! degraded by an injected fault plan (random frame loss and/or per-link
//! rate degradation), and two predictions are compared against it —
//!
//! - **clean-table**: the PEVPM prediction built from the *healthy*
//!   machine's MPIBench database (what an operator would have on file);
//! - **degraded-table**: the prediction rebuilt from an MPIBench sweep
//!   re-run on the degraded machine (the PEVPM workflow applied honestly
//!   to the machine as it now is).
//!
//! The expectation, and what `BENCH_robustness.json` quantifies, is that
//! the clean-table error grows with the injected fault severity while the
//! degraded-table prediction keeps tracking the measurement — the PEVPM
//! pipeline is robust to machine degradation *provided the benchmark
//! database is refreshed*.
//!
//! The zero-fault grid point doubles as a regression anchor: with faults
//! disabled the predicted mean must be **bitwise identical** to the
//! clean baseline (same tables, same RNG streams — the fault layer is
//! pay-for-what-you-use).

use pevpm::timing::TimingModel;
use pevpm::vm::{monte_carlo, EvalConfig};
use pevpm_apps::jacobi::{self, JacobiConfig};
use pevpm_dist::{DistTable, Op};
use pevpm_mpibench::{run_p2p, Direction, MachineShape, P2pConfig, PairPattern};
use pevpm_mpisim::WorldConfig;
use pevpm_netsim::{FaultPlan, LinkDegrade, NetStats};

/// One cell of the fault grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridPoint {
    /// Random per-frame loss probability injected everywhere.
    pub loss_prob: f64,
    /// Link-rate multiplier applied to every node (1.0 = healthy).
    pub rate_factor: f64,
}

/// Configuration of the robustness experiment.
#[derive(Debug, Clone)]
pub struct RobustnessConfig {
    /// Machine shape evaluated.
    pub shape: MachineShape,
    /// Jacobi application parameters.
    pub jacobi: JacobiConfig,
    /// MPIBench repetitions per (shape, size) for each database.
    pub bench_reps: usize,
    /// Monte-Carlo replications per prediction.
    pub mc_reps: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Fault grid to sweep (the healthy point is measured separately).
    pub grid: Vec<GridPoint>,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        RobustnessConfig {
            shape: MachineShape { nodes: 64, ppn: 2 },
            jacobi: JacobiConfig {
                xsize: 256,
                iterations: 1000,
                serial_secs: 3.24e-3,
            },
            bench_reps: 30,
            mc_reps: 8,
            seed: 11,
            grid: vec![
                GridPoint {
                    loss_prob: 0.0,
                    rate_factor: 1.0,
                },
                GridPoint {
                    loss_prob: 0.001,
                    rate_factor: 1.0,
                },
                GridPoint {
                    loss_prob: 0.01,
                    rate_factor: 1.0,
                },
                GridPoint {
                    loss_prob: 0.0,
                    rate_factor: 0.5,
                },
                GridPoint {
                    loss_prob: 0.0,
                    rate_factor: 0.25,
                },
                GridPoint {
                    loss_prob: 0.01,
                    rate_factor: 0.5,
                },
            ],
        }
    }
}

/// One measured/predicted comparison on a degraded machine.
#[derive(Debug, Clone)]
pub struct RobustnessRow {
    /// Fault grid cell.
    pub point: GridPoint,
    /// Measured Jacobi time on the degraded machine.
    pub measured_secs: f64,
    /// Monte-Carlo mean prediction from the healthy-machine database.
    pub clean_pred: f64,
    /// Monte-Carlo mean prediction from the re-benchmarked (degraded)
    /// database.
    pub degraded_pred: f64,
    /// Network counters of the degraded measured run.
    pub net_stats: NetStats,
}

impl RobustnessRow {
    /// Signed relative error of the clean-table prediction.
    pub fn clean_err(&self) -> f64 {
        (self.clean_pred - self.measured_secs) / self.measured_secs
    }

    /// Signed relative error of the degraded-table prediction.
    pub fn degraded_err(&self) -> f64 {
        (self.degraded_pred - self.measured_secs) / self.measured_secs
    }
}

/// Full result of the robustness experiment.
#[derive(Debug, Clone)]
pub struct RobustnessResult {
    /// Machine shape evaluated.
    pub shape: MachineShape,
    /// Healthy-machine Monte-Carlo mean prediction (regression anchor).
    pub baseline_mean: f64,
    /// Healthy-machine measured Jacobi time.
    pub baseline_measured: f64,
    /// Per-grid-point rows.
    pub rows: Vec<RobustnessRow>,
}

/// Build the uniform fault plan for one grid point: `loss_prob`
/// everywhere plus, when `rate_factor < 1`, every node's link degraded by
/// it. The healthy point maps to `None` — exercising the faults-disabled
/// code path the bitwise baseline depends on.
pub fn plan_for(shape: MachineShape, point: GridPoint) -> Option<FaultPlan> {
    let mut plan = FaultPlan {
        loss_prob: point.loss_prob,
        ..FaultPlan::default()
    };
    if point.rate_factor < 1.0 {
        plan.degrade = (0..shape.nodes)
            .map(|node| LinkDegrade {
                node,
                rate_factor: point.rate_factor,
            })
            .collect();
    }
    (!plan.is_empty()).then_some(plan)
}

/// [`crate::fig6::shape_table`] with an optional fault plan applied to
/// the benchmarked cluster: the MPIBench sweep re-run on the degraded
/// machine. `faults: None` is byte-identical to the fig6 pipeline.
pub fn shape_table_with_faults(
    shape: MachineShape,
    sizes: &[u64],
    reps: usize,
    seed: u64,
    faults: Option<FaultPlan>,
) -> DistTable {
    let mut world = WorldConfig::perseus(shape.nodes, shape.ppn, seed);
    world.cluster.faults = faults;
    let p2p = P2pConfig {
        world,
        sizes: sizes.to_vec(),
        repetitions: reps,
        warmup: (reps / 10).max(2),
        sync_every: 1,
        pattern: PairPattern::Ring,
        direction: Direction::Exchange,
        clock: None,
    };
    let res = run_p2p(&p2p).expect("MPIBench ring benchmark failed");
    let mut table = DistTable::new();
    res.add_to_table(&mut table, Op::Send, 100);
    table
}

/// Run the robustness experiment.
pub fn run(cfg: &RobustnessConfig) -> RobustnessResult {
    let halo = cfg.jacobi.halo_bytes();
    let sizes = [halo / 2, halo, halo * 2];
    let model = jacobi::model(&cfg.jacobi);
    let nprocs = cfg.shape.nodes * cfg.shape.ppn;

    // Healthy machine: database, prediction (the regression anchor — this
    // pipeline is exactly the tcost/fig6 one) and measurement.
    let clean_table = shape_table_with_faults(cfg.shape, &sizes, cfg.bench_reps, cfg.seed, None);
    let clean_timing = TimingModel::distributions(clean_table);
    let eval_cfg = EvalConfig::new(nprocs).with_seed(cfg.seed);
    let baseline_mean = monte_carlo(&model, &eval_cfg, &clean_timing, cfg.mc_reps)
        .expect("clean PEVPM evaluation failed")
        .mean;
    let baseline_measured = jacobi::run_measured(
        WorldConfig::perseus(cfg.shape.nodes, cfg.shape.ppn, cfg.seed),
        &cfg.jacobi,
    )
    .expect("clean measured run failed")
    .time;

    // Grid rows are independent: fan out across cores, bitwise identical
    // to a serial loop (each row's work is seeded by cfg.seed alone).
    let rows: Vec<RobustnessRow> = pevpm::replicate::parallel_map(cfg.grid.len(), 0, |i| {
        let point = cfg.grid[i];
        let plan = plan_for(cfg.shape, point);

        // Degraded measurement: the same program, seed and machine, with
        // only the fault plan changed.
        let mut world = WorldConfig::perseus(cfg.shape.nodes, cfg.shape.ppn, cfg.seed);
        world.cluster.faults = plan.clone();
        let measured =
            jacobi::run_measured(world, &cfg.jacobi).expect("degraded measured run failed");

        // Degraded-table prediction: re-benchmark the degraded machine.
        let degraded_table =
            shape_table_with_faults(cfg.shape, &sizes, cfg.bench_reps, cfg.seed, plan);
        let degraded_pred = monte_carlo(
            &model,
            &eval_cfg,
            &TimingModel::distributions(degraded_table),
            cfg.mc_reps,
        )
        .expect("degraded PEVPM evaluation failed")
        .mean;

        RobustnessRow {
            point,
            measured_secs: measured.time,
            clean_pred: baseline_mean,
            degraded_pred,
            net_stats: measured.report.net_stats,
        }
    });

    RobustnessResult {
        shape: cfg.shape,
        baseline_mean,
        baseline_measured,
        rows,
    }
}

/// Render the comparison table.
pub fn render(res: &RobustnessResult) -> String {
    let rows: Vec<Vec<String>> = res
        .rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.3}", r.point.loss_prob),
                format!("{:.2}", r.point.rate_factor),
                crate::report::secs(r.measured_secs),
                crate::report::secs(r.clean_pred),
                crate::report::secs(r.degraded_pred),
                crate::report::pct(r.clean_err()),
                crate::report::pct(r.degraded_err()),
                r.net_stats.faults_injected_losses.to_string(),
                r.net_stats.retransmissions.to_string(),
            ]
        })
        .collect();
    crate::report::table(
        &[
            "loss",
            "rate",
            "measured",
            "clean-pred",
            "degr-pred",
            "err(clean)",
            "err(degr)",
            "inj-loss",
            "retx",
        ],
        &rows,
    )
}

/// Serialise as the `BENCH_robustness.json` CI artifact. When
/// `expected_baseline` is given (the full-scale acceptance anchor), the
/// JSON records whether the healthy-machine prediction reproduced it
/// bitwise.
pub fn to_json(res: &RobustnessResult, expected_baseline: Option<f64>) -> String {
    use pevpm_obs::json::{escape, num};
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"shape\": \"{}\",\n  \"baseline\": {{\"predicted_mean\": {}, \"measured_secs\": {}",
        escape(&res.shape.to_string()),
        num(res.baseline_mean),
        num(res.baseline_measured),
    ));
    if let Some(expected) = expected_baseline {
        out.push_str(&format!(
            ", \"expected_mean\": {}, \"bitwise_match\": {}",
            num(expected),
            res.baseline_mean.to_bits() == expected.to_bits()
        ));
    }
    out.push_str("},\n  \"grid\": [\n");
    for (i, r) in res.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"loss_prob\": {}, \"rate_factor\": {}, \"measured_secs\": {}, \
             \"clean_pred_mean\": {}, \"degraded_pred_mean\": {}, \
             \"clean_err\": {}, \"degraded_err\": {}, \
             \"injected_losses\": {}, \"flap_drops\": {}, \"retransmissions\": {}}}{}\n",
            num(r.point.loss_prob),
            num(r.point.rate_factor),
            num(r.measured_secs),
            num(r.clean_pred),
            num(r.degraded_pred),
            num(r.clean_err()),
            num(r.degraded_err()),
            r.net_stats.faults_injected_losses,
            r.net_stats.faults_flap_drops,
            r.net_stats.retransmissions,
            if i + 1 < res.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> RobustnessConfig {
        RobustnessConfig {
            shape: MachineShape { nodes: 4, ppn: 1 },
            jacobi: JacobiConfig {
                xsize: 64,
                iterations: 30,
                serial_secs: 1e-4,
            },
            bench_reps: 10,
            mc_reps: 3,
            seed: 7,
            grid: vec![
                GridPoint {
                    loss_prob: 0.0,
                    rate_factor: 1.0,
                },
                GridPoint {
                    loss_prob: 0.0,
                    rate_factor: 0.25,
                },
            ],
        }
    }

    #[test]
    fn healthy_grid_point_is_bitwise_identical_to_baseline() {
        let res = run(&small_cfg());
        let healthy = &res.rows[0];
        assert_eq!(
            healthy.degraded_pred.to_bits(),
            res.baseline_mean.to_bits(),
            "faults disabled must reproduce the clean pipeline bitwise"
        );
        assert_eq!(
            healthy.measured_secs.to_bits(),
            res.baseline_measured.to_bits()
        );
        assert_eq!(healthy.net_stats.faults_injected_losses, 0);
    }

    #[test]
    fn refreshing_the_database_restores_prediction_quality() {
        let res = run(&small_cfg());
        let degraded = &res.rows[1];
        // 4x slower links: the measurement moves, the stale clean-table
        // prediction does not, the refreshed one follows it.
        assert!(
            degraded.measured_secs > res.baseline_measured,
            "quartered link rate must slow the measured run: {} vs {}",
            degraded.measured_secs,
            res.baseline_measured
        );
        assert!(
            degraded.clean_pred < degraded.measured_secs,
            "stale database must underestimate the degraded machine"
        );
        assert!(
            degraded.degraded_err().abs() < degraded.clean_err().abs(),
            "re-benchmarked prediction must beat the stale one: degraded {:+.1}% clean {:+.1}%",
            degraded.degraded_err() * 100.0,
            degraded.clean_err() * 100.0
        );
    }

    #[test]
    fn json_artifact_parses_and_flags_the_baseline() {
        let res = run(&small_cfg());
        let js = to_json(&res, Some(res.baseline_mean));
        let parsed = pevpm_obs::json::parse(&js).expect("BENCH_robustness.json parses");
        let baseline = parsed.get("baseline").unwrap();
        assert_eq!(
            baseline.get("bitwise_match").and_then(|b| b.as_bool()),
            Some(true)
        );
        let grid = parsed.get("grid").and_then(|g| g.as_array()).unwrap();
        assert_eq!(grid.len(), 2);
        assert!(grid[1].get("clean_err").and_then(|v| v.as_num()).is_some());
        let text = render(&res);
        assert!(text.contains("err(clean)"));
        assert!(text.contains("err(degr)"));
    }

    #[test]
    fn lossy_links_trigger_injected_losses_and_retransmissions() {
        let mut cfg = small_cfg();
        cfg.grid = vec![GridPoint {
            loss_prob: 0.05,
            rate_factor: 1.0,
        }];
        let res = run(&cfg);
        let row = &res.rows[0];
        assert!(
            row.net_stats.faults_injected_losses > 0,
            "5% loss must drop frames"
        );
        assert!(
            row.net_stats.retransmissions > 0,
            "dropped frames must be retransmitted"
        );
        assert!(
            row.measured_secs > res.baseline_measured,
            "loss recovery must cost measured time"
        );
    }
}
