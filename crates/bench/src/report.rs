//! Minimal text-table formatting for the figure-regeneration benches.

/// Render a table with a header row and aligned columns.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:>w$}", w = w));
        }
        line
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(|s| s.as_str()).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Format seconds with an adaptive unit.
pub fn secs(t: f64) -> String {
    if t < 1e-3 {
        format!("{:.1}us", t * 1e6)
    } else if t < 1.0 {
        format!("{:.2}ms", t * 1e3)
    } else {
        format!("{t:.3}s")
    }
}

/// Format a ratio as a signed percentage.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// A crude ASCII bar for histogram printouts: `#` per unit of mass.
pub fn bar(mass: f64, scale: usize) -> String {
    "#".repeat(((mass * scale as f64).round() as usize).min(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["size", "avg"],
            &[
                vec!["64".into(), "1.0".into()],
                vec!["65536".into(), "123.4".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with("1.0"));
        assert!(lines[3].starts_with("65536"));
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(secs(5e-5), "50.0us");
        assert_eq!(secs(0.0123), "12.30ms");
        assert_eq!(secs(2.5), "2.500s");
        assert_eq!(pct(0.0512), "+5.1%");
        assert_eq!(pct(-0.01), "-1.0%");
        assert_eq!(bar(0.5, 10), "#####");
        assert_eq!(bar(2.0, 10), "##########");
    }
}
