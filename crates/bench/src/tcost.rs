//! T-cost: the paper's model-evaluation-cost claim (§6).
//!
//! "The 11 hours and 15 minutes of processor time consumed by actually
//! running the Jacobi Iteration program on Perseus were simulated in just
//! under 10 minutes by our prototype PEVPM implementation running on just
//! one processor … about 67.5 times its actual execution speed."
//!
//! Here we report two ratios:
//!
//! - **PEVPM vs virtual time**: simulated program-seconds evaluated per
//!   wall-clock second by the PEVPM engine (the paper's 67.5× figure —
//!   except our Rust implementation is far faster than their prototype);
//! - **PEVPM vs packet simulation**: PEVPM evaluation wall time vs the
//!   packet-level `mpisim` execution wall time for the same program — the
//!   relevant cost comparison inside this reproduction.
//!
//! Because PEVPM evaluation is Monte-Carlo (§6: "many iterations are
//! needed to give an accurate average"), the cost experiment runs a full
//! replication batch per shape and aggregates the engine counters across
//! replicas: `steps` sums over replications, `sb_peak` is the worst peak
//! any replication saw, and the wall-time ratios use the *per-evaluation*
//! mean so they stay comparable with a single measured execution.

use pevpm::replicate::ReplicateProfile;
use pevpm::stats::{AdaptivePolicy, AdaptiveReport};
use pevpm::timing::TimingModel;
use pevpm::vm::{monte_carlo, EvalConfig};
use pevpm_apps::jacobi::{self, JacobiConfig};
use pevpm_mpibench::MachineShape;
use pevpm_mpisim::WorldConfig;
use std::time::Instant;

/// Which sampling path the PEVPM engine uses for the cost experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerMode {
    /// Compiled tables — the default allocation-free fast path.
    Compiled,
    /// Interpreted `DistTable` lookups — the pre-compilation baseline,
    /// kept to measure what the compiled layer buys.
    Interpreted,
}

impl std::fmt::Display for SamplerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SamplerMode::Compiled => "compiled",
            SamplerMode::Interpreted => "interpreted",
        })
    }
}

/// Result of the evaluation-cost experiment.
#[derive(Debug, Clone)]
pub struct CostResult {
    /// Machine shape evaluated.
    pub shape: MachineShape,
    /// Sampling path the PEVPM batch ran with.
    pub sampler: SamplerMode,
    /// Monte-Carlo replications in the PEVPM batch.
    pub reps: usize,
    /// Virtual (simulated program) time of the run, in seconds.
    pub virtual_secs: f64,
    /// Wall-clock seconds for the whole PEVPM replication batch.
    pub pevpm_wall: f64,
    /// Wall-clock seconds for the packet-level measured execution.
    pub mpisim_wall: f64,
    /// Directive executions swept across *all* replications.
    pub steps: u64,
    /// Mean directive executions per replication.
    pub mean_steps: f64,
    /// Worst contention-scoreboard peak seen by any replication.
    pub sb_peak: usize,
    /// How the replication batch spread over worker threads.
    pub profile: ReplicateProfile,
}

impl CostResult {
    /// Mean wall-clock seconds for a single PEVPM evaluation.
    pub fn pevpm_eval_wall(&self) -> f64 {
        self.pevpm_wall / self.reps.max(1) as f64
    }

    /// Simulated seconds per PEVPM wall second — the paper's "times its
    /// actual execution speed" metric, counting all processors
    /// (processor-seconds the way the paper's 11h15m figure does). Uses
    /// the per-evaluation mean wall time so the figure describes one
    /// evaluation, not the whole replication batch.
    pub fn realtime_factor(&self) -> f64 {
        let procs = (self.shape.nodes * self.shape.ppn) as f64;
        self.virtual_secs * procs / self.pevpm_eval_wall().max(1e-12)
    }

    /// How much faster one PEVPM evaluation is than one packet-level
    /// simulated execution.
    pub fn vs_packet_sim(&self) -> f64 {
        self.mpisim_wall / self.pevpm_eval_wall().max(1e-12)
    }

    /// Directive executions per wall-clock second across the batch — the
    /// engine's raw sweep rate, independent of how much virtual time each
    /// directive covers.
    pub fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / self.pevpm_wall.max(1e-12)
    }

    /// Complete PEVPM evaluations per wall-clock second across the batch.
    pub fn evals_per_sec(&self) -> f64 {
        self.reps as f64 / self.pevpm_wall.max(1e-12)
    }
}

/// Run the cost comparison for one shape: an `mc_reps`-replication PEVPM
/// Monte-Carlo batch against a single packet-level execution, using the
/// default compiled sampling path.
pub fn run(
    shape: MachineShape,
    jacobi_cfg: &JacobiConfig,
    bench_reps: usize,
    mc_reps: usize,
    seed: u64,
) -> CostResult {
    run_with(
        shape,
        jacobi_cfg,
        bench_reps,
        mc_reps,
        seed,
        SamplerMode::Compiled,
    )
}

/// As [`run`], but with an explicit sampler mode. The compiled and
/// interpreted paths draw the same RNG stream, so their makespans are
/// bitwise identical for histogram/point tables — only wall time differs.
pub fn run_with(
    shape: MachineShape,
    jacobi_cfg: &JacobiConfig,
    bench_reps: usize,
    mc_reps: usize,
    seed: u64,
    sampler: SamplerMode,
) -> CostResult {
    let table = crate::fig6::shape_table(
        shape,
        &[
            jacobi_cfg.halo_bytes() / 2,
            jacobi_cfg.halo_bytes(),
            jacobi_cfg.halo_bytes() * 2,
        ],
        bench_reps,
        seed,
    );
    let timing = match sampler {
        SamplerMode::Compiled => TimingModel::distributions(table),
        SamplerMode::Interpreted => TimingModel::interpreted(table),
    };
    let model = jacobi::model(jacobi_cfg);
    let nprocs = shape.nodes * shape.ppn;

    let mc = monte_carlo(
        &model,
        &EvalConfig::new(nprocs).with_seed(seed),
        &timing,
        mc_reps,
    )
    .expect("PEVPM evaluation failed");

    let t1 = Instant::now();
    let measured = jacobi::run_measured(
        WorldConfig::perseus(shape.nodes, shape.ppn, seed),
        jacobi_cfg,
    )
    .expect("measured run failed");
    let mpisim_wall = t1.elapsed().as_secs_f64();

    CostResult {
        shape,
        sampler,
        reps: mc_reps,
        virtual_secs: mc.mean.max(measured.time),
        pevpm_wall: mc.wall_secs,
        mpisim_wall,
        steps: mc.total_steps(),
        mean_steps: mc.mean_steps(),
        sb_peak: mc.max_sb_peak(),
        profile: mc.profile.clone(),
    }
}

/// One row of the adaptive-replication cost experiment: the same Jacobi
/// program evaluated once under the sequential stopping rule and once as
/// a fixed batch of `policy.max_reps`, at the same base seed. Because
/// adaptive replication walks the identical seed stream and merely stops
/// early, its runs are a bitwise prefix of the fixed batch — the row
/// records that (`prefix_bitwise`) along with how many replications the
/// rule spent and what that saved in wall time.
#[derive(Debug, Clone)]
pub struct AdaptiveCostResult {
    /// Row label — `"easy"` (long, internally-averaging program) or
    /// `"hard"` (short, noisy program).
    pub row: String,
    /// Machine shape evaluated.
    pub shape: MachineShape,
    /// Jacobi iteration count (the difficulty knob).
    pub iterations: usize,
    /// What the stopping rule did: reps chosen, achieved half-width,
    /// convergence, drift.
    pub report: AdaptiveReport,
    /// Mean predicted makespan of the adaptive batch.
    pub mean: f64,
    /// Wall-clock seconds of the adaptive batch.
    pub adaptive_wall: f64,
    /// Wall-clock seconds of the fixed `max_reps` batch.
    pub fixed_wall: f64,
    /// Whether every adaptive replication was bitwise identical to the
    /// same-index replication of the fixed batch (the determinism
    /// contract: early stopping never changes what ran, only how much).
    pub prefix_bitwise: bool,
}

impl AdaptiveCostResult {
    /// Fixed-batch replications per adaptive replication — `2.0` means
    /// the stopping rule did the job with half the evaluations.
    pub fn savings_factor(&self) -> f64 {
        self.report.max_reps as f64 / self.report.reps.max(1) as f64
    }

    /// Wall-clock speedup of the adaptive batch over the fixed batch.
    pub fn wall_speedup(&self) -> f64 {
        self.fixed_wall / self.adaptive_wall.max(1e-12)
    }
}

/// Run one adaptive-vs-fixed row: the stopping rule against a fixed
/// batch of `policy.max_reps` replications on the same seed stream.
pub fn run_adaptive(
    row: &str,
    shape: MachineShape,
    jacobi_cfg: &JacobiConfig,
    bench_reps: usize,
    policy: AdaptivePolicy,
    seed: u64,
) -> AdaptiveCostResult {
    let table = crate::fig6::shape_table(
        shape,
        &[
            jacobi_cfg.halo_bytes() / 2,
            jacobi_cfg.halo_bytes(),
            jacobi_cfg.halo_bytes() * 2,
        ],
        bench_reps,
        seed,
    );
    let timing = TimingModel::distributions(table);
    let model = jacobi::model(jacobi_cfg);
    let nprocs = shape.nodes * shape.ppn;
    let base = EvalConfig::new(nprocs).with_seed(seed);

    let adaptive = monte_carlo(
        &model,
        &base.clone().with_adaptive(policy),
        &timing,
        policy.max_reps,
    )
    .expect("adaptive PEVPM evaluation failed");
    let fixed = monte_carlo(&model, &base, &timing, policy.max_reps)
        .expect("fixed PEVPM evaluation failed");

    let report = adaptive.adaptive.expect("adaptive batch carries a report");
    let prefix_bitwise = adaptive.runs.len() <= fixed.runs.len()
        && adaptive
            .runs
            .iter()
            .zip(&fixed.runs)
            .all(|(a, f)| a.makespan.to_bits() == f.makespan.to_bits());

    AdaptiveCostResult {
        row: row.to_string(),
        shape,
        iterations: jacobi_cfg.iterations,
        report,
        mean: adaptive.mean,
        adaptive_wall: adaptive.wall_secs,
        fixed_wall: fixed.wall_secs,
        prefix_bitwise,
    }
}

/// Render the adaptive rep-savings table.
pub fn render_adaptive(results: &[AdaptiveCostResult]) -> String {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.row.clone(),
                r.shape.to_string(),
                r.iterations.to_string(),
                format!("{:.0e}", r.report.precision),
                format!("{}/{}", r.report.min_reps, r.report.max_reps),
                r.report.reps.to_string(),
                r.report.reps_saved().to_string(),
                format!("{:.1}x", r.savings_factor()),
                format!("{:.2e}", r.report.rel_half_width),
                if r.report.converged { "yes" } else { "NO" }.to_string(),
                format!("{:.1}x", r.wall_speedup()),
                if r.prefix_bitwise { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    crate::report::table(
        &[
            "row",
            "shape",
            "iters",
            "precision",
            "min/max",
            "reps",
            "saved",
            "savings",
            "half-width",
            "converged",
            "wall-speedup",
            "prefix",
        ],
        &rows,
    )
}

/// Serialise adaptive rep-savings rows as the `BENCH_adaptive.json` CI
/// artifact: one record per row plus an `easy_vs_hard` pairing so the CI
/// check can assert the stopping rule actually discriminates (fewer reps
/// on the easy row than the hard one, and a real saving on the easy row).
pub fn adaptive_to_json(results: &[AdaptiveCostResult]) -> String {
    use pevpm_obs::json::{escape, num};
    let mut out = format!(
        "{{\n  \"host_cores\": {},\n  \"rows\": [\n",
        pevpm::replicate::available_threads()
    );
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"row\": \"{}\", \"shape\": \"{}\", \"iterations\": {}, \
             \"precision\": {}, \"confidence\": {}, \"min_reps\": {}, \"max_reps\": {}, \
             \"reps\": {}, \"reps_saved\": {}, \"savings_factor\": {}, \
             \"rel_half_width\": {}, \"converged\": {}, \"drift\": {}, \
             \"mean_secs\": {}, \"adaptive_wall_secs\": {}, \"fixed_wall_secs\": {}, \
             \"wall_speedup\": {}, \"prefix_bitwise\": {}}}{}\n",
            escape(&r.row),
            escape(&r.shape.to_string()),
            r.iterations,
            num(r.report.precision),
            num(r.report.confidence),
            r.report.min_reps,
            r.report.max_reps,
            r.report.reps,
            r.report.reps_saved(),
            num(r.savings_factor()),
            num(r.report.rel_half_width),
            r.report.converged,
            r.report.drift,
            num(r.mean),
            num(r.adaptive_wall),
            num(r.fixed_wall),
            num(r.wall_speedup()),
            r.prefix_bitwise,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"easy_vs_hard\": [\n");
    let pairs: Vec<String> = results
        .iter()
        .filter(|r| r.row == "easy")
        .filter_map(|e| {
            let h = results.iter().find(|r| {
                r.row == "hard" && r.shape.nodes == e.shape.nodes && r.shape.ppn == e.shape.ppn
            })?;
            Some(format!(
                "{{\"shape\": \"{}\", \"easy_reps\": {}, \"hard_reps\": {}, \
                 \"easy_savings_factor\": {}}}",
                escape(&e.shape.to_string()),
                e.report.reps,
                h.report.reps,
                num(e.savings_factor()),
            ))
        })
        .collect();
    for (i, row) in pairs.iter().enumerate() {
        out.push_str(&format!(
            "    {row}{}\n",
            if i + 1 < pairs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One single-evaluation latency measurement: the same Jacobi program
/// evaluated `evals` times at a fixed seed, reporting the median wall
/// time of one evaluation. `eval_threads == 0` is the classic serial
/// engine; any other value routes through the DAG scheduler, whose
/// prediction is bitwise identical at every worker count (asserted here:
/// all `evals` runs must agree to the bit).
#[derive(Debug, Clone)]
pub struct LatencyResult {
    /// Machine shape evaluated.
    pub shape: MachineShape,
    /// Which program: `"jacobi"` (one halo chain — a single SCC) or
    /// `"jacobi-ensemble"` (independent regions — one SCC each).
    pub model: String,
    /// `--eval-threads` value (0 = serial engine).
    pub eval_threads: usize,
    /// How many timed evaluations the median is over.
    pub evals: usize,
    /// Median wall seconds per single evaluation.
    pub p50_eval_wall: f64,
    /// Predicted makespan — identical across the `evals` runs and, for
    /// the single-SCC plain Jacobi, identical to the serial engine's.
    pub virtual_secs: f64,
    /// SCC components the dependency analysis found.
    pub components: usize,
    /// Why the analysis declined, if it did (evaluation then took the
    /// serial path regardless of `eval_threads`).
    pub fallback: Option<String>,
}

/// Measure single-evaluation latency for the §6 Jacobi (or, with
/// `region_size: Some(r)`, the decomposable ensemble variant) at one
/// `eval_threads` setting. Uses the same benchmarked table pipeline as
/// [`run_with`] so rows are comparable with the throughput experiment.
pub fn run_latency(
    shape: MachineShape,
    jacobi_cfg: &JacobiConfig,
    region_size: Option<usize>,
    bench_reps: usize,
    evals: usize,
    seed: u64,
    eval_threads: usize,
) -> LatencyResult {
    assert!(evals >= 1);
    let table = crate::fig6::shape_table(
        shape,
        &[
            jacobi_cfg.halo_bytes() / 2,
            jacobi_cfg.halo_bytes(),
            jacobi_cfg.halo_bytes() * 2,
        ],
        bench_reps,
        seed,
    );
    let timing = TimingModel::distributions(table);
    let (name, model) = match region_size {
        Some(r) => (
            "jacobi-ensemble".to_string(),
            jacobi::ensemble_model(jacobi_cfg, r),
        ),
        None => ("jacobi".to_string(), jacobi::model(jacobi_cfg)),
    };
    let nprocs = shape.nodes * shape.ppn;
    let cfg = EvalConfig::new(nprocs)
        .with_seed(seed)
        .with_eval_threads(eval_threads);
    let plan = pevpm::dag::plan(&model, &cfg).expect("dependency analysis failed");

    let mut walls = Vec::with_capacity(evals);
    let mut makespan_bits = None;
    for _ in 0..evals {
        let t0 = Instant::now();
        let p = pevpm::vm::evaluate(&model, &cfg, &timing).expect("PEVPM evaluation failed");
        walls.push(t0.elapsed().as_secs_f64());
        match makespan_bits {
            None => makespan_bits = Some(p.makespan.to_bits()),
            Some(bits) => assert_eq!(
                bits,
                p.makespan.to_bits(),
                "repeated evaluation at a fixed seed must be bitwise stable"
            ),
        }
    }
    walls.sort_by(f64::total_cmp);
    LatencyResult {
        shape,
        model: name,
        eval_threads,
        evals,
        p50_eval_wall: walls[walls.len() / 2],
        virtual_secs: f64::from_bits(makespan_bits.expect("at least one eval")),
        components: plan.components,
        fallback: plan.fallback,
    }
}

/// Render the single-evaluation latency table.
pub fn render_latency(results: &[LatencyResult]) -> String {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.shape.to_string(),
                r.model.clone(),
                if r.eval_threads == 0 {
                    "serial".to_string()
                } else {
                    format!("dag-{}", r.eval_threads)
                },
                crate::report::secs(r.p50_eval_wall),
                crate::report::secs(r.virtual_secs),
                r.components.to_string(),
                r.fallback.clone().unwrap_or_default(),
            ]
        })
        .collect();
    crate::report::table(
        &[
            "shape",
            "model",
            "engine",
            "p50-eval",
            "virtual",
            "components",
            "fallback",
        ],
        &rows,
    )
}

/// Render the cost table.
pub fn render(results: &[CostResult]) -> String {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.shape.to_string(),
                r.sampler.to_string(),
                crate::report::secs(r.virtual_secs),
                crate::report::secs(r.pevpm_eval_wall()),
                crate::report::secs(r.mpisim_wall),
                format!("{:.0}x", r.realtime_factor()),
                format!("{:.1}x", r.vs_packet_sim()),
                format!("{:.2e}", r.steps_per_sec()),
                r.sb_peak.to_string(),
                r.profile.workers.len().to_string(),
                format!("{:.0}%", r.profile.utilization() * 100.0),
            ]
        })
        .collect();
    crate::report::table(
        &[
            "shape",
            "sampler",
            "virtual",
            "pevpm-eval",
            "mpisim-wall",
            "vs-realtime",
            "vs-packet-sim",
            "steps/s",
            "sb-peak",
            "workers",
            "util",
        ],
        &rows,
    )
}

/// Serialise cost results as machine-readable JSON (the `BENCH_tcost.json`
/// CI artifact): one record per (shape, sampler) run, a `speedups`
/// section pairing compiled against interpreted runs of the same shape,
/// a `latency` section of single-evaluation rows (serial engine vs DAG
/// scheduler at each `eval_threads`), and a `dag_vs_serial` section
/// pairing each DAG row against the serial row of the same (shape,
/// model). `host_cores` records how many physical workers the measuring
/// host actually had — wall-clock speedups are bounded by it (a
/// single-core host can only show ~1x however many components there are),
/// while `virtual_secs` agreement is exact everywhere by construction.
pub fn to_json(results: &[CostResult], latencies: &[LatencyResult]) -> String {
    use pevpm_obs::json::{escape, num};
    let mut out = format!(
        "{{\n  \"host_cores\": {},\n  \"results\": [\n",
        pevpm::replicate::available_threads()
    );
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shape\": \"{}\", \"sampler\": \"{}\", \"reps\": {}, \
             \"virtual_secs\": {}, \"pevpm_wall_secs\": {}, \"mpisim_wall_secs\": {}, \
             \"evals_per_sec\": {}, \"steps\": {}, \"mean_steps\": {}, \
             \"steps_per_sec\": {}, \"sb_peak\": {}, \"realtime_factor\": {}, \
             \"vs_packet_sim\": {}}}{}\n",
            escape(&r.shape.to_string()),
            r.sampler,
            r.reps,
            num(r.virtual_secs),
            num(r.pevpm_wall),
            num(r.mpisim_wall),
            num(r.evals_per_sec()),
            r.steps,
            num(r.mean_steps),
            num(r.steps_per_sec()),
            r.sb_peak,
            num(r.realtime_factor()),
            num(r.vs_packet_sim()),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"speedups\": [\n");
    let pairs: Vec<(String, f64)> = results
        .iter()
        .filter(|r| r.sampler == SamplerMode::Compiled)
        .filter_map(|c| {
            let base = results.iter().find(|r| {
                r.sampler == SamplerMode::Interpreted
                    && r.shape.nodes == c.shape.nodes
                    && r.shape.ppn == c.shape.ppn
            })?;
            Some((
                c.shape.to_string(),
                c.evals_per_sec() / base.evals_per_sec().max(1e-12),
            ))
        })
        .collect();
    for (i, (shape, speedup)) in pairs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shape\": \"{}\", \"compiled_vs_interpreted\": {}}}{}\n",
            escape(shape),
            num(*speedup),
            if i + 1 < pairs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"latency\": [\n");
    for (i, r) in latencies.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shape\": \"{}\", \"model\": \"{}\", \"engine\": \"{}\", \
             \"eval_threads\": {}, \"evals\": {}, \"p50_eval_wall_secs\": {}, \
             \"virtual_secs\": {}, \"components\": {}, \"fallback\": {}}}{}\n",
            escape(&r.shape.to_string()),
            escape(&r.model),
            if r.eval_threads == 0 { "serial" } else { "dag" },
            r.eval_threads,
            r.evals,
            num(r.p50_eval_wall),
            num(r.virtual_secs),
            r.components,
            match &r.fallback {
                Some(reason) => format!("\"{}\"", escape(reason)),
                None => "null".to_string(),
            },
            if i + 1 < latencies.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"dag_vs_serial\": [\n");
    let dag_pairs: Vec<String> = latencies
        .iter()
        .filter(|r| r.eval_threads > 0)
        .filter_map(|d| {
            let serial = latencies.iter().find(|s| {
                s.eval_threads == 0
                    && s.model == d.model
                    && s.shape.nodes == d.shape.nodes
                    && s.shape.ppn == d.shape.ppn
            })?;
            Some(format!(
                "{{\"shape\": \"{}\", \"model\": \"{}\", \"eval_threads\": {}, \
                 \"speedup\": {}, \"components\": {}, \"virtual_match\": {}}}",
                escape(&d.shape.to_string()),
                escape(&d.model),
                d.eval_threads,
                num(serial.p50_eval_wall / d.p50_eval_wall.max(1e-12)),
                d.components,
                d.virtual_secs.to_bits() == serial.virtual_secs.to_bits(),
            ))
        })
        .collect();
    for (i, row) in dag_pairs.iter().enumerate() {
        out.push_str(&format!(
            "    {row}{}\n",
            if i + 1 < dag_pairs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pevpm_is_much_faster_than_realtime_and_packet_sim() {
        let cfg = JacobiConfig {
            xsize: 256,
            iterations: 200,
            serial_secs: 3.24e-3,
        };
        let res = run(MachineShape { nodes: 8, ppn: 1 }, &cfg, 20, 4, 11);
        // The paper's prototype managed 67.5×; a compiled release build
        // should beat real time by a huge margin. Debug builds (plain
        // `cargo test`) are 10-100× slower and share the machine with
        // other tests, so only a loose sanity bound applies there.
        let bar = if cfg!(debug_assertions) { 2.0 } else { 67.5 };
        assert!(
            res.realtime_factor() > bar,
            "realtime factor only {:.1}x (bar {bar}x)",
            res.realtime_factor()
        );
        assert!(
            res.vs_packet_sim() > 1.0,
            "PEVPM should be faster than packet simulation: {:.2}x",
            res.vs_packet_sim()
        );
        assert!(res.steps > 0, "evaluation swept no directives");
        assert!(res.sb_peak >= 1, "scoreboard never held a message");
    }

    #[test]
    fn counters_aggregate_across_the_whole_batch() {
        let cfg = JacobiConfig {
            xsize: 64,
            iterations: 20,
            serial_secs: 1e-4,
        };
        let res = run(MachineShape { nodes: 4, ppn: 1 }, &cfg, 10, 3, 7);
        assert_eq!(res.reps, 3);
        // Total steps must cover every replication, not just one run.
        assert!(
            (res.mean_steps - res.steps as f64 / 3.0).abs() < 1e-9,
            "mean_steps inconsistent with total"
        );
        assert!(res.steps as f64 >= 3.0 * res.mean_steps - 1e-9);
        assert_eq!(res.profile.total_jobs(), 3);
        assert!(res.pevpm_eval_wall() <= res.pevpm_wall + 1e-12);
        let table = render(&[res]);
        assert!(table.contains("workers"));
        assert!(table.contains("util"));
    }

    #[test]
    fn compiled_and_interpreted_runs_agree_and_serialize() {
        let cfg = JacobiConfig {
            xsize: 64,
            iterations: 20,
            serial_secs: 1e-4,
        };
        let shape = MachineShape { nodes: 4, ppn: 1 };
        let c = run_with(shape, &cfg, 10, 3, 7, SamplerMode::Compiled);
        let i = run_with(shape, &cfg, 10, 3, 7, SamplerMode::Interpreted);
        // Same RNG streams, same tables: only wall time may differ.
        assert_eq!(c.virtual_secs.to_bits(), i.virtual_secs.to_bits());
        assert_eq!(c.steps, i.steps);
        assert_eq!(c.sb_peak, i.sb_peak);

        let js = to_json(&[c, i], &[]);
        let parsed = pevpm_obs::json::parse(&js).expect("BENCH_tcost.json parses");
        assert!(parsed
            .get("host_cores")
            .and_then(|v| v.as_num())
            .is_some_and(|v| v >= 1.0));
        let results = parsed.get("results").and_then(|r| r.as_array()).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("sampler").and_then(|s| s.as_str()),
            Some("compiled")
        );
        assert!(results[0]
            .get("evals_per_sec")
            .and_then(|v| v.as_num())
            .is_some_and(|v| v > 0.0));
        let speedups = parsed.get("speedups").and_then(|r| r.as_array()).unwrap();
        assert_eq!(speedups.len(), 1);
        assert!(speedups[0]
            .get("compiled_vs_interpreted")
            .and_then(|v| v.as_num())
            .is_some_and(|v| v > 0.0));
    }

    #[test]
    fn latency_rows_pair_dag_against_serial_bitwise() {
        let cfg = JacobiConfig {
            xsize: 64,
            iterations: 10,
            serial_secs: 1e-4,
        };
        let shape = MachineShape { nodes: 8, ppn: 1 };
        let mut latencies = Vec::new();
        // Serial engine plus the DAG scheduler at each worker count, on
        // both the single-SCC Jacobi and the 4-region ensemble.
        for region in [None, Some(2)] {
            for eval_threads in [0usize, 1, 2, 8] {
                latencies.push(run_latency(shape, &cfg, region, 10, 3, 7, eval_threads));
            }
        }
        let plain: Vec<&LatencyResult> = latencies.iter().filter(|r| r.model == "jacobi").collect();
        let ens: Vec<&LatencyResult> = latencies
            .iter()
            .filter(|r| r.model == "jacobi-ensemble")
            .collect();
        assert_eq!(plain[0].components, 1, "the halo chain is one SCC");
        assert_eq!(ens[0].components, 4, "2-rank regions over 8 ranks");
        // The single-SCC program is bitwise the serial engine at every
        // eval-threads value. The multi-component ensemble draws
        // per-component RNG streams, so its DAG rows are only required
        // to agree with each other — at every worker count.
        for r in &plain {
            assert_eq!(
                r.virtual_secs.to_bits(),
                plain[0].virtual_secs.to_bits(),
                "plain Jacobi diverged at eval-threads={}",
                r.eval_threads
            );
        }
        for r in ens.iter().filter(|r| r.eval_threads > 0) {
            assert_eq!(
                r.virtual_secs.to_bits(),
                ens[1].virtual_secs.to_bits(),
                "ensemble DAG rows diverged at eval-threads={}",
                r.eval_threads
            );
        }

        let js = to_json(&[], &latencies);
        let parsed = pevpm_obs::json::parse(&js).expect("json parses");
        let lat = parsed.get("latency").and_then(|r| r.as_array()).unwrap();
        assert_eq!(lat.len(), 8);
        assert!(lat.iter().all(|r| r
            .get("p50_eval_wall_secs")
            .and_then(|v| v.as_num())
            .unwrap()
            > 0.0));
        let dvs = parsed
            .get("dag_vs_serial")
            .and_then(|r| r.as_array())
            .unwrap();
        assert_eq!(dvs.len(), 6, "three DAG rows per model");
        // The plain-Jacobi rows must report an exact virtual-time match.
        for row in dvs
            .iter()
            .filter(|r| r.get("model").and_then(|m| m.as_str()) == Some("jacobi"))
        {
            assert_eq!(
                row.get("virtual_match").and_then(|v| v.as_bool()),
                Some(true)
            );
            assert!(row.get("speedup").and_then(|v| v.as_num()).unwrap() > 0.0);
        }
    }

    #[test]
    fn adaptive_rows_discriminate_easy_from_hard_and_serialize() {
        let shape = MachineShape { nodes: 4, ppn: 1 };
        let policy = AdaptivePolicy::new(0.01).with_min_reps(2).with_max_reps(16);
        // Long program: hundreds of iterations average the per-message
        // noise internally, so the replication spread is tiny relative to
        // the mean and the rule stops at (or near) the floor. Short
        // program: two iterations keep the relative spread high, so the
        // same precision needs many more replications.
        let easy_cfg = JacobiConfig {
            xsize: 64,
            iterations: 400,
            serial_secs: 1e-4,
        };
        let hard_cfg = JacobiConfig {
            xsize: 64,
            iterations: 2,
            serial_secs: 1e-6,
        };
        let easy = run_adaptive("easy", shape, &easy_cfg, 10, policy, 11);
        let hard = run_adaptive("hard", shape, &hard_cfg, 10, policy, 11);

        assert!(
            easy.report.reps < hard.report.reps,
            "stopping rule failed to discriminate: easy {} reps vs hard {}",
            easy.report.reps,
            hard.report.reps
        );
        assert!(
            easy.savings_factor() >= 2.0,
            "easy row saved only {:.2}x",
            easy.savings_factor()
        );
        assert!(easy.report.converged, "easy row did not converge");
        for r in [&easy, &hard] {
            assert!(
                r.prefix_bitwise,
                "{} row: adaptive runs are not a bitwise prefix of the fixed batch",
                r.row
            );
            assert!(r.report.reps >= policy.min_reps && r.report.reps <= policy.max_reps);
        }

        let table = render_adaptive(&[easy.clone(), hard.clone()]);
        assert!(table.contains("savings"));
        assert!(table.contains("prefix"));

        let js = adaptive_to_json(&[easy, hard]);
        let parsed = pevpm_obs::json::parse(&js).expect("BENCH_adaptive.json parses");
        let rows = parsed.get("rows").and_then(|r| r.as_array()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("row").and_then(|s| s.as_str()), Some("easy"));
        assert_eq!(
            rows[0].get("prefix_bitwise").and_then(|v| v.as_bool()),
            Some(true)
        );
        let pairs = parsed
            .get("easy_vs_hard")
            .and_then(|r| r.as_array())
            .unwrap();
        assert_eq!(pairs.len(), 1);
        let easy_reps = pairs[0].get("easy_reps").and_then(|v| v.as_num()).unwrap();
        let hard_reps = pairs[0].get("hard_reps").and_then(|v| v.as_num()).unwrap();
        assert!(easy_reps < hard_reps);
        assert!(
            pairs[0]
                .get("easy_savings_factor")
                .and_then(|v| v.as_num())
                .unwrap()
                >= 2.0
        );
    }
}
