//! T-cost: the paper's model-evaluation-cost claim (§6).
//!
//! "The 11 hours and 15 minutes of processor time consumed by actually
//! running the Jacobi Iteration program on Perseus were simulated in just
//! under 10 minutes by our prototype PEVPM implementation running on just
//! one processor … about 67.5 times its actual execution speed."
//!
//! Here we report two ratios:
//!
//! - **PEVPM vs virtual time**: simulated program-seconds evaluated per
//!   wall-clock second by the PEVPM engine (the paper's 67.5× figure —
//!   except our Rust implementation is far faster than their prototype);
//! - **PEVPM vs packet simulation**: PEVPM evaluation wall time vs the
//!   packet-level `mpisim` execution wall time for the same program — the
//!   relevant cost comparison inside this reproduction.

use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, EvalConfig};
use pevpm_apps::jacobi::{self, JacobiConfig};
use pevpm_mpibench::MachineShape;
use pevpm_mpisim::WorldConfig;
use std::time::Instant;

/// Result of the evaluation-cost experiment.
#[derive(Debug, Clone)]
pub struct CostResult {
    /// Machine shape evaluated.
    pub shape: MachineShape,
    /// Virtual (simulated program) time of the run, in seconds.
    pub virtual_secs: f64,
    /// Wall-clock seconds for the PEVPM evaluation.
    pub pevpm_wall: f64,
    /// Wall-clock seconds for the packet-level measured execution.
    pub mpisim_wall: f64,
    /// Directive executions the evaluation swept through.
    pub steps: u64,
    /// Peak in-flight messages on the contention scoreboard.
    pub sb_peak: usize,
}

impl CostResult {
    /// Simulated seconds per PEVPM wall second — the paper's "times its
    /// actual execution speed" metric, counting all processors
    /// (processor-seconds the way the paper's 11h15m figure does).
    pub fn realtime_factor(&self) -> f64 {
        let procs = (self.shape.nodes * self.shape.ppn) as f64;
        self.virtual_secs * procs / self.pevpm_wall
    }

    /// How much faster PEVPM evaluation is than packet-level simulation.
    pub fn vs_packet_sim(&self) -> f64 {
        self.mpisim_wall / self.pevpm_wall
    }

    /// Directive executions per wall-clock second — the engine's raw sweep
    /// rate, independent of how much virtual time each directive covers.
    pub fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / self.pevpm_wall.max(1e-12)
    }
}

/// Run the cost comparison for one shape.
pub fn run(
    shape: MachineShape,
    jacobi_cfg: &JacobiConfig,
    bench_reps: usize,
    seed: u64,
) -> CostResult {
    let table = crate::fig6::shape_table(
        shape,
        &[
            jacobi_cfg.halo_bytes() / 2,
            jacobi_cfg.halo_bytes(),
            jacobi_cfg.halo_bytes() * 2,
        ],
        bench_reps,
        seed,
    );
    let timing = TimingModel::distributions(table);
    let model = jacobi::model(jacobi_cfg);
    let nprocs = shape.nodes * shape.ppn;

    let t0 = Instant::now();
    let pred = evaluate(&model, &EvalConfig::new(nprocs).with_seed(seed), &timing)
        .expect("PEVPM evaluation failed");
    let pevpm_wall = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let measured = jacobi::run_measured(
        WorldConfig::perseus(shape.nodes, shape.ppn, seed),
        jacobi_cfg,
    )
    .expect("measured run failed");
    let mpisim_wall = t1.elapsed().as_secs_f64();

    CostResult {
        shape,
        virtual_secs: pred.makespan.max(measured.time),
        pevpm_wall,
        mpisim_wall,
        steps: pred.steps,
        sb_peak: pred.sb_peak,
    }
}

/// Render the cost table.
pub fn render(results: &[CostResult]) -> String {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.shape.to_string(),
                crate::report::secs(r.virtual_secs),
                crate::report::secs(r.pevpm_wall),
                crate::report::secs(r.mpisim_wall),
                format!("{:.0}x", r.realtime_factor()),
                format!("{:.1}x", r.vs_packet_sim()),
                format!("{:.2e}", r.steps_per_sec()),
                r.sb_peak.to_string(),
            ]
        })
        .collect();
    crate::report::table(
        &[
            "shape",
            "virtual",
            "pevpm-wall",
            "mpisim-wall",
            "vs-realtime",
            "vs-packet-sim",
            "steps/s",
            "sb-peak",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pevpm_is_much_faster_than_realtime_and_packet_sim() {
        let cfg = JacobiConfig {
            xsize: 256,
            iterations: 200,
            serial_secs: 3.24e-3,
        };
        let res = run(MachineShape { nodes: 8, ppn: 1 }, &cfg, 20, 11);
        // The paper's prototype managed 67.5×; a compiled release build
        // should beat real time by a huge margin. Debug builds (plain
        // `cargo test`) are 10-100× slower and share the machine with
        // other tests, so only a loose sanity bound applies there.
        let bar = if cfg!(debug_assertions) { 2.0 } else { 67.5 };
        assert!(
            res.realtime_factor() > bar,
            "realtime factor only {:.1}x (bar {bar}x)",
            res.realtime_factor()
        );
        assert!(
            res.vs_packet_sim() > 1.0,
            "PEVPM should be faster than packet simulation: {:.2}x",
            res.vs_packet_sim()
        );
        assert!(res.steps > 0, "evaluation swept no directives");
        assert!(res.sb_peak >= 1, "scoreboard never held a message");
    }
}
