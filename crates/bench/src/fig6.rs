//! Figure 6 (+ the in-text error table T-err): PEVPM-predicted vs measured
//! Jacobi speedups for `2–64 × 1–2` processes on the Perseus-like cluster.
//!
//! Pipeline, exactly as the paper describes:
//!
//! 1. MPIBench measures MPI point-to-point distributions for the halo
//!    message size across every machine shape (the benchmark database).
//! 2. The Jacobi PEVPM model is evaluated per shape with four timing
//!    inputs: full distributions (`dist-nxp`), averages of the matched
//!    `n×p` data (`avg-nxp`), and ping-pong `2×1` averages/minima
//!    (`avg-2x1`, `min-2x1`) — the paper's dashed vs dotted lines.
//! 3. The real Jacobi program runs on the simulated cluster (`measured`).
//! 4. Speedups are reported against the serial execution time, plus the
//!    relative prediction error of each mode.

use pevpm::timing::{PredictionMode, TimingModel};
use pevpm::vm::{evaluate, EvalConfig};
use pevpm_apps::jacobi::{self, JacobiConfig};
use pevpm_dist::{DistTable, Op, PointKind};
use pevpm_mpibench::{run_p2p, Direction, MachineShape, P2pConfig, PairPattern};
use pevpm_mpisim::WorldConfig;

/// The prediction-mode keys, in the order they are reported.
pub const MODES: [&str; 4] = ["dist-nxp", "avg-nxp", "avg-2x1", "min-2x1"];

/// Configuration of the Figure 6 experiment.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Machine shapes to evaluate.
    pub shapes: Vec<MachineShape>,
    /// Jacobi application parameters.
    pub jacobi: JacobiConfig,
    /// MPIBench repetitions per (shape, size) for the database.
    pub bench_reps: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            shapes: pevpm_mpibench::paper_shapes(),
            jacobi: JacobiConfig::default(),
            bench_reps: 60,
            seed: 2004,
        }
    }
}

/// One row of the Figure 6 data: a machine shape with its measured and
/// predicted times/speedups.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Machine shape.
    pub shape: MachineShape,
    /// Measured execution time (real program on the simulated cluster).
    pub measured: f64,
    /// Measured speedup vs the serial time.
    pub measured_speedup: f64,
    /// Predicted times, keyed like [`MODES`].
    pub predicted: Vec<(String, f64)>,
}

impl Fig6Row {
    /// Predicted time for a mode.
    pub fn predicted_time(&self, mode: &str) -> Option<f64> {
        self.predicted
            .iter()
            .find(|(m, _)| m == mode)
            .map(|(_, t)| *t)
    }

    /// Signed relative prediction error of a mode.
    pub fn error(&self, mode: &str) -> Option<f64> {
        self.predicted_time(mode)
            .map(|t| (t - self.measured) / self.measured)
    }
}

/// Full result of the experiment.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// Serial (1-process, no-communication) execution time.
    pub t_serial: f64,
    /// Per-shape rows.
    pub rows: Vec<Fig6Row>,
    /// The 2×1 ping-pong database used for the baseline predictions.
    pub pingpong_table: DistTable,
}

/// Run the MPIBench neighbour-exchange (ring) benchmark for one machine
/// shape, producing its distribution table. Following Grove's methodology
/// the benchmark pattern matches the application's locality class
/// (regular-local halo exchange ⇒ ring).
pub fn shape_table(shape: MachineShape, sizes: &[u64], reps: usize, seed: u64) -> DistTable {
    shape_table_ops(shape, sizes, reps, seed, &[Op::Send])
}

/// [`shape_table`] recording the measured distributions under several MPI
/// operations at once. The ring-exchange timings stand in for every
/// point-to-point flavour (the engine's Send↔Isend fallback covers the
/// gap when only one is recorded); recording both explicitly gives
/// fuzzed programs (`pevpm-testkit`) exact-key lookups.
pub fn shape_table_ops(
    shape: MachineShape,
    sizes: &[u64],
    reps: usize,
    seed: u64,
    ops: &[Op],
) -> DistTable {
    let p2p = P2pConfig {
        world: WorldConfig::perseus(shape.nodes, shape.ppn, seed),
        sizes: sizes.to_vec(),
        repetitions: reps,
        warmup: (reps / 10).max(2),
        sync_every: 1,
        pattern: PairPattern::Ring,
        direction: Direction::Exchange,
        clock: None,
    };
    let res = run_p2p(&p2p).expect("MPIBench ring benchmark failed");
    let mut table = DistTable::new();
    for &op in ops {
        res.add_to_table(&mut table, op, 100);
    }
    table
}

/// Measure the *uncontended* one-way transit distribution: a single
/// HalfSplit pair on a `2×1` world, barrier-resynchronised before every
/// message, recorded at contention 1. This is the distribution a program
/// with at most one message in flight at a time samples from — the
/// `pevpm-testkit` statistical oracle pairs it with token-relay programs,
/// where the ring-exchange table's contention level would systematically
/// overcharge every hop.
pub fn oneway_table_ops(sizes: &[u64], reps: usize, seed: u64, ops: &[Op]) -> DistTable {
    let p2p = P2pConfig {
        world: WorldConfig::perseus(2, 1, seed),
        sizes: sizes.to_vec(),
        repetitions: reps,
        warmup: (reps / 10).max(2),
        sync_every: 1,
        pattern: PairPattern::HalfSplit,
        direction: Direction::OneWay,
        clock: None,
    };
    let res = run_p2p(&p2p).expect("MPIBench one-way benchmark failed");
    let mut table = DistTable::new();
    for &op in ops {
        res.add_to_table(&mut table, op, 100);
    }
    table
}

/// Build the four timing models the paper's Figure 6 legend compares, for
/// one machine shape: the *matched* `n×p` benchmark data (full
/// distributions or averages) and the `2×1` ping-pong slice (averages or
/// minima).
pub fn timing_models(matched: &DistTable, pingpong: &DistTable) -> Vec<(String, TimingModel)> {
    vec![
        (
            "dist-nxp".into(),
            TimingModel::distributions(matched.clone()),
        ),
        (
            "avg-nxp".into(),
            TimingModel::point(matched.clone(), PointKind::Average),
        ),
        (
            "avg-2x1".into(),
            TimingModel::pingpong_only(pingpong, PredictionMode::Average),
        ),
        (
            "min-2x1".into(),
            TimingModel::pingpong_only(pingpong, PredictionMode::Minimum),
        ),
    ]
}

/// Run the Figure 6 experiment.
pub fn run(cfg: &Fig6Config) -> Fig6Result {
    let halo = cfg.jacobi.halo_bytes();
    let sizes = vec![halo / 2, halo, halo * 2];

    // The 2×1 ping-pong database backing the "simplistic" baselines.
    let pingpong_table = shape_table(
        MachineShape { nodes: 2, ppn: 1 },
        &sizes,
        cfg.bench_reps,
        cfg.seed,
    );

    let t_serial = cfg.jacobi.iterations as f64 * cfg.jacobi.serial_secs;
    let model = jacobi::model(&cfg.jacobi);

    // Rows are independent experiments seeded only by the shape index, so
    // they fan out across all cores (bitwise identical to the serial loop).
    let rows: Vec<Fig6Row> = pevpm::replicate::parallel_map(cfg.shapes.len(), 0, |i| {
        let shape = cfg.shapes[i];
        let nprocs = shape.nodes * shape.ppn;
        let row_seed = pevpm::replicate::replica_seed(cfg.seed, i as u64);
        // Matched n×p benchmark database for this shape.
        let matched = shape_table(shape, &sizes, cfg.bench_reps, row_seed);
        let models = timing_models(&matched, &pingpong_table);

        // Measured: the real program on the simulated cluster.
        let world = WorldConfig::perseus(shape.nodes, shape.ppn, cfg.seed ^ ((i as u64) << 8));
        let measured = jacobi::run_measured(world, &cfg.jacobi)
            .expect("measured Jacobi failed")
            .time;

        // Predictions.
        let mut predicted = Vec::new();
        for (name, timing) in &models {
            let p = evaluate(&model, &EvalConfig::new(nprocs).with_seed(row_seed), timing)
                .expect("PEVPM evaluation failed");
            predicted.push((name.clone(), p.makespan));
        }
        Fig6Row {
            shape,
            measured,
            measured_speedup: t_serial / measured,
            predicted,
        }
    });
    Fig6Result {
        t_serial,
        rows,
        pingpong_table,
    }
}

/// Render the figure data as the speedup table the paper plots.
pub fn render(res: &Fig6Result) -> String {
    let mut rows = Vec::new();
    for r in &res.rows {
        let mut row = vec![r.shape.to_string(), format!("{:.2}", r.measured_speedup)];
        for mode in MODES {
            let t = r.predicted_time(mode).unwrap_or(f64::NAN);
            row.push(format!("{:.2}", res.t_serial / t));
        }
        for mode in MODES {
            row.push(crate::report::pct(r.error(mode).unwrap_or(f64::NAN)));
        }
        rows.push(row);
    }
    let header = [
        "shape",
        "measured",
        "S(dist-nxp)",
        "S(avg-nxp)",
        "S(avg-2x1)",
        "S(min-2x1)",
        "err(dist)",
        "err(avg-nxp)",
        "err(avg-2x1)",
        "err(min-2x1)",
    ];
    crate::report::table(&header, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reduced-size end-to-end check: the PEVPM full-distribution
    /// prediction must track the measured time far better than the
    /// ping-pong baselines, and min-2x1 must overestimate speedup.
    #[test]
    fn distribution_predictions_beat_baselines() {
        let cfg = Fig6Config {
            shapes: vec![
                MachineShape { nodes: 2, ppn: 1 },
                MachineShape { nodes: 8, ppn: 1 },
                MachineShape { nodes: 16, ppn: 1 },
            ],
            jacobi: JacobiConfig {
                xsize: 256,
                iterations: 60,
                serial_secs: 3.24e-3,
            },
            bench_reps: 30,
            seed: 7,
        };
        let res = run(&cfg);
        assert_eq!(res.rows.len(), 3);
        for row in &res.rows {
            let dist_err = row.error("dist-nxp").unwrap().abs();
            assert!(
                dist_err < 0.10,
                "{}: dist prediction off by {:.1}% (measured {}, predicted {:?})",
                row.shape,
                dist_err * 100.0,
                row.measured,
                row.predicted,
            );
            // The ideal-minimum baseline must overestimate performance
            // (predict a shorter time than measured).
            let min_t = row.predicted_time("min-2x1").unwrap();
            assert!(
                min_t < row.measured,
                "{}: min-2x1 should underestimate time",
                row.shape
            );
        }
        // At the largest shape the dist prediction must beat min-2x1.
        let last = res.rows.last().unwrap();
        assert!(
            last.error("dist-nxp").unwrap().abs() < last.error("min-2x1").unwrap().abs(),
            "dist {:?} vs min {:?}",
            last.error("dist-nxp"),
            last.error("min-2x1")
        );
    }

    /// An instrumented evaluation of the Figure 6 Jacobi model must leave
    /// non-empty contention-level and scoreboard-occupancy histograms in
    /// the metrics registry — the halo exchange always has messages in
    /// flight concurrently.
    #[test]
    fn instrumented_jacobi_records_contention_and_occupancy() {
        use pevpm::vm::evaluate;
        use std::sync::Arc;

        let shape = MachineShape { nodes: 8, ppn: 1 };
        let jcfg = JacobiConfig {
            xsize: 256,
            iterations: 40,
            serial_secs: 3.24e-3,
        };
        let table = shape_table(
            shape,
            &[
                jcfg.halo_bytes() / 2,
                jcfg.halo_bytes(),
                jcfg.halo_bytes() * 2,
            ],
            20,
            5,
        );
        let timing = TimingModel::distributions(table);
        let reg = Arc::new(pevpm_obs::Registry::new());
        let cfg = pevpm::vm::EvalConfig::new(8)
            .with_seed(5)
            .with_metrics(reg.clone());
        let p = evaluate(&pevpm_apps::jacobi::model(&jcfg), &cfg, &timing).unwrap();
        assert!(p.makespan > 0.0);

        let contention = reg.histogram("vm.contention_at_injection", 0.0, 256.0, 256);
        let occupancy = reg.histogram("vm.scoreboard_occupancy", 0.0, 256.0, 256);
        assert!(
            contention.count() > 0,
            "no contention levels recorded at message injection"
        );
        assert!(occupancy.count() > 0, "no scoreboard occupancy recorded");
        // Halo exchange: neighbours inject while other messages are in
        // flight, so contention above 1 must appear.
        assert!(
            contention.max().unwrap_or(0.0) > 1.0,
            "contention never exceeded a single in-flight message"
        );
        assert_eq!(reg.counter("vm.evaluations").get(), 1);
        assert!(reg.counter("vm.steps").get() > 0);
    }
}
