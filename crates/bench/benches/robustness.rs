//! Robustness: Jacobi prediction error across a fault grid (frame loss ×
//! link degradation), comparing the stale clean-machine database against
//! one refreshed on the degraded machine.
//!
//! Run with `cargo bench -p pevpm-bench --bench robustness`.
//! Writes a machine-readable `BENCH_robustness.json` (override the path
//! with `BENCH_ROBUSTNESS_OUT`). Set `BENCH_ROBUSTNESS_TINY=1` for the CI
//! smoke grid (8×1, 100 iterations) — the full run sweeps the paper's
//! 64×2 shape and anchors the zero-fault prediction bitwise against the
//! clean-pipeline baseline.

use pevpm_apps::jacobi::JacobiConfig;
use pevpm_bench::robustness::{self, GridPoint, RobustnessConfig};
use pevpm_mpibench::MachineShape;

/// Healthy-machine 64×2 Monte-Carlo mean of the clean pipeline
/// (`bench_reps=30, mc_reps=8, seed=11`, compiled sampler). The fault
/// layer must not perturb this by a single bit when disabled.
const BASELINE_64X2_MEAN: f64 = 0.648_736_049_328_806_8;

fn main() {
    let tiny = std::env::var("BENCH_ROBUSTNESS_TINY").is_ok();
    let cfg = if tiny {
        RobustnessConfig {
            shape: MachineShape { nodes: 8, ppn: 1 },
            jacobi: JacobiConfig {
                xsize: 256,
                iterations: 100,
                serial_secs: 3.24e-3,
            },
            bench_reps: 15,
            mc_reps: 4,
            seed: 11,
            grid: vec![
                GridPoint {
                    loss_prob: 0.0,
                    rate_factor: 1.0,
                },
                GridPoint {
                    loss_prob: 0.01,
                    rate_factor: 1.0,
                },
                GridPoint {
                    loss_prob: 0.0,
                    rate_factor: 0.5,
                },
            ],
        }
    } else {
        RobustnessConfig::default()
    };

    eprintln!(
        "[robustness] sweeping {} fault grid points on {} ({}-iteration Jacobi)...",
        cfg.grid.len(),
        cfg.shape,
        cfg.jacobi.iterations
    );
    let res = robustness::run(&cfg);

    println!(
        "Robustness: prediction error on a degraded {} machine\n",
        cfg.shape
    );
    println!("{}", robustness::render(&res));
    println!(
        "clean baseline: predicted {:.6} s, measured {:.6} s\n\
         'err(clean)' uses the stale healthy-machine database; 'err(degr)' \
         re-benchmarks the degraded machine first. The PEVPM pipeline stays \
         accurate under faults provided the database is refreshed.",
        res.baseline_mean, res.baseline_measured
    );

    let expected = (!tiny).then_some(BASELINE_64X2_MEAN);
    if let Some(expected) = expected {
        assert_eq!(
            res.baseline_mean.to_bits(),
            expected.to_bits(),
            "faults-disabled 64x2 prediction drifted from the clean baseline: \
             got {:.16}, expected {expected:.16}",
            res.baseline_mean
        );
        eprintln!("[robustness] zero-fault baseline bitwise-identical to {expected}");
    }

    let out = std::env::var("BENCH_ROBUSTNESS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_robustness.json").to_string()
    });
    let json = robustness::to_json(&res, expected);
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("[robustness] machine-readable results written to {out}"),
        Err(e) => eprintln!("[robustness] cannot write {out}: {e}"),
    }
}
