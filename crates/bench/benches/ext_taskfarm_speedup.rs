//! Ext-farm: measured vs PEVPM-predicted execution of the irregular
//! bag-of-tasks application (§6 mentions this class was validated in
//! refs [9,10]). The model uses wildcard receives at the master and a
//! static round-robin schedule approximation (DESIGN.md).
//!
//! Run with `cargo bench -p pevpm-bench --bench ext_taskfarm_speedup`.

use pevpm_apps::taskfarm::FarmConfig;
use pevpm_bench::ext;

fn main() {
    let cfg = FarmConfig {
        tasks: 240,
        work_mean_secs: 0.02,
        work_spread_secs: 0.008,
        ..Default::default()
    };
    eprintln!(
        "[ext-farm] {} tasks, mean work {} s...",
        cfg.tasks, cfg.work_mean_secs
    );
    // Worker counts dividing the task count: 2, 4, 8, 16 workers.
    let rows = ext::run_farm(&[3, 5, 9, 17], &cfg, 25, 5);
    println!(
        "{}",
        ext::render(
            "Ext-farm: dynamic task farm, measured vs PEVPM(dist) predictions",
            &rows
        )
    );
    let worst = rows.iter().map(|r| r.error().abs()).fold(0.0, f64::max);
    println!("worst |error|: {:.1}%", worst * 100.0);
}
