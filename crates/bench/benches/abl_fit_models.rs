//! Abl-fit: §2's "parametrised functions to model the PDFs" — replace the
//! benchmark histograms by best-fit shifted exponential / log-normal /
//! gamma models and compare prediction quality and database size.
//!
//! Run with `cargo bench -p pevpm-bench --bench abl_fit_models`.

use pevpm_apps::jacobi::JacobiConfig;
use pevpm_bench::ablate;
use pevpm_mpibench::MachineShape;

fn main() {
    let jacobi = JacobiConfig {
        xsize: 256,
        iterations: 200,
        serial_secs: 3.24e-3,
    };
    println!("Abl-fit: histogram vs best-fit parametric benchmark databases\n");
    println!(
        "{:<8} {:>12} {:>12} {:>8} {:>12} {:>8}",
        "shape", "hist-pred", "fit-pred", "drift", "compression", "worst-KS"
    );
    for shape in [
        MachineShape { nodes: 4, ppn: 1 },
        MachineShape { nodes: 16, ppn: 1 },
        MachineShape { nodes: 16, ppn: 2 },
    ] {
        let r = ablate::run_fits(shape, &jacobi, 60, 9);
        println!(
            "{:<8} {:>10.2}ms {:>10.2}ms {:>7.2}% {:>11.1}x {:>8.3}",
            shape.to_string(),
            r.hist_prediction * 1e3,
            r.fit_prediction * 1e3,
            r.drift() * 100.0,
            r.compression(),
            r.worst_ks
        );
    }
    println!(
        "\nunimodal nx1 distributions fit well (small KS, tiny drift) at a large\n\
         compression factor; bimodal SMP (nx2) distributions fit poorly — exactly why\n\
         the paper keeps full histograms as the primary representation."
    );
}
