//! Collective-operation survey: MPIBench's per-process, globally-clocked
//! measurement of collectives (§2 says MPIBench covers "all of the main
//! types of point-to-point and collective communication operations in
//! MPI"; the paper's figures show only MPI_Isend and refer to Grove's
//! thesis for the rest).
//!
//! Run with `cargo bench -p pevpm-bench --bench coll_survey`.

use pevpm_bench::report;
use pevpm_mpibench::{run_collective, CollConfig, CollKind};
use pevpm_mpisim::WorldConfig;

fn main() {
    let shapes = [(4usize, 1usize), (16, 1), (32, 1), (16, 2)];
    let kinds = [
        (CollKind::Barrier, 0u64),
        (CollKind::Bcast, 1024),
        (CollKind::Reduce, 1024),
        (CollKind::Allreduce, 1024),
        (CollKind::Alltoall, 1024),
    ];
    eprintln!(
        "[coll] surveying {} collectives over {} shapes...",
        kinds.len(),
        shapes.len()
    );

    let mut rows = Vec::new();
    for &(kind, size) in &kinds {
        let mut row = vec![format!("{kind:?}({size}B)")];
        for &(nodes, ppn) in &shapes {
            let res = run_collective(&CollConfig {
                world: WorldConfig::perseus(nodes, ppn, 7),
                kind,
                sizes: vec![size],
                repetitions: 25,
                warmup: 3,
                clock: None,
            })
            .expect("collective benchmark failed");
            let s = &res.by_size[0].summary;
            row.push(format!(
                "{:.0}/{:.0}",
                s.mean().unwrap_or(0.0) * 1e6,
                s.max().unwrap_or(0.0) * 1e6
            ));
        }
        rows.push(row);
    }

    let header: Vec<String> = std::iter::once("collective".to_string())
        .chain(shapes.iter().map(|&(n, p)| format!("{n}x{p} avg/max us")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    println!("Collective completion times per process (avg/max, us)\n");
    println!("{}", report::table(&header_refs, &rows));
    println!(
        "log-scaling of barrier/bcast/reduce with rank count and the superlinear cost\n\
         of alltoall are emergent from the binomial-tree/ring/pairwise algorithms."
    );
}
