//! Figure 3: sampled performance profiles (PDFs) for MPI_Isend using small
//! message sizes with 64×2 processes — high contention for the local
//! network interface and the backplane.
//!
//! Run with `cargo bench -p pevpm-bench --bench fig3_pdf_small`.

use pevpm_bench::figs34;

fn main() {
    let cfg = figs34::PdfConfig::fig3();
    eprintln!(
        "[fig3] measuring PDFs at {}x{} for sizes {:?}...",
        cfg.nodes, cfg.ppn, cfg.sizes
    );
    let series = figs34::run(&cfg);
    println!("Figure 3: MPI_Isend time PDFs, 64x2 processes, small messages\n");
    println!("{}", figs34::render(&series));
    for s in &series {
        println!(
            "shape check (bounded min, peak near mean, fast tail): size {} -> {}",
            s.size,
            if figs34::is_fig3_shape(s) {
                "OK"
            } else {
                "DIFFERS (see EXPERIMENTS.md)"
            }
        );
    }
}
