//! Criterion micro-benchmarks of the reproduction's engines: the
//! packet-level network simulator, the MPI world scheduler, histogram
//! sampling, and PEVPM evaluation throughput.
//!
//! Run with `cargo bench -p pevpm-bench --bench engine_micro`.

use criterion::{criterion_group, criterion_main, Criterion};
use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, monte_carlo, EvalConfig};
use pevpm_apps::jacobi::{self, JacobiConfig};
use pevpm_dist::{CommDist, DistKey, DistTable, Histogram, Op};
use pevpm_mpisim::{World, WorldConfig};
use pevpm_netsim::{ClusterConfig, Network, Time};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn netsim_throughput(c: &mut Criterion) {
    c.bench_function("netsim: 64 ranks x 4KB all-exchange", |b| {
        b.iter(|| {
            let mut net = Network::new(ClusterConfig::perseus(64), 1);
            for i in 0..32usize {
                net.start_transfer(Time::ZERO, i, i + 32, 4096);
                net.start_transfer(Time::ZERO, i + 32, i, 4096);
            }
            black_box(net.run_to_completion().len())
        })
    });
}

fn mpisim_pingpong(c: &mut Criterion) {
    c.bench_function("mpisim: 100-rep ping-pong world", |b| {
        b.iter(|| {
            let report = World::run(WorldConfig::ideal(2, 1), |rank| {
                for i in 0..100u64 {
                    if rank.rank() == 0 {
                        rank.send_size(1, i, 1024);
                        let _ = rank.recv(1, i);
                    } else {
                        let _ = rank.recv(0, i);
                        rank.send_size(0, i, 1024);
                    }
                }
            })
            .unwrap();
            black_box(report.messages)
        })
    });
}

fn histogram_sampling(c: &mut Criterion) {
    let samples: Vec<f64> = (0..10_000)
        .map(|i| 1e-4 + (i % 997) as f64 * 1e-7)
        .collect();
    let h = Histogram::from_samples(&samples, 1e-7);
    let mut rng = SmallRng::seed_from_u64(7);
    c.bench_function("dist: histogram inverse-CDF sample", |b| {
        b.iter(|| black_box(h.sample(&mut rng)))
    });
}

/// Off-grid table sampling — the Monte-Carlo hot path: a (size, contention)
/// query between grid points blends up to four neighbour distributions.
/// The interpreted row allocates axis and neighbour vectors per draw; the
/// compiled row is allocation-free.
fn table_sampling(c: &mut Criterion) {
    use pevpm_dist::CompiledTable;

    let mut table = DistTable::new();
    let samples: Vec<f64> = (0..1000).map(|i| 250e-6 + (i % 97) as f64 * 1e-6).collect();
    for &size in &[512u64, 1024, 4096] {
        for &contention in &[1u32, 8, 64] {
            table.insert(
                DistKey {
                    op: Op::Send,
                    size,
                    contention,
                },
                CommDist::Hist(Histogram::from_samples(&samples, 1e-6)),
            );
        }
    }
    let compiled = CompiledTable::compile(&table).unwrap();
    let mut rng = SmallRng::seed_from_u64(7);
    c.bench_function("dist: off-grid blended sample (interpreted)", |b| {
        b.iter(|| black_box(table.sample_at(Op::Send, 2000.0, 5.0, &mut rng)))
    });
    c.bench_function("dist: off-grid blended sample (compiled)", |b| {
        b.iter(|| black_box(compiled.sample_at(Op::Send, 2000.0, 5.0, &mut rng)))
    });
}

fn pevpm_eval(c: &mut Criterion) {
    let mut table = DistTable::new();
    let samples: Vec<f64> = (0..1000).map(|i| 250e-6 + (i % 97) as f64 * 1e-6).collect();
    for &contention in &[2u32, 64] {
        table.insert(
            DistKey {
                op: Op::Send,
                size: 1024,
                contention,
            },
            CommDist::Hist(Histogram::from_samples(&samples, 1e-6)),
        );
    }
    let timing = TimingModel::distributions(table.clone());
    let interpreted = TimingModel::interpreted(table);
    let cfg = JacobiConfig {
        xsize: 256,
        iterations: 100,
        serial_secs: 3.24e-3,
    };
    let model = jacobi::model(&cfg);

    // Both sampling paths invert the same uniforms, so the predictions are
    // bitwise identical — only the wall clock separates the two rows.
    let a = evaluate(&model, &EvalConfig::new(32).with_seed(1), &timing).unwrap();
    let b = evaluate(&model, &EvalConfig::new(32).with_seed(1), &interpreted).unwrap();
    assert_eq!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "compiled sampler must not perturb predictions"
    );

    c.bench_function(
        "pevpm: 32-proc 100-iter Jacobi evaluation (compiled)",
        |b| {
            b.iter(|| {
                black_box(
                    evaluate(&model, &EvalConfig::new(32).with_seed(1), &timing)
                        .unwrap()
                        .makespan,
                )
            })
        },
    );
    c.bench_function(
        "pevpm: 32-proc 100-iter Jacobi evaluation (interpreted)",
        |b| {
            b.iter(|| {
                black_box(
                    evaluate(&model, &EvalConfig::new(32).with_seed(1), &interpreted)
                        .unwrap()
                        .makespan,
                )
            })
        },
    );
}

/// Replication throughput of the parallel Monte-Carlo engine: the same
/// 32-replication batch on 1 worker thread vs 4. The outputs are bitwise
/// identical (enforced by `crates/pevpm/tests/determinism.rs`); only the
/// wall clock changes, and the speedup scales with the physical cores the
/// host actually has (a single-core host shows ~1x).
fn replication_throughput(c: &mut Criterion) {
    let mut table = DistTable::new();
    let samples: Vec<f64> = (0..1000).map(|i| 250e-6 + (i % 97) as f64 * 1e-6).collect();
    for &contention in &[2u32, 64] {
        table.insert(
            DistKey {
                op: Op::Send,
                size: 1024,
                contention,
            },
            CommDist::Hist(Histogram::from_samples(&samples, 1e-6)),
        );
    }
    let timing = TimingModel::distributions(table);
    let cfg = JacobiConfig {
        xsize: 256,
        iterations: 60,
        serial_secs: 3.24e-3,
    };
    let model = jacobi::model(&cfg);

    for threads in [1usize, 4] {
        let eval_cfg = EvalConfig::new(16).with_seed(1).with_threads(threads);
        c.bench_function(
            &format!("pevpm: 32-replication Monte-Carlo batch ({threads} thread)"),
            |b| b.iter(|| black_box(monte_carlo(&model, &eval_cfg, &timing, 32).unwrap().mean)),
        );
    }

    // One-shot throughput report (evaluations/second), the number the
    // tcost table tracks.
    let serial = monte_carlo(
        &model,
        &EvalConfig::new(16).with_seed(1).with_threads(1),
        &timing,
        32,
    )
    .unwrap();
    let parallel = monte_carlo(
        &model,
        &EvalConfig::new(16).with_seed(1).with_threads(4),
        &timing,
        32,
    )
    .unwrap();
    assert_eq!(
        serial.mean.to_bits(),
        parallel.mean.to_bits(),
        "determinism violated"
    );
    println!(
        "pevpm: replication throughput {:.0} evals/s (1 thread) vs {:.0} evals/s (4 threads),          speedup {:.2}x on a {}-core host",
        serial.evals_per_sec,
        parallel.evals_per_sec,
        parallel.evals_per_sec / serial.evals_per_sec.max(1e-9),
        pevpm::replicate::available_threads(),
    );
}

/// Single-evaluation latency of the DAG scheduler vs the serial engine.
///
/// The plain Jacobi halo chain condenses to one SCC, so `--eval-threads 1`
/// runs the identical serial sweep plus the dependency analysis and
/// scheduler bookkeeping — the pure overhead of the feature. That
/// overhead must stay ≤ 2% (one-shot median comparison), and the
/// prediction bitwise identical at every worker count. The ensemble
/// variant (eight independent 4-rank regions) is the decomposable shape
/// where extra workers can overlap component evaluations.
fn dag_scheduler_latency(c: &mut Criterion) {
    let mut table = DistTable::new();
    let samples: Vec<f64> = (0..1000).map(|i| 250e-6 + (i % 97) as f64 * 1e-6).collect();
    for &contention in &[2u32, 64] {
        table.insert(
            DistKey {
                op: Op::Send,
                size: 1024,
                contention,
            },
            CommDist::Hist(Histogram::from_samples(&samples, 1e-6)),
        );
    }
    let timing = TimingModel::distributions(table);
    let cfg = JacobiConfig {
        xsize: 256,
        iterations: 100,
        serial_secs: 3.24e-3,
    };
    let model = jacobi::model(&cfg);
    let ensemble = jacobi::ensemble_model(&cfg, 4);

    let serial_cfg = EvalConfig::new(32).with_seed(1);
    let base = evaluate(&model, &serial_cfg, &timing).unwrap();
    for eval_threads in [1usize, 2, 8] {
        let dag_cfg = serial_cfg.clone().with_eval_threads(eval_threads);
        let p = evaluate(&model, &dag_cfg, &timing).unwrap();
        assert_eq!(
            base.makespan.to_bits(),
            p.makespan.to_bits(),
            "DAG scheduler must not perturb predictions (eval-threads={eval_threads})"
        );
        c.bench_function(
            &format!("pevpm: 32-proc 100-iter Jacobi evaluation (dag, {eval_threads} worker)"),
            |b| b.iter(|| black_box(evaluate(&model, &dag_cfg, &timing).unwrap().makespan)),
        );
    }
    c.bench_function(
        "pevpm: 32-proc 100-iter Jacobi evaluation (serial engine)",
        |b| b.iter(|| black_box(evaluate(&model, &serial_cfg, &timing).unwrap().makespan)),
    );
    for eval_threads in [1usize, 8] {
        let dag_cfg = serial_cfg.clone().with_eval_threads(eval_threads);
        c.bench_function(
            &format!("pevpm: 8-region ensemble evaluation (dag, {eval_threads} worker)"),
            |b| b.iter(|| black_box(evaluate(&ensemble, &dag_cfg, &timing).unwrap().makespan)),
        );
    }

    // One-shot overhead gate: median of 50 single evaluations, serial
    // engine vs DAG-at-1-worker on the single-SCC program. Interleaved
    // sampling so machine noise hits both sides alike.
    let median_of = |cfg: &EvalConfig, walls: &mut Vec<f64>| {
        let t0 = std::time::Instant::now();
        black_box(evaluate(&model, cfg, &timing).unwrap().makespan);
        walls.push(t0.elapsed().as_secs_f64());
    };
    let dag1_cfg = serial_cfg.clone().with_eval_threads(1);
    let (mut serial_walls, mut dag_walls) = (Vec::new(), Vec::new());
    for _ in 0..50 {
        median_of(&serial_cfg, &mut serial_walls);
        median_of(&dag1_cfg, &mut dag_walls);
    }
    serial_walls.sort_by(f64::total_cmp);
    dag_walls.sort_by(f64::total_cmp);
    let (serial_p50, dag_p50) = (serial_walls[25], dag_walls[25]);
    let overhead = dag_p50 / serial_p50.max(1e-12) - 1.0;
    println!(
        "pevpm: single-eval latency {:.3}ms (serial) vs {:.3}ms (dag, 1 worker), \
         scheduler overhead {:+.2}%",
        serial_p50 * 1e3,
        dag_p50 * 1e3,
        overhead * 100.0,
    );
    assert!(
        overhead <= 0.02,
        "DAG scheduler overhead at eval-threads=1 is {:.2}% (budget 2%)",
        overhead * 100.0
    );
}

/// Cost of the observability hooks: the same evaluation with no sink
/// (default config — the hooks reduce to one branch per event), with a
/// metrics registry attached, and with timeline recording on. The no-sink
/// variant is the guard: it must stay within noise (<5%) of what the
/// engine did before instrumentation existed.
fn instrumentation_overhead(c: &mut Criterion) {
    use pevpm_obs::Registry;
    use std::sync::Arc;

    let mut table = DistTable::new();
    let samples: Vec<f64> = (0..1000).map(|i| 250e-6 + (i % 97) as f64 * 1e-6).collect();
    for &contention in &[2u32, 64] {
        table.insert(
            DistKey {
                op: Op::Send,
                size: 1024,
                contention,
            },
            CommDist::Hist(Histogram::from_samples(&samples, 1e-6)),
        );
    }
    let timing = TimingModel::distributions(table);
    let cfg = JacobiConfig {
        xsize: 256,
        iterations: 60,
        serial_secs: 3.24e-3,
    };
    let model = jacobi::model(&cfg);

    let no_sink = EvalConfig::new(16).with_seed(1);
    let registry = Arc::new(Registry::new());
    let with_metrics = EvalConfig::new(16)
        .with_seed(1)
        .with_metrics(registry.clone());
    let with_timeline = EvalConfig::new(16).with_seed(1).with_timeline();

    c.bench_function("pevpm: evaluation, no sink", |b| {
        b.iter(|| black_box(evaluate(&model, &no_sink, &timing).unwrap().makespan))
    });
    c.bench_function("pevpm: evaluation, metrics registry", |b| {
        b.iter(|| black_box(evaluate(&model, &with_metrics, &timing).unwrap().makespan))
    });
    c.bench_function("pevpm: evaluation, timeline recording", |b| {
        b.iter(|| black_box(evaluate(&model, &with_timeline, &timing).unwrap().makespan))
    });

    // Service-span telemetry as the daemon applies it: a stage window
    // into a bounded span ring plus a latency histogram, wrapped around
    // the evaluation. Telemetry observes, never steers — the prediction
    // must stay bitwise identical to the bare run.
    let ring = pevpm_obs::SpanRing::new(64);
    let span_registry = Arc::new(Registry::new());
    let evaluate_with_span = |ring: &pevpm_obs::SpanRing, reg: &Registry| {
        let t0 = std::time::Instant::now();
        let mut span = pevpm_obs::RequestSpan::new(ring.next_id(), "predict", 0, 0.0);
        let pred = evaluate(&model, &no_sink, &timing).unwrap();
        let dur_us = t0.elapsed().as_secs_f64() * 1e6;
        span.stages.push(pevpm_obs::StageTiming {
            name: "eval".to_string(),
            start_us: 0.0,
            dur_us,
        });
        span.total_us = dur_us;
        reg.histogram("serve.stage.eval_ms", 0.0, 250.0, 50)
            .record(dur_us / 1e3);
        ring.push(span);
        pred
    };
    c.bench_function("pevpm: evaluation, span telemetry", |b| {
        b.iter(|| black_box(evaluate_with_span(&ring, &span_registry).makespan))
    });
    let bare = evaluate(&model, &no_sink, &timing).unwrap();
    let spanned = evaluate_with_span(&ring, &span_registry);
    assert_eq!(
        bare.makespan.to_bits(),
        spanned.makespan.to_bits(),
        "span telemetry must not perturb predictions"
    );

    // One-shot replication-throughput comparison: a 32-replication batch
    // with and without a metrics sink attached.
    let plain = monte_carlo(&model, &no_sink, &timing, 32).unwrap();
    let metered = monte_carlo(&model, &with_metrics, &timing, 32).unwrap();
    assert_eq!(
        plain.mean.to_bits(),
        metered.mean.to_bits(),
        "instrumentation must not perturb results"
    );
    println!(
        "pevpm: replication throughput {:.0} evals/s (no sink) vs {:.0} evals/s (metrics), \
         sink overhead {:+.1}%",
        plain.evals_per_sec,
        metered.evals_per_sec,
        (plain.evals_per_sec / metered.evals_per_sec.max(1e-9) - 1.0) * 100.0,
    );
}

criterion_group!(
    benches,
    netsim_throughput,
    mpisim_pingpong,
    histogram_sampling,
    table_sampling,
    pevpm_eval,
    replication_throughput,
    dag_scheduler_latency,
    instrumentation_overhead
);
criterion_main!(benches);
