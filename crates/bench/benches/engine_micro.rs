//! Criterion micro-benchmarks of the reproduction's engines: the
//! packet-level network simulator, the MPI world scheduler, histogram
//! sampling, and PEVPM evaluation throughput.
//!
//! Run with `cargo bench -p pevpm-bench --bench engine_micro`.

use criterion::{criterion_group, criterion_main, Criterion};
use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, EvalConfig};
use pevpm_apps::jacobi::{self, JacobiConfig};
use pevpm_dist::{CommDist, DistKey, DistTable, Histogram, Op};
use pevpm_mpisim::{World, WorldConfig};
use pevpm_netsim::{ClusterConfig, Network, Time};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn netsim_throughput(c: &mut Criterion) {
    c.bench_function("netsim: 64 ranks x 4KB all-exchange", |b| {
        b.iter(|| {
            let mut net = Network::new(ClusterConfig::perseus(64), 1);
            for i in 0..32usize {
                net.start_transfer(Time::ZERO, i, i + 32, 4096);
                net.start_transfer(Time::ZERO, i + 32, i, 4096);
            }
            black_box(net.run_to_completion().len())
        })
    });
}

fn mpisim_pingpong(c: &mut Criterion) {
    c.bench_function("mpisim: 100-rep ping-pong world", |b| {
        b.iter(|| {
            let report = World::run(WorldConfig::ideal(2, 1), |rank| {
                for i in 0..100u64 {
                    if rank.rank() == 0 {
                        rank.send_size(1, i, 1024);
                        let _ = rank.recv(1, i);
                    } else {
                        let _ = rank.recv(0, i);
                        rank.send_size(0, i, 1024);
                    }
                }
            })
            .unwrap();
            black_box(report.messages)
        })
    });
}

fn histogram_sampling(c: &mut Criterion) {
    let samples: Vec<f64> = (0..10_000).map(|i| 1e-4 + (i % 997) as f64 * 1e-7).collect();
    let h = Histogram::from_samples(&samples, 1e-7);
    let mut rng = SmallRng::seed_from_u64(7);
    c.bench_function("dist: histogram inverse-CDF sample", |b| {
        b.iter(|| black_box(h.sample(&mut rng)))
    });
}

fn pevpm_eval(c: &mut Criterion) {
    let mut table = DistTable::new();
    let samples: Vec<f64> = (0..1000).map(|i| 250e-6 + (i % 97) as f64 * 1e-6).collect();
    for &contention in &[2u32, 64] {
        table.insert(
            DistKey { op: Op::Send, size: 1024, contention },
            CommDist::Hist(Histogram::from_samples(&samples, 1e-6)),
        );
    }
    let timing = TimingModel::distributions(table);
    let cfg = JacobiConfig { xsize: 256, iterations: 100, serial_secs: 3.24e-3 };
    let model = jacobi::model(&cfg);
    c.bench_function("pevpm: 32-proc 100-iter Jacobi evaluation", |b| {
        b.iter(|| {
            black_box(
                evaluate(&model, &EvalConfig::new(32).with_seed(1), &timing)
                    .unwrap()
                    .makespan,
            )
        })
    });
}

criterion_group!(
    benches,
    netsim_throughput,
    mpisim_pingpong,
    histogram_sampling,
    pevpm_eval
);
criterion_main!(benches);
