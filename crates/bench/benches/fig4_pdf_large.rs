//! Figure 4: sampled performance profiles for MPI_Isend using large
//! message sizes with 64×1 processes — backplane saturation, long tails
//! and detached retransmission-timeout outliers.
//!
//! Run with `cargo bench -p pevpm-bench --bench fig4_pdf_large`.

use pevpm_bench::figs34;

fn main() {
    let cfg = figs34::PdfConfig::fig4();
    eprintln!(
        "[fig4] measuring PDFs at {}x{} for sizes {:?}...",
        cfg.nodes, cfg.ppn, cfg.sizes
    );
    let series = figs34::run(&cfg);
    println!("Figure 4: MPI_Isend time PDFs, 64x1 processes, large messages\n");
    println!("{}", figs34::render(&series));
    for s in &series {
        println!(
            "shape check (long saturation tail / RTO outliers): size {} -> {}",
            s.size,
            if figs34::is_fig4_shape(s) {
                "OK"
            } else {
                "DIFFERS (see EXPERIMENTS.md)"
            }
        );
    }
}
