//! Abl-clock: what clock-synchronisation error does to MPIBench's
//! measured distributions (§2: the globally synchronised clock is what
//! makes per-operation cross-process timing possible).
//!
//! Run with `cargo bench -p pevpm-bench --bench abl_clock_sync`.

use pevpm_bench::ablate;

fn main() {
    eprintln!("[abl-clock] injecting clock skew into MPIBench at 16x1, 1 KB...");
    let rows = ablate::run_clock(16, 1024, &[0.0, 1e-5, 1e-4, 5e-4, 1e-3], 80, 6);
    println!("Abl-clock: distribution distortion vs injected clock skew (16x1, 1 KB)\n");
    println!("{}", ablate::render_clock(&rows));
    println!(
        "KS distance to the perfectly-clocked distribution grows with skew: beyond ~0.1 ms \
         the measured PDFs no longer resemble the true communication-time distributions, \
         which is why MPIBench needs a precise global clock."
    );
}
