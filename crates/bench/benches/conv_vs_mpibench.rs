//! Conventional ping-pong benchmarks vs MPIBench (§2's critique, made
//! quantitative): what a single round-trip-average number hides about a
//! loaded commodity network.
//!
//! Run with `cargo bench -p pevpm-bench --bench conv_vs_mpibench`.

use pevpm_bench::report;
use pevpm_mpibench::compare_conventional;

fn main() {
    eprintln!("[conv] conventional ping-pong vs MPIBench across shapes...");
    let sizes = [1024u64, 4096, 16384];
    let mut rows = Vec::new();
    for &(nodes, ppn) in &[(2usize, 1usize), (16, 1), (64, 1), (64, 2)] {
        let cmps = compare_conventional(nodes, ppn, &sizes, 30, 11).expect("comparison failed");
        for c in cmps {
            rows.push(vec![
                format!("{nodes}x{ppn}"),
                c.size.to_string(),
                report::secs(c.conventional_avg),
                report::secs(c.mpibench.mean().unwrap_or(0.0)),
                report::secs(c.mpibench.min().unwrap_or(0.0)),
                report::secs(c.p99),
                report::secs(c.mpibench.max().unwrap_or(0.0)),
                format!("{:.2}x", c.hidden_contention_factor()),
            ]);
        }
    }
    println!("Conventional (idle round-trip/2 average) vs MPIBench (per-message, loaded)\n");
    println!(
        "{}",
        report::table(
            &["shape", "size", "conv-avg", "mb-avg", "mb-min", "mb-p99", "mb-max", "hidden"],
            &rows
        )
    );
    println!(
        "'hidden' = loaded-network mean over the conventional number: the contention a\n\
         single ping-pong average cannot see, which is what misleads the min/avg-2x1\n\
         prediction baselines in Figure 6."
    );
}
