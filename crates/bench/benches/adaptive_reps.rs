//! Adaptive replication: what the sequential stopping rule saves.
//!
//! §6 of the paper: "many iterations are needed to give an accurate
//! average … the number of iterations can be chosen so that the
//! statistical error in the mean is negligibly small". The adaptive
//! engine chooses that number at run time: it replicates until the
//! Student-t confidence interval on the mean is within `--precision` of
//! it. This bench runs the rule on an easy program (a long Jacobi whose
//! internal iteration count averages the noise away — the rule stops at
//! the floor) and a hard one (a short, noisy Jacobi — the rule runs
//! toward the ceiling) at the same precision, against fixed batches of
//! the ceiling size.
//!
//! Run with `cargo bench -p pevpm-bench --bench adaptive_reps`.
//! Writes a machine-readable `BENCH_adaptive.json` (override the path
//! with the `BENCH_ADAPTIVE_OUT` environment variable) for CI artifact
//! upload; CI asserts the easy row stops earlier than the hard one and
//! saves at least 2x.

use pevpm::stats::AdaptivePolicy;
use pevpm_apps::jacobi::JacobiConfig;
use pevpm_bench::tcost;
use pevpm_mpibench::MachineShape;

fn main() {
    let policy = AdaptivePolicy::new(5e-3).with_min_reps(4).with_max_reps(64);
    let shapes = [
        MachineShape { nodes: 8, ppn: 1 },
        MachineShape { nodes: 32, ppn: 1 },
    ];
    // Easy: the §6 Jacobi — 1000 internal iterations average out the
    // per-message sampling noise, so replications barely disagree.
    let easy = JacobiConfig {
        xsize: 256,
        iterations: 1000,
        serial_secs: 3.24e-3,
    };
    // Hard: two iterations and a negligible serial term — each
    // replication is essentially a handful of raw communication-time
    // draws, so the relative spread stays wide.
    let hard = JacobiConfig {
        xsize: 256,
        iterations: 2,
        serial_secs: 1e-6,
    };

    eprintln!("[adaptive] running the stopping rule on easy vs hard programs...");
    let mut results = Vec::new();
    for &s in &shapes {
        results.push(tcost::run_adaptive("easy", s, &easy, 30, policy, 11));
        results.push(tcost::run_adaptive("hard", s, &hard, 30, policy, 11));
    }

    println!(
        "Adaptive replication: reps chosen by the stopping rule at precision {:.0e} \
         ({}..{} reps, {:.0}% confidence)\n",
        policy.precision,
        policy.min_reps,
        policy.max_reps,
        policy.confidence * 100.0
    );
    println!("{}", tcost::render_adaptive(&results));
    println!(
        "'easy' is the 1000-iteration Jacobi (replications barely disagree — the rule \
         stops at the floor); 'hard' is a 2-iteration noisy variant (wide relative \
         spread — the rule runs toward the ceiling). 'savings' is fixed-batch reps per \
         adaptive rep at equal precision; 'prefix' confirms the adaptive runs are a \
         bitwise prefix of the fixed batch (early stopping never changes what ran, \
         only how much)."
    );

    // Cargo runs benches with CWD = the crate directory; default to the
    // workspace root so CI (and humans) find the file in a fixed place.
    let out = std::env::var("BENCH_ADAPTIVE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_adaptive.json").to_string()
    });
    let json = tcost::adaptive_to_json(&results);
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("[adaptive] machine-readable results written to {out}"),
        Err(e) => eprintln!("[adaptive] cannot write {out}: {e}"),
    }
}
