//! Ext-overlap: the design-stage use case of §1 — decide between two
//! implementations *before writing them* by comparing their PEVPM models,
//! then validate against real implementations of both.
//!
//! Variant A: the paper's phased Jacobi (blocking halo exchange).
//! Variant B: overlap-optimised Jacobi (irecv/isend, interior compute
//! overlapping the transfers, waits before the boundary rows).
//!
//! Run with `cargo bench -p pevpm-bench --bench ext_overlap_study`.

use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, EvalConfig};
use pevpm_apps::jacobi::{self, JacobiConfig};
use pevpm_bench::{fig6::shape_table, report};
use pevpm_mpibench::MachineShape;
use pevpm_mpisim::WorldConfig;

fn main() {
    let cfg = JacobiConfig {
        xsize: 256,
        iterations: 200,
        serial_secs: 3.24e-3,
    };
    let halo = cfg.halo_bytes();
    eprintln!("[overlap] phased vs overlapped Jacobi, predicted and measured...");

    let mut rows = Vec::new();
    for nodes in [4usize, 8, 16, 32, 64] {
        let shape = MachineShape { nodes, ppn: 1 };
        let table = shape_table(shape, &[halo / 2, halo, halo * 2], 40, 13);
        let timing = TimingModel::distributions(table);

        let pred_phased = evaluate(&jacobi::model(&cfg), &EvalConfig::new(nodes), &timing)
            .unwrap()
            .makespan;
        let pred_overlap = evaluate(
            &jacobi::model_overlap(&cfg),
            &EvalConfig::new(nodes),
            &timing,
        )
        .unwrap()
        .makespan;

        let meas_phased = jacobi::run_measured(WorldConfig::perseus(nodes, 1, 13), &cfg)
            .unwrap()
            .time;
        let meas_overlap = jacobi::run_measured_overlap(WorldConfig::perseus(nodes, 1, 13), &cfg)
            .unwrap()
            .time;

        rows.push(vec![
            format!("{nodes}x1"),
            report::secs(meas_phased),
            report::secs(meas_overlap),
            format!("{:.1}%", (1.0 - meas_overlap / meas_phased) * 100.0),
            report::secs(pred_phased),
            report::secs(pred_overlap),
            format!("{:.1}%", (1.0 - pred_overlap / pred_phased) * 100.0),
        ]);
    }
    println!("Ext-overlap: phased vs overlap-optimised Jacobi (200 iterations)\n");
    println!(
        "{}",
        report::table(
            &[
                "shape",
                "meas-phased",
                "meas-overlap",
                "meas-gain",
                "pred-phased",
                "pred-overlap",
                "pred-gain"
            ],
            &rows
        )
    );
    println!(
        "PEVPM's predicted gain from overlapping communication with computation should\n\
         match the measured gain in sign and rough magnitude — the design-stage\n\
         decision (\"is the overlap rewrite worth it?\") is answered without writing\n\
         the second implementation."
    );
}
