//! Figure 1: average times for MPI_Isend using small message sizes with
//! various numbers of communicating processes on the Perseus-like cluster,
//! plus the `min` curve and the T-70% contention-penalty claim.
//!
//! Run with `cargo bench -p pevpm-bench --bench fig1_isend_small`.

use pevpm_bench::figs12;

fn main() {
    let cfg = figs12::FigsConfig::fig1();
    eprintln!(
        "[fig1] sweeping {} shapes x {} sizes ({} reps each)...",
        cfg.shapes.len(),
        cfg.sizes.len(),
        cfg.repetitions
    );
    let res = figs12::run(&cfg);
    println!("Figure 1: average MPI_Isend time (us) vs message size\n");
    println!("{}", figs12::render(&res));
    if let Some(p) = figs12::contention_penalty_1k(&res) {
        println!(
            "T-70%: a 1 KB message takes {:.0}% longer at the largest nx1 than at 2x1 \
             (paper: ~70%)",
            (p - 1.0) * 100.0
        );
    }
}
