//! Abl-bins: sensitivity of PEVPM predictions to histogram bin
//! granularity (§6: residual errors were attributed to bin size and
//! "could be reduced even further by using smaller bin sizes").
//!
//! Run with `cargo bench -p pevpm-bench --bench abl_bin_granularity`.

use pevpm_apps::jacobi::JacobiConfig;
use pevpm_bench::ablate;
use pevpm_mpibench::MachineShape;

fn main() {
    let jacobi = JacobiConfig {
        xsize: 256,
        iterations: 200,
        serial_secs: 3.24e-3,
    };
    let shape = MachineShape { nodes: 16, ppn: 1 };
    eprintln!("[abl-bins] coarsening benchmark histograms at {shape}...");
    let rows = ablate::run_bins(shape, &jacobi, &[1, 2, 4, 8, 16, 64, 256], 60, 5);
    println!("Abl-bins: Jacobi prediction vs histogram coarsening ({shape})\n");
    println!("{}", ablate::render_bins(&rows));
    println!(
        "paper: prediction error is attributed to bin granularity; drift should grow \
         with coarsening and vanish at factor 1."
    );
}
