//! Figure 2: average times for MPI_Isend using large message sizes, with
//! the 16 KB eager→rendezvous knee (T-knee) and the onset of backplane
//! saturation for the 64×1 configuration.
//!
//! Run with `cargo bench -p pevpm-bench --bench fig2_isend_large`.

use pevpm_bench::figs12;
use pevpm_mpibench::MachineShape;

fn main() {
    let cfg = figs12::FigsConfig::fig2();
    eprintln!(
        "[fig2] sweeping {} shapes x {} sizes ({} reps each)...",
        cfg.shapes.len(),
        cfg.sizes.len(),
        cfg.repetitions
    );
    let res = figs12::run(&cfg);
    println!("Figure 2: average MPI_Isend time (us) vs message size\n");
    println!("{}", figs12::render(&res));

    let (goodput, knee) = figs12::knee_analysis(&res);
    println!("T-knee: effective 2x1 goodput per size:");
    for (size, mbit) in &goodput {
        println!("  {size:>8} B: {mbit:6.1} Mbit/s");
    }
    match knee {
        Some(k) => {
            println!("  detected protocol knee at {k} B (paper: 16 KB; ~81 Mbit/s at 16 KB)")
        }
        None => println!("  no knee detected (unexpected; see EXPERIMENTS.md)"),
    }

    // Saturation onset: compare 64x1 averages against 2x1 per size.
    if let (Some(small), Some(big)) = (
        res.run_for(MachineShape { nodes: 2, ppn: 1 }),
        res.run_for(MachineShape { nodes: 64, ppn: 1 }),
    ) {
        println!("\nSaturation: 64x1 vs 2x1 slowdown per size:");
        for (a, b) in small.by_size.iter().zip(&big.by_size) {
            let (Some(ta), Some(tb)) = (a.summary.mean(), b.summary.mean()) else {
                continue;
            };
            println!(
                "  {:>8} B: {:6.2}x{}",
                a.size,
                tb / ta,
                if tb / ta > 5.0 {
                    "   <-- saturated (drops + RTOs)"
                } else {
                    ""
                }
            );
        }
    }
}
