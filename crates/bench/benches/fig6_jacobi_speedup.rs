//! Figure 6 + T-err: PEVPM-predicted and measured Jacobi speedups for
//! 2–64 × 1–2 processes, under four prediction inputs.
//!
//! Run with `cargo bench -p pevpm-bench --bench fig6_jacobi_speedup`.
//!
//! Speedups are against the serial execution; the per-iteration basis
//! makes the row values independent of the iteration count (paper §6).

use pevpm_apps::jacobi::JacobiConfig;
use pevpm_bench::fig6;

fn main() {
    let cfg = fig6::Fig6Config {
        shapes: pevpm_mpibench::paper_shapes(),
        jacobi: JacobiConfig {
            xsize: 256,
            iterations: 300,
            serial_secs: 3.24e-3,
        },
        bench_reps: 60,
        seed: 2004,
    };
    eprintln!(
        "[fig6] {} shapes, {} Jacobi iterations, {} benchmark reps...",
        cfg.shapes.len(),
        cfg.jacobi.iterations,
        cfg.bench_reps
    );
    let res = fig6::run(&cfg);
    println!("Figure 6: Jacobi speedups, measured vs PEVPM predictions\n");
    println!("{}", fig6::render(&res));

    // T-err: the paper's headline accuracy claim.
    let errs: Vec<f64> = res
        .rows
        .iter()
        .filter_map(|r| r.error("dist-nxp"))
        .map(f64::abs)
        .collect();
    let max = errs.iter().cloned().fold(0.0, f64::max);
    let within1 = errs.iter().filter(|e| **e < 0.01).count();
    let within5 = errs.iter().filter(|e| **e < 0.05).count();
    println!(
        "T-err: |error| of distribution predictions: max {:.1}%; {}/{} within 1%, {}/{} within 5% \
         (paper: always within 5%, usually within 1%)",
        max * 100.0,
        within1,
        errs.len(),
        within5,
        errs.len()
    );
}
