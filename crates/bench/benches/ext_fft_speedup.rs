//! Ext-FFT: measured vs PEVPM-predicted execution of the regular-global
//! FFT application (§6 mentions this class was validated in refs [9,10]).
//!
//! Run with `cargo bench -p pevpm-bench --bench ext_fft_speedup`.

use pevpm_apps::fft::FftConfig;
use pevpm_bench::ext;

fn main() {
    let cfg = FftConfig {
        n1: 256,
        n2: 256,
        flops_per_sec: 50e6,
        iterations: 20,
    };
    eprintln!(
        "[ext-fft] N = {} complex points, {} iterations...",
        cfg.n(),
        cfg.iterations
    );
    let rows = ext::run_fft(&[2, 4, 8, 16, 32], &cfg, 25, 3);
    println!(
        "{}",
        ext::render(
            "Ext-FFT: four-step FFT, measured vs PEVPM(dist) predictions",
            &rows
        )
    );
    let worst = rows.iter().map(|r| r.error().abs()).fold(0.0, f64::max);
    println!("worst |error|: {:.1}%", worst * 100.0);
}
