//! T-cost: PEVPM evaluation cost vs actual (packet-level) execution —
//! the paper's "67.5 times its actual execution speed" claim — plus a
//! compiled-vs-interpreted sampler comparison quantifying what the
//! allocation-free fast path buys.
//!
//! Run with `cargo bench -p pevpm-bench --bench tcost_eval_speed`.
//! Writes a machine-readable `BENCH_tcost.json` (override the path with
//! the `BENCH_TCOST_OUT` environment variable) for CI artifact upload.

use pevpm_apps::jacobi::JacobiConfig;
use pevpm_bench::tcost::{self, SamplerMode};
use pevpm_mpibench::MachineShape;

fn main() {
    let jacobi = JacobiConfig {
        xsize: 256,
        iterations: 1000,
        serial_secs: 3.24e-3,
    };
    let shapes = [
        MachineShape { nodes: 8, ppn: 1 },
        MachineShape { nodes: 32, ppn: 1 },
        MachineShape { nodes: 64, ppn: 1 },
        MachineShape { nodes: 64, ppn: 2 },
    ];
    eprintln!("[tcost] timing PEVPM evaluation vs packet-level execution...");
    let mut results = Vec::new();
    for &s in &shapes {
        for mode in [SamplerMode::Compiled, SamplerMode::Interpreted] {
            results.push(tcost::run_with(s, &jacobi, 30, 8, 11, mode));
        }
    }
    println!("T-cost: model evaluation cost (1000-iteration Jacobi)\n");
    println!("{}", tcost::render(&results));
    println!(
        "paper: the prototype PEVPM evaluated 11h15m of processor time in ~10 min (67.5x \
         real time) on one Perseus CPU; 'vs-realtime' is the equivalent figure here.\n\
         'sampler' compares the compiled (allocation-free) fast path against the \
         interpreted DistTable baseline; both draw the same RNG stream, so their \
         predictions are bitwise identical."
    );

    // Cargo runs benches with CWD = the crate directory; default to the
    // workspace root so CI (and humans) find the file in a fixed place.
    let out = std::env::var("BENCH_TCOST_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tcost.json").to_string()
    });
    let json = tcost::to_json(&results);
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("[tcost] machine-readable results written to {out}"),
        Err(e) => eprintln!("[tcost] cannot write {out}: {e}"),
    }
}
