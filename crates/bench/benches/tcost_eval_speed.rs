//! T-cost: PEVPM evaluation cost vs actual (packet-level) execution —
//! the paper's "67.5 times its actual execution speed" claim — plus a
//! compiled-vs-interpreted sampler comparison quantifying what the
//! allocation-free fast path buys.
//!
//! Run with `cargo bench -p pevpm-bench --bench tcost_eval_speed`.
//! Writes a machine-readable `BENCH_tcost.json` (override the path with
//! the `BENCH_TCOST_OUT` environment variable) for CI artifact upload.

use pevpm_apps::jacobi::JacobiConfig;
use pevpm_bench::tcost::{self, SamplerMode};
use pevpm_mpibench::MachineShape;

fn main() {
    let jacobi = JacobiConfig {
        xsize: 256,
        iterations: 1000,
        serial_secs: 3.24e-3,
    };
    let shapes = [
        MachineShape { nodes: 8, ppn: 1 },
        MachineShape { nodes: 32, ppn: 1 },
        MachineShape { nodes: 64, ppn: 1 },
        MachineShape { nodes: 64, ppn: 2 },
    ];
    eprintln!("[tcost] timing PEVPM evaluation vs packet-level execution...");
    let mut results = Vec::new();
    for &s in &shapes {
        for mode in [SamplerMode::Compiled, SamplerMode::Interpreted] {
            results.push(tcost::run_with(s, &jacobi, 30, 8, 11, mode));
        }
    }
    println!("T-cost: model evaluation cost (1000-iteration Jacobi)\n");
    println!("{}", tcost::render(&results));
    println!(
        "paper: the prototype PEVPM evaluated 11h15m of processor time in ~10 min (67.5x \
         real time) on one Perseus CPU; 'vs-realtime' is the equivalent figure here.\n\
         'sampler' compares the compiled (allocation-free) fast path against the \
         interpreted DistTable baseline; both draw the same RNG stream, so their \
         predictions are bitwise identical."
    );

    // Single-evaluation latency: the serial engine vs the DAG scheduler
    // at each --eval-threads value, on the paper's 64x2 shape. The plain
    // Jacobi halo chain condenses to one SCC (the DAG rows are then
    // bitwise the serial engine, measuring pure scheduler overhead); the
    // ensemble variant splits 128 ranks into eight 16-rank regions, the
    // decomposable shape where extra workers can actually overlap work.
    eprintln!("[tcost] timing single-evaluation latency, serial vs DAG...");
    let lat_shape = MachineShape { nodes: 64, ppn: 2 };
    let lat_jacobi = JacobiConfig {
        xsize: 256,
        iterations: 200,
        serial_secs: 3.24e-3,
    };
    let mut latencies = Vec::new();
    for region in [None, Some(16)] {
        for eval_threads in [0usize, 1, 2, 8] {
            latencies.push(tcost::run_latency(
                lat_shape,
                &lat_jacobi,
                region,
                30,
                5,
                11,
                eval_threads,
            ));
        }
    }
    println!("\nT-cost: single-evaluation latency (200-iteration Jacobi, 64x2)\n");
    println!("{}", tcost::render_latency(&latencies));
    println!(
        "'dag-N' routes evaluation through the SCC/DAG scheduler with N workers; \
         predictions are bitwise identical at every N. Wall-clock speedup is \
         bounded by the physical cores of the measuring host (host_cores in the \
         JSON artifact) and by the component count of the program."
    );

    // Cargo runs benches with CWD = the crate directory; default to the
    // workspace root so CI (and humans) find the file in a fixed place.
    let out = std::env::var("BENCH_TCOST_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tcost.json").to_string()
    });
    let json = tcost::to_json(&results, &latencies);
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("[tcost] machine-readable results written to {out}"),
        Err(e) => eprintln!("[tcost] cannot write {out}: {e}"),
    }
}
