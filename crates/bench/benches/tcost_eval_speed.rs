//! T-cost: PEVPM evaluation cost vs actual (packet-level) execution —
//! the paper's "67.5 times its actual execution speed" claim.
//!
//! Run with `cargo bench -p pevpm-bench --bench tcost_eval_speed`.

use pevpm_apps::jacobi::JacobiConfig;
use pevpm_bench::tcost;
use pevpm_mpibench::MachineShape;

fn main() {
    let jacobi = JacobiConfig {
        xsize: 256,
        iterations: 1000,
        serial_secs: 3.24e-3,
    };
    let shapes = [
        MachineShape { nodes: 8, ppn: 1 },
        MachineShape { nodes: 32, ppn: 1 },
        MachineShape { nodes: 64, ppn: 1 },
    ];
    eprintln!("[tcost] timing PEVPM evaluation vs packet-level execution...");
    let results: Vec<_> = shapes
        .iter()
        .map(|&s| tcost::run(s, &jacobi, 30, 8, 11))
        .collect();
    println!("T-cost: model evaluation cost (1000-iteration Jacobi)\n");
    println!("{}", tcost::render(&results));
    println!(
        "paper: the prototype PEVPM evaluated 11h15m of processor time in ~10 min (67.5x \
         real time) on one Perseus CPU; 'vs-realtime' is the equivalent figure here."
    );
}
