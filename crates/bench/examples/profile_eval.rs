//! Profiling harness for the VM + sampler hot path.
//!
//! Runs the 8-replication 64x2 Jacobi batch (the `tcost_eval_speed`
//! acceptance workload) under three timing models — analytic Hockney
//! (VM-core floor), compiled sampler tables, and the interpreted
//! `DistTable` baseline — printing wall time, mean makespan, and
//! evaluations/sec for each. The mean must be bitwise identical between
//! compiled and interpreted; Hockney isolates VM cost from sampling cost.
//!
//! Build with `cargo build --release --example profile_eval`, then point a
//! profiler at `target/release/examples/profile_eval` (e.g.
//! `gprofng collect app -o prof.er target/release/examples/profile_eval`).

use pevpm::timing::TimingModel;
use pevpm::vm::{monte_carlo, EvalConfig};
use pevpm_apps::jacobi::{self, JacobiConfig};
use pevpm_bench::fig6;
use pevpm_mpibench::MachineShape;

fn main() {
    let jacobi_cfg = JacobiConfig {
        xsize: 256,
        iterations: 1000,
        serial_secs: 3.24e-3,
    };
    let shape = MachineShape { nodes: 64, ppn: 2 };
    let table = fig6::shape_table(
        shape,
        &[
            jacobi_cfg.halo_bytes() / 2,
            jacobi_cfg.halo_bytes(),
            jacobi_cfg.halo_bytes() * 2,
        ],
        30,
        11,
    );
    let model = jacobi::model(&jacobi_cfg);
    let nprocs = 128;
    let variants: Vec<(&str, TimingModel)> = vec![
        ("hockney    ", TimingModel::hockney(8.4e-6, 320e6)),
        ("compiled   ", TimingModel::distributions(table.clone())),
        ("interpreted", TimingModel::interpreted(table)),
    ];
    for (name, timing) in &variants {
        for trial in 0..2 {
            let t = std::time::Instant::now();
            let mc = monte_carlo(
                &model,
                &EvalConfig::new(nprocs).with_seed(11).with_threads(1),
                timing,
                8,
            )
            .unwrap();
            println!(
                "{name} trial {trial}: wall={:.3}s mean={:.6} evals/s={:.2}",
                t.elapsed().as_secs_f64(),
                mc.mean,
                mc.evals_per_sec
            );
        }
    }
}
