//! Golden-file test for the counterexample artifact format.
//!
//! The artifact is a compatibility surface twice over: `cli fuzz` writes
//! it, `cli fuzz --replay` and the committed-corpus replayer parse it
//! back, and humans read the `--- model ---` section when triaging a
//! failure. Any change to field names, section markers, program grammar
//! or the annotated-model lowering shows up here as a diff against the
//! stored golden file.
//!
//! To regenerate after an intentional format change:
//! `BLESS=1 cargo test -p pevpm-testkit --test golden_report`

use pevpm::model::CollOp;
use pevpm_testkit::{Counterexample, Failure, Item, PairMode, TestProgram};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join("counterexample.model")
}

/// A fixed counterexample exercising every item kind the program grammar
/// has — each one renders into both the replayable `--- program ---`
/// section and the human-facing `--- model ---` annotation block.
fn sample() -> Counterexample {
    let program = TestProgram {
        nprocs: 4,
        items: vec![
            Item::ComputeAll { usecs: 250 },
            Item::Pair {
                src: 1,
                dst: 0,
                bytes: 1024,
                mode: PairMode::Blocking,
            },
            Item::Loop {
                count: 3,
                body: vec![
                    Item::Compute { proc: 2, usecs: 50 },
                    Item::Pair {
                        src: 2,
                        dst: 3,
                        bytes: 256,
                        mode: PairMode::Isend,
                    },
                ],
            },
            Item::WildcardSink {
                sink: 0,
                senders: vec![1, 3],
                bytes: 64,
            },
            Item::Coll {
                op: CollOp::Allreduce,
                bytes: 512,
            },
            Item::Pair {
                src: 3,
                dst: 2,
                bytes: 4096,
                mode: PairMode::IrecvWait,
            },
            Item::OrphanRecv {
                src: 1,
                dst: 2,
                bytes: 128,
            },
        ],
    };
    let failure = Failure::Ks {
        distance: 0.8125,
        critical: 0.550_296_305_166_165_5,
        alpha: 1e-5,
        predicted: 40,
        simulated: 40,
    };
    // original_directives deliberately larger than the program: the
    // header records what the shrinker started from.
    let mut cx = Counterexample::new(&failure, 2004, &program, program.clone());
    cx.original_directives = 23;
    cx
}

#[test]
fn artifact_render_matches_golden_file() {
    let actual = sample().render();
    let path = golden_path();
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with BLESS=1 once",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "counterexample artifact drifted from the golden file; if the \
         change is intentional, regenerate with BLESS=1 (and bump the \
         artifact HEADER version if old artifacts no longer parse)"
    );
}

#[test]
fn golden_file_parses_back_to_the_fixture() {
    let text = std::fs::read_to_string(golden_path()).expect("golden file present");
    let cx = Counterexample::parse(&text).expect("golden artifact parses");
    assert_eq!(cx, sample());
    // The stable file name `cli fuzz --out` would use for it.
    assert_eq!(cx.file_name(), "ks-seed2004.model");
}
