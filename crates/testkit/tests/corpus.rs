//! Replay the committed regression corpus (`crates/testkit/corpus/`).
//!
//! Each `*.case` file is a minimised input promoted out of proptest's
//! local-only regression cache; each `*.model` file is a minimised fuzz
//! counterexample artifact pinned after its bug was fixed. Both kinds
//! replay on every `cargo test` with zero randomness, and an unknown
//! `property` name fails the test rather than skipping — a case can
//! never rot into a silent no-op.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use pevpm_dist::Ecdf;
use pevpm_testkit::campaign::{replay, CampaignConfig};
use pevpm_testkit::Counterexample;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Parse a `key = value` case file (`#` comments, blank lines ignored).
fn parse_case(text: &str, name: &str) -> BTreeMap<String, String> {
    let mut kv = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (k, v) = line
            .split_once('=')
            .unwrap_or_else(|| panic!("{name}: malformed line {line:?}"));
        kv.insert(k.trim().to_string(), v.trim().to_string());
    }
    kv
}

fn field<'a>(kv: &'a BTreeMap<String, String>, name: &str, key: &str) -> &'a str {
    kv.get(key)
        .unwrap_or_else(|| panic!("{name}: missing key {key:?}"))
}

fn floats(s: &str, name: &str) -> Vec<f64> {
    s.split_whitespace()
        .map(|t| {
            t.parse()
                .unwrap_or_else(|_| panic!("{name}: bad float {t:?}"))
        })
        .collect()
}

/// The adaptive-stopping reference rule on a pinned sample stream:
/// `stop_point` must stop at exactly `stop`, convergence must match,
/// and the drift detector over the full stream must return `drift`.
/// These witnesses pin the statistical machinery (Student-t quantile,
/// Welford accumulation, Welch drift test) bit-for-bit across refactors.
fn replay_adaptive_oracle(kv: &BTreeMap<String, String>, name: &str) {
    use pevpm::stats::{self, AdaptivePolicy};
    use pevpm_dist::Summary;

    let num = |key: &str| -> f64 {
        field(kv, name, key)
            .parse()
            .unwrap_or_else(|_| panic!("{name}: bad number for {key}"))
    };
    let stream = floats(field(kv, name, "stream"), name);
    assert!(!stream.is_empty(), "{name}: empty stream");
    let policy = AdaptivePolicy::new(num("precision"))
        .with_min_reps(num("min_reps") as usize)
        .with_max_reps(num("max_reps") as usize)
        .with_confidence(num("confidence"));
    policy
        .validate()
        .unwrap_or_else(|e| panic!("{name}: invalid pinned policy: {e}"));

    let expected_stop = num("stop") as usize;
    let stop = policy.stop_point(&stream);
    assert_eq!(
        stop, expected_stop,
        "{name}: stopping rule moved (pinned {expected_stop}, got {stop})"
    );
    let converged = policy.satisfied(&Summary::from_slice(&stream[..stop]));
    assert_eq!(
        converged.to_string(),
        field(kv, name, "converged"),
        "{name}: convergence verdict moved"
    );
    let drift = stats::detect_drift(&stream, stats::DRIFT_ALPHA);
    assert_eq!(
        drift.to_string(),
        field(kv, name, "drift"),
        "{name}: drift verdict moved"
    );
}

/// The type-7 quantile/cdf consistency property from `tests/proptests.rs`
/// (`ecdf_quantile_cdf_consistency`), replayed on a pinned witness.
fn replay_ecdf_quantile_cdf(kv: &BTreeMap<String, String>, name: &str) {
    let q: f64 = field(kv, name, "q")
        .parse()
        .unwrap_or_else(|_| panic!("{name}: bad q"));
    let samples = floats(field(kv, name, "samples"), name);
    assert!(!samples.is_empty(), "{name}: empty samples");

    let e = Ecdf::new(&samples);
    let x = e.quantile(q).expect("quantile on non-empty ECDF");
    let n = samples.len() as f64;
    assert!(
        e.cdf(x) + 1.0 / n + 1e-9 >= q,
        "{name}: cdf(quantile({q})) = {} < q - 1/n",
        e.cdf(x)
    );
    assert!(x >= e.quantile(0.0).unwrap(), "{name}: below minimum");
    assert!(x <= e.quantile(1.0).unwrap(), "{name}: above maximum");
}

#[test]
fn corpus_replays_clean() {
    let dir = corpus_dir();
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|r| r.expect("corpus dir entry").path())
        .collect();
    entries.sort();

    let mut cases = 0usize;
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("<non-utf8>")
            .to_string();
        let ext = path.extension().and_then(|e| e.to_str());
        match ext {
            Some("case") => {
                let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
                let kv = parse_case(&text, &name);
                match field(&kv, &name, "property") {
                    "ecdf-quantile-cdf-consistency" => replay_ecdf_quantile_cdf(&kv, &name),
                    "adaptive-oracle" => replay_adaptive_oracle(&kv, &name),
                    other => panic!(
                        "{name}: unknown property {other:?} — add a replayer \
                         in crates/testkit/tests/corpus.rs"
                    ),
                }
                cases += 1;
            }
            Some("model") => {
                // Pinned fuzz counterexamples document *fixed* bugs: they
                // must now pass their recorded oracle.
                let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
                let cx = Counterexample::parse(&text)
                    .unwrap_or_else(|e| panic!("{name}: bad artifact: {e}"));
                let cfg = CampaignConfig::default();
                if let Err(f) = replay(&cx, &cfg) {
                    panic!("{name}: pinned counterexample regressed:\n{f}");
                }
                cases += 1;
            }
            _ => {} // README.md and friends
        }
    }
    assert!(cases >= 1, "corpus must contain at least one case");
}
