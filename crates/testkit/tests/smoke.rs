//! The committed smoke corpus: 280 generated programs across the six
//! oracles, run on every `cargo test`. Long-run fuzzing uses the same
//! campaign driver through `pevpm fuzz`; this bounded corpus is the
//! regression net every PR inherits.
//!
//! Program counts per mode are chosen so the whole file stays in the
//! low seconds even in debug builds while clearing the ≥200-program
//! floor: the differential oracle is the cheapest and widest (all item
//! kinds), so it carries the largest share.

use pevpm_testkit::campaign::{run_campaign, CampaignConfig, Mode};

fn run(mode: Mode, programs: usize) {
    let cfg = CampaignConfig {
        mode,
        programs,
        ..CampaignConfig::default()
    };
    let res = run_campaign(&cfg);
    assert_eq!(res.programs, programs);
    assert!(res.directives > 0);
    if !res.passed() {
        let mut msg = format!(
            "{} counterexample(s) under the {} oracle:\n",
            res.failures.len(),
            mode
        );
        for cx in &res.failures {
            msg.push_str(&cx.render());
            msg.push('\n');
        }
        panic!("{msg}");
    }
}

#[test]
fn differential_smoke() {
    run(Mode::Differential, 80);
}

#[test]
fn metamorphic_smoke() {
    run(Mode::Metamorphic, 50);
}

#[test]
fn ks_smoke() {
    run(Mode::Ks, 40);
}

#[test]
fn diagnostics_smoke() {
    run(Mode::Diagnostics, 40);
}

#[test]
fn dag_smoke() {
    run(Mode::Dag, 40);
}

#[test]
fn adaptive_smoke() {
    run(Mode::Adaptive, 30);
}
