//! Seeded-divergence drills: prove the harness *catches* bugs, not just
//! that clean builds pass.
//!
//! Two layers:
//!
//! - A runtime drill (always on): evaluate the interpreted path against a
//!   compiled path whose `Send` distributions were nudged by 5%, exactly
//!   the class of defect the bitwise differential oracle exists for. The
//!   fuzzer must find a failing program, the shrinker must minimise it to
//!   a ≤ 10-directive counterexample, and the artifact must round-trip.
//! - A compiled-sampler drill behind the `divergence-injection` cargo
//!   feature: `pevpm-dist` flips one ULP on every compiled-path quantile,
//!   so the whole differential campaign must light up. Run explicitly via
//!   `cargo test -p pevpm-testkit --features divergence-injection --test
//!   divergence` (the feature deliberately breaks bitwise guarantees, so
//!   it is never enabled in normal builds).

use pevpm::replicate::replica_seed;
use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, EvalConfig};
use pevpm_dist::{CommDist, DistKey, DistTable, Histogram, Op};
use pevpm_testkit::gen::{generate, GenConfig};
use pevpm_testkit::shrink::shrink;
use pevpm_testkit::tables::{synthetic_table, CONTENTIONS};
use pevpm_testkit::{Counterexample, Failure, TestProgram};

/// Copy `table` with every `Send` histogram shifted up by 5% — a model
/// of a miscompiled sampler for one operation.
fn perturb_sends(table: &DistTable, sizes: &[u64]) -> DistTable {
    let mut broken = table.clone();
    let mut all_sizes: Vec<u64> = sizes.to_vec();
    all_sizes.push(0);
    for &size in &all_sizes {
        for &contention in &CONTENTIONS {
            let key = DistKey {
                op: Op::Send,
                size,
                contention,
            };
            if let Some(d) = table.get(&key) {
                let samples: Vec<f64> = (0..40)
                    .map(|i| d.quantile(i as f64 / 39.0) * 1.05)
                    .collect();
                let width = (samples[39] - samples[0]).max(1e-12) / 16.0;
                broken.insert(
                    key,
                    CommDist::Hist(Histogram::from_samples(&samples, width)),
                );
            }
        }
    }
    broken
}

/// The drill's differential check: interpreted on the true table vs
/// compiled on the perturbed one. Bitwise makespan comparison, same
/// replication seeding as the real oracle.
fn diverges(
    prog: &TestProgram,
    clean: &TimingModel,
    broken: &TimingModel,
    seed: u64,
) -> Option<Failure> {
    let model = prog.to_model();
    for r in 0..2u64 {
        let cfg = EvalConfig::new(prog.nprocs).with_seed(replica_seed(seed, r));
        let a = match evaluate(&model, &cfg, clean) {
            Ok(p) => p,
            Err(_) => return None, // out-of-family candidate; not a divergence
        };
        let b = match evaluate(&model, &cfg, broken) {
            Ok(p) => p,
            Err(_) => return None,
        };
        if a.makespan.to_bits() != b.makespan.to_bits() {
            return Some(Failure::Differential {
                left: "interpreted",
                right: "compiled",
                replication: r as usize,
                field: "makespan".into(),
                left_value: format!("{:.17e}", a.makespan),
                right_value: format!("{:.17e}", b.makespan),
            });
        }
    }
    None
}

#[test]
fn perturbed_sampler_is_caught_shrunk_and_replayable() {
    let gen_cfg = GenConfig::differential();
    let mut sizes = gen_cfg.sizes.clone();
    sizes.extend(gen_cfg.sizes.iter().map(|s| s * 2));
    let table = synthetic_table(&sizes, 11);
    let clean = TimingModel::interpreted(table.clone());
    let broken = TimingModel::distributions(perturb_sends(&table, &sizes));

    // The fuzzer must find the defect quickly: almost every program
    // contains a blocking send.
    let (seed, prog, first) = (0..20u64)
        .find_map(|seed| {
            let prog = generate(&gen_cfg, seed);
            diverges(&prog, &clean, &broken, seed).map(|f| (seed, prog, f))
        })
        .expect("a 5% sampler perturbation must be caught within 20 programs");

    let minimised = shrink(&prog, &gen_cfg.sizes, |cand| {
        diverges(cand, &clean, &broken, seed).is_some()
    });
    assert!(
        minimised.directives() <= 10,
        "shrinker left {} directives:\n{}",
        minimised.directives(),
        minimised.to_text()
    );
    assert!(
        diverges(&minimised, &clean, &broken, seed).is_some(),
        "minimised program must still diverge"
    );

    // The artifact round-trips and replays to the same program.
    let cx = Counterexample::new(&first, seed, &prog, minimised.clone());
    let parsed = Counterexample::parse(&cx.render()).expect("artifact must parse back");
    assert_eq!(parsed.program, minimised);
    assert_eq!(parsed.seed, seed);
    assert_eq!(parsed.oracle, "differential");
}

/// With the `divergence-injection` feature the DAG scheduler rotates the
/// per-component seeds whenever more than one worker is in play — a model
/// of a broken merge order. The thread-invariance oracle must catch it on
/// any multi-component program and the shrinker must stay inside the
/// multi-component family (single-component candidates take the serial
/// path and pass, so the predicate rejects them).
#[cfg(feature = "divergence-injection")]
#[test]
fn perturbed_component_merge_order_is_caught_and_shrunk() {
    use pevpm_testkit::oracle::check_dag;

    let gen_cfg = GenConfig::differential();
    let mut sizes = gen_cfg.sizes.clone();
    sizes.extend(gen_cfg.sizes.iter().map(|s| s * 2));
    let table = synthetic_table(&sizes, 11);

    let fails = |prog: &TestProgram, seed: u64| -> Option<Failure> {
        check_dag(prog, &table, seed, 2).err().filter(|f| {
            // Only thread-count divergences count; evaluation errors on
            // degenerate shrink candidates are not the seeded defect.
            f.kind() == "differential"
        })
    };

    let (seed, prog, first) = (0..50u64)
        .find_map(|seed| {
            let prog = generate(&gen_cfg, seed);
            fails(&prog, seed).map(|f| (seed, prog, f))
        })
        .expect("a rotated component merge order must be caught within 50 programs");

    let minimised = shrink(&prog, &gen_cfg.sizes, |cand| fails(cand, seed).is_some());
    assert!(
        minimised.directives() <= 10,
        "shrinker left {} directives:\n{}",
        minimised.directives(),
        minimised.to_text()
    );
    assert!(
        fails(&minimised, seed).is_some(),
        "minimised program must still diverge across thread counts"
    );

    let cx = Counterexample::new(&first, seed, &prog, minimised.clone());
    let parsed = Counterexample::parse(&cx.render()).expect("artifact must parse back");
    assert_eq!(parsed.program, minimised);
    assert_eq!(parsed.oracle, "differential");
}

/// With the `divergence-injection` feature the adaptive engine's
/// stopping check uses an off-by-one degrees-of-freedom count (the
/// half-width of `n` samples is computed as if there were `n + 1`) — a
/// model of the classic n-vs-n−1 mistake, which makes the rule *too
/// permissive* and stop early. The adaptive oracle must catch the
/// engine disagreeing with the reference `stop_point`, the shrinker
/// must minimise the witness, and the artifact must round-trip.
#[cfg(feature = "divergence-injection")]
#[test]
fn injected_off_by_one_stopping_rule_is_caught_and_shrunk() {
    use pevpm_testkit::oracle::check_adaptive;

    let gen_cfg = GenConfig::adaptive();
    let mut sizes = gen_cfg.sizes.clone();
    sizes.extend(gen_cfg.sizes.iter().map(|s| s * 2));
    let table = synthetic_table(&sizes, 11);

    // Only stop-point/prefix divergences count: the seeded defect moves
    // the stopping index, it does not break determinism.
    let fails = |prog: &TestProgram, seed: u64| -> Option<Failure> {
        check_adaptive(prog, &table, seed)
            .err()
            .filter(|f| f.kind() == "adaptive")
    };

    let (seed, prog, first) = (0..60u64)
        .find_map(|seed| {
            let prog = generate(&gen_cfg, seed);
            fails(&prog, seed).map(|f| (seed, prog, f))
        })
        .expect("an off-by-one stopping rule must be caught within 60 programs");

    let minimised = shrink(&prog, &gen_cfg.sizes, |cand| fails(cand, seed).is_some());
    assert!(
        minimised.directives() <= 10,
        "shrinker left {} directives:\n{}",
        minimised.directives(),
        minimised.to_text()
    );
    assert!(
        fails(&minimised, seed).is_some(),
        "minimised program must still trip the adaptive oracle"
    );

    let cx = Counterexample::new(&first, seed, &prog, minimised.clone());
    let parsed = Counterexample::parse(&cx.render()).expect("artifact must parse back");
    assert_eq!(parsed.program, minimised);
    assert_eq!(parsed.seed, seed);
    assert_eq!(parsed.oracle, "adaptive");
}

/// With the `divergence-injection` feature the compiled sampler's every
/// quantile is one ULP off: the differential campaign must light up and
/// every counterexample must shrink to ≤ 10 directives.
#[cfg(feature = "divergence-injection")]
#[test]
fn injected_ulp_divergence_is_caught_by_the_campaign() {
    use pevpm_testkit::campaign::{run_campaign, CampaignConfig};

    let cfg = CampaignConfig {
        programs: 10,
        ..CampaignConfig::default()
    };
    let res = run_campaign(&cfg);
    assert!(
        !res.failures.is_empty(),
        "a 1-ULP compiled-sampler mutation must not survive 10 programs"
    );
    for cx in &res.failures {
        assert_eq!(cx.oracle, "differential");
        assert!(
            cx.program.directives() <= 10,
            "counterexample not minimised: {} directives",
            cx.program.directives()
        );
    }
}
