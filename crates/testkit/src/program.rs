//! The fuzzer's intermediate representation of a model program.
//!
//! Generated programs are *schedules of matched communication*: a flat
//! sequence of items, where every point-to-point item names both endpoints
//! and every collective involves all processes. Each process executes the
//! items in sequence (skipping those it does not participate in), which
//! makes the schedule deadlock-free by construction — an operation at item
//! `k` can only wait for its own partner at item `k` or for predecessors at
//! items `< k`, so the wait-for graph is acyclic by induction over item
//! positions. This holds under both eager and rendezvous send semantics,
//! for non-blocking variants, and for wildcard sinks (a sink process posts
//! *only* wildcard receives, so FIFO sequence theft cannot occur).
//!
//! The IR lowers two ways: [`TestProgram::to_model`] emits the PEVPM
//! directive tree, and [`crate::corun`] interprets the same IR on real
//! mpisim ranks — giving the oracles one ground truth to compare both
//! implementations against.

use pevpm::model::build as b;
use pevpm::model::{CollOp, Model, MsgKind, Stmt};

/// How a matched point-to-point item is expressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairMode {
    /// Blocking `MPI_Send` / blocking `MPI_Recv`.
    Blocking,
    /// `MPI_Isend` on the sender (fire-and-forget in the PEVPM model),
    /// blocking receive on the destination.
    Isend,
    /// Blocking send, `MPI_Irecv` + `Wait` on the destination.
    IrecvWait,
}

impl PairMode {
    fn name(self) -> &'static str {
        match self {
            PairMode::Blocking => "blocking",
            PairMode::Isend => "isend",
            PairMode::IrecvWait => "irecv",
        }
    }

    fn from_name(s: &str) -> Option<PairMode> {
        Some(match s {
            "blocking" => PairMode::Blocking,
            "isend" => PairMode::Isend,
            "irecv" => PairMode::IrecvWait,
            _ => return None,
        })
    }
}

/// One schedule item. See the module docs for why a sequence of these is
/// deadlock-free.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Every process computes for `usecs` microseconds.
    ComputeAll { usecs: u64 },
    /// One process computes for `usecs` microseconds.
    Compute { proc: usize, usecs: u64 },
    /// A matched message `src → dst`.
    Pair {
        src: usize,
        dst: usize,
        bytes: u64,
        mode: PairMode,
    },
    /// Each sender sends one message to `sink`; the sink posts one
    /// *wildcard* receive per sender. All of the sink's receives in this
    /// item are wildcards, so matching is count-based and cannot stall.
    WildcardSink {
        sink: usize,
        senders: Vec<usize>,
        bytes: u64,
    },
    /// An unguarded collective over all processes.
    Coll { op: CollOp, bytes: u64 },
    /// A loop executed `count` times by every process. The body is itself
    /// a matched schedule, so unrolling preserves the induction argument.
    Loop { count: u32, body: Vec<Item> },
    /// (maybe-deadlock mode only) A receive whose matching send never
    /// happens. Used to exercise the VM's deadlock/budget diagnostics;
    /// never emitted by the well-formed generator.
    OrphanRecv { src: usize, dst: usize, bytes: u64 },
}

/// A generated model program.
#[derive(Debug, Clone, PartialEq)]
pub struct TestProgram {
    /// Number of processes (`numprocs`).
    pub nprocs: usize,
    /// The matched schedule.
    pub items: Vec<Item>,
}

fn secs_expr(usecs: u64) -> String {
    // Integer-over-integer division: folds (or evaluates) to the exact
    // same f64 in every evaluation path and survives the text round-trip.
    format!("{usecs}/1000000")
}

fn items_to_stmts(items: &[Item], path: &mut Vec<usize>, out: &mut Vec<Stmt>) {
    for (i, item) in items.iter().enumerate() {
        path.push(i);
        let tag: String = path
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(".");
        match item {
            Item::ComputeAll { usecs } => {
                out.push(b::labelled(
                    b::serial(&secs_expr(*usecs)),
                    &format!("item {tag}: compute-all"),
                ));
            }
            Item::Compute { proc, usecs } => {
                out.push(b::runon(
                    &format!("procnum == {proc}"),
                    vec![b::labelled(
                        b::serial(&secs_expr(*usecs)),
                        &format!("item {tag}: compute p{proc}"),
                    )],
                ));
            }
            Item::Pair {
                src,
                dst,
                bytes,
                mode,
            } => {
                let size = bytes.to_string();
                let (fs, ts) = (src.to_string(), dst.to_string());
                let send_stmt = match mode {
                    PairMode::Isend => b::isend(&size, &fs, &ts),
                    _ => b::send(&size, &fs, &ts),
                };
                let recv_stmts = match mode {
                    PairMode::IrecvWait => {
                        let h = format!("h{}", tag.replace('.', "_"));
                        vec![b::irecv(&size, &fs, &ts, &h), b::wait(&h)]
                    }
                    _ => vec![b::labelled(
                        b::recv(&size, &fs, &ts),
                        &format!("item {tag}: recv"),
                    )],
                };
                out.push(b::runon2(
                    &format!("procnum == {src}"),
                    vec![b::labelled(send_stmt, &format!("item {tag}: send"))],
                    &format!("procnum == {dst}"),
                    recv_stmts,
                ));
            }
            Item::WildcardSink {
                sink,
                senders,
                bytes,
            } => {
                let size = bytes.to_string();
                let mut branches: Vec<(&str, Vec<Stmt>)> = Vec::new();
                let conds: Vec<String> =
                    senders.iter().map(|s| format!("procnum == {s}")).collect();
                let bodies: Vec<Vec<Stmt>> = senders
                    .iter()
                    .map(|s| {
                        vec![b::labelled(
                            b::send(&size, &s.to_string(), &sink.to_string()),
                            &format!("item {tag}: send to sink"),
                        )]
                    })
                    .collect();
                let sink_cond = format!("procnum == {sink}");
                let sink_body: Vec<Stmt> = (0..senders.len())
                    .map(|_| {
                        b::labelled(
                            b::recv(&size, "-1", &sink.to_string()),
                            &format!("item {tag}: wildcard recv"),
                        )
                    })
                    .collect();
                for (c, body) in conds.iter().zip(bodies) {
                    branches.push((c.as_str(), body));
                }
                branches.push((sink_cond.as_str(), sink_body));
                out.push(Stmt::Runon {
                    branches: branches
                        .into_iter()
                        .map(|(c, body)| (b::e(c), body))
                        .collect(),
                });
            }
            Item::Coll { op, bytes } => {
                out.push(b::labelled(
                    b::collective(*op, &bytes.to_string()),
                    &format!("item {tag}: collective"),
                ));
            }
            Item::Loop { count, body } => {
                let mut inner = Vec::new();
                items_to_stmts(body, path, &mut inner);
                out.push(b::looped(&count.to_string(), inner));
            }
            Item::OrphanRecv { src, dst, bytes } => {
                out.push(b::runon(
                    &format!("procnum == {dst}"),
                    vec![b::labelled(
                        b::recv(&bytes.to_string(), &src.to_string(), &dst.to_string()),
                        &format!("item {tag}: orphan recv"),
                    )],
                ));
            }
        }
        path.pop();
    }
}

fn coll_name(op: CollOp) -> &'static str {
    match op {
        CollOp::Barrier => "barrier",
        CollOp::Bcast => "bcast",
        CollOp::Reduce => "reduce",
        CollOp::Allreduce => "allreduce",
        CollOp::Alltoall => "alltoall",
    }
}

fn coll_from_name(s: &str) -> Option<CollOp> {
    Some(match s {
        "barrier" => CollOp::Barrier,
        "bcast" => CollOp::Bcast,
        "reduce" => CollOp::Reduce,
        "allreduce" => CollOp::Allreduce,
        "alltoall" => CollOp::Alltoall,
        _ => return None,
    })
}

impl TestProgram {
    /// Lower to a PEVPM directive [`Model`].
    pub fn to_model(&self) -> Model {
        let mut stmts = Vec::new();
        items_to_stmts(&self.items, &mut Vec::new(), &mut stmts);
        Model {
            stmts,
            params: Default::default(),
        }
    }

    /// Number of PEVPM directives the lowered model contains.
    pub fn directives(&self) -> usize {
        self.to_model().num_stmts()
    }

    /// Whether any item (recursively) posts a wildcard receive.
    pub fn has_wildcards(&self) -> bool {
        fn scan(items: &[Item]) -> bool {
            items.iter().any(|i| match i {
                Item::WildcardSink { .. } => true,
                Item::Loop { body, .. } => scan(body),
                _ => false,
            })
        }
        scan(&self.items)
    }

    /// Whether any item (recursively) is an orphan receive.
    pub fn has_orphans(&self) -> bool {
        fn scan(items: &[Item]) -> bool {
            items.iter().any(|i| match i {
                Item::OrphanRecv { .. } => true,
                Item::Loop { body, .. } => scan(body),
                _ => false,
            })
        }
        scan(&self.items)
    }

    /// The same program with every message size multiplied by `factor`
    /// (sizes must stay within the timing table's grid for evaluation).
    pub fn scaled_sizes(&self, factor: u64) -> TestProgram {
        fn scale(items: &[Item], factor: u64) -> Vec<Item> {
            items
                .iter()
                .map(|i| match i {
                    Item::Pair {
                        src,
                        dst,
                        bytes,
                        mode,
                    } => Item::Pair {
                        src: *src,
                        dst: *dst,
                        bytes: bytes * factor,
                        mode: *mode,
                    },
                    Item::WildcardSink {
                        sink,
                        senders,
                        bytes,
                    } => Item::WildcardSink {
                        sink: *sink,
                        senders: senders.clone(),
                        bytes: bytes * factor,
                    },
                    Item::Coll { op, bytes } => Item::Coll {
                        op: *op,
                        bytes: bytes * factor,
                    },
                    Item::Loop { count, body } => Item::Loop {
                        count: *count,
                        body: scale(body, factor),
                    },
                    other => other.clone(),
                })
                .collect()
        }
        TestProgram {
            nprocs: self.nprocs,
            items: scale(&self.items, factor),
        }
    }

    /// Serialise to the replayable text form (the `--- program ---`
    /// section of a counterexample artifact). Round-trips through
    /// [`TestProgram::parse`].
    pub fn to_text(&self) -> String {
        fn write_items(items: &[Item], depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            for item in items {
                match item {
                    Item::ComputeAll { usecs } => {
                        out.push_str(&format!("{pad}computeall usecs={usecs}\n"));
                    }
                    Item::Compute { proc, usecs } => {
                        out.push_str(&format!("{pad}compute proc={proc} usecs={usecs}\n"));
                    }
                    Item::Pair {
                        src,
                        dst,
                        bytes,
                        mode,
                    } => {
                        out.push_str(&format!(
                            "{pad}pair src={src} dst={dst} bytes={bytes} mode={}\n",
                            mode.name()
                        ));
                    }
                    Item::WildcardSink {
                        sink,
                        senders,
                        bytes,
                    } => {
                        let s: Vec<String> = senders.iter().map(|x| x.to_string()).collect();
                        out.push_str(&format!(
                            "{pad}wildcard sink={sink} senders={} bytes={bytes}\n",
                            s.join(",")
                        ));
                    }
                    Item::Coll { op, bytes } => {
                        out.push_str(&format!("{pad}coll op={} bytes={bytes}\n", coll_name(*op)));
                    }
                    Item::Loop { count, body } => {
                        out.push_str(&format!("{pad}loop count={count}\n"));
                        write_items(body, depth + 1, out);
                        out.push_str(&format!("{pad}end\n"));
                    }
                    Item::OrphanRecv { src, dst, bytes } => {
                        out.push_str(&format!(
                            "{pad}orphanrecv src={src} dst={dst} bytes={bytes}\n"
                        ));
                    }
                }
            }
        }
        let mut out = format!("nprocs = {}\n", self.nprocs);
        write_items(&self.items, 0, &mut out);
        out
    }

    /// Parse the text form produced by [`TestProgram::to_text`]. Errors
    /// carry the 1-based line number of the offending line.
    pub fn parse(text: &str) -> Result<TestProgram, ProgramParseError> {
        let fail = |line: usize, message: String| ProgramParseError { line, message };
        let mut nprocs: Option<usize> = None;
        // Stack of open item lists: the root plus one per open loop.
        let mut stack: Vec<Vec<Item>> = vec![Vec::new()];
        let mut loop_counts: Vec<u32> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("nprocs") {
                let v = rest.trim_start_matches(['=', ' ']).trim();
                nprocs = Some(
                    v.parse()
                        .map_err(|_| fail(lineno, format!("bad nprocs {v:?}")))?,
                );
                continue;
            }
            let mut fields = std::collections::HashMap::new();
            let mut words = line.split_whitespace();
            let head = words.next().unwrap_or_default().to_string();
            for w in words {
                if let Some((k, v)) = w.split_once('=') {
                    fields.insert(k.to_string(), v.to_string());
                }
            }
            let get = |k: &str| -> Result<String, ProgramParseError> {
                fields
                    .get(k)
                    .cloned()
                    .ok_or_else(|| fail(lineno, format!("{head} item missing field {k:?}")))
            };
            let get_num = |k: &str| -> Result<u64, ProgramParseError> {
                let v = get(k)?;
                v.parse()
                    .map_err(|_| fail(lineno, format!("bad number for {k}: {v:?}")))
            };
            let item = match head.as_str() {
                "computeall" => Some(Item::ComputeAll {
                    usecs: get_num("usecs")?,
                }),
                "compute" => Some(Item::Compute {
                    proc: get_num("proc")? as usize,
                    usecs: get_num("usecs")?,
                }),
                "pair" => {
                    let mode_s = get("mode")?;
                    let mode = PairMode::from_name(&mode_s)
                        .ok_or_else(|| fail(lineno, format!("unknown pair mode {mode_s:?}")))?;
                    Some(Item::Pair {
                        src: get_num("src")? as usize,
                        dst: get_num("dst")? as usize,
                        bytes: get_num("bytes")?,
                        mode,
                    })
                }
                "wildcard" => {
                    let senders: Result<Vec<usize>, _> = get("senders")?
                        .split(',')
                        .map(|s| {
                            s.parse::<usize>()
                                .map_err(|_| fail(lineno, format!("bad sender {s:?}")))
                        })
                        .collect();
                    Some(Item::WildcardSink {
                        sink: get_num("sink")? as usize,
                        senders: senders?,
                        bytes: get_num("bytes")?,
                    })
                }
                "coll" => {
                    let op_s = get("op")?;
                    let op = coll_from_name(&op_s)
                        .ok_or_else(|| fail(lineno, format!("unknown collective {op_s:?}")))?;
                    Some(Item::Coll {
                        op,
                        bytes: get_num("bytes")?,
                    })
                }
                "orphanrecv" => Some(Item::OrphanRecv {
                    src: get_num("src")? as usize,
                    dst: get_num("dst")? as usize,
                    bytes: get_num("bytes")?,
                }),
                "loop" => {
                    loop_counts.push(get_num("count")? as u32);
                    stack.push(Vec::new());
                    None
                }
                "end" => {
                    let body = stack
                        .pop()
                        .filter(|_| !stack.is_empty())
                        .ok_or_else(|| fail(lineno, "'end' without open loop".into()))?;
                    let count = loop_counts.pop().unwrap_or(1);
                    stack
                        .last_mut()
                        .ok_or_else(|| fail(lineno, "'end' without open loop".into()))?
                        .push(Item::Loop { count, body });
                    None
                }
                other => return Err(fail(lineno, format!("unknown item {other:?}"))),
            };
            if let Some(item) = item {
                stack
                    .last_mut()
                    .ok_or_else(|| fail(lineno, "item outside program".into()))?
                    .push(item);
            }
        }
        if stack.len() != 1 {
            return Err(fail(text.lines().count(), "unclosed loop".into()));
        }
        let nprocs = nprocs.ok_or_else(|| fail(1, "missing 'nprocs = N' header line".into()))?;
        if nprocs == 0 {
            return Err(fail(1, "nprocs must be positive".into()));
        }
        let items = stack.pop().unwrap_or_default();
        Ok(TestProgram { nprocs, items })
    }

    /// Render as `// PEVPM` annotations — the human-auditable form of a
    /// counterexample, replayable through `pevpm annotate`/`predict` and
    /// [`pevpm::parse_annotations`].
    pub fn to_annotated(&self) -> String {
        fn emit_stmts(stmts: &[Stmt], out: &mut String) {
            for s in stmts {
                match s {
                    Stmt::Loop { count, body, .. } => {
                        out.push_str(&format!("// PEVPM Loop iterations = {count}\n"));
                        out.push_str("// PEVPM {\n");
                        emit_stmts(body, out);
                        out.push_str("// PEVPM }\n");
                    }
                    Stmt::Runon { branches } => {
                        for (i, (cond, _)) in branches.iter().enumerate() {
                            if i == 0 {
                                out.push_str(&format!("// PEVPM Runon c1 = {cond}\n"));
                            } else {
                                out.push_str(&format!("// PEVPM &     c{} = {cond}\n", i + 1));
                            }
                        }
                        for (_, body) in branches {
                            out.push_str("// PEVPM {\n");
                            emit_stmts(body, out);
                            out.push_str("// PEVPM }\n");
                        }
                    }
                    Stmt::Message {
                        kind,
                        size,
                        from,
                        to,
                        handle,
                        ..
                    } => {
                        let ty = match kind {
                            MsgKind::Send => "MPI_Send",
                            MsgKind::Isend => "MPI_Isend",
                            MsgKind::Recv => "MPI_Recv",
                            MsgKind::Irecv => "MPI_Irecv",
                        };
                        out.push_str(&format!("// PEVPM Message type = {ty}\n"));
                        out.push_str(&format!("// PEVPM &       size = {size}\n"));
                        out.push_str(&format!("// PEVPM &       from = {from}\n"));
                        out.push_str(&format!("// PEVPM &       to = {to}\n"));
                        if let Some(h) = handle {
                            out.push_str(&format!("// PEVPM &       handle = {h}\n"));
                        }
                    }
                    Stmt::Wait { handle, .. } => {
                        out.push_str(&format!("// PEVPM Wait handle = {handle}\n"));
                    }
                    Stmt::Serial { time, .. } => {
                        out.push_str(&format!("// PEVPM Serial time = {time}\n"));
                    }
                    Stmt::Collective { op, size, .. } => {
                        out.push_str(&format!("// PEVPM Collective op = {}\n", coll_name(*op)));
                        out.push_str(&format!("// PEVPM &          size = {size}\n"));
                    }
                }
            }
        }
        let mut out = String::new();
        emit_stmts(&self.to_model().stmts, &mut out);
        out
    }
}

/// A line-numbered error from [`TestProgram::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ProgramParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ProgramParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TestProgram {
        TestProgram {
            nprocs: 4,
            items: vec![
                Item::ComputeAll { usecs: 120 },
                Item::Pair {
                    src: 0,
                    dst: 1,
                    bytes: 1024,
                    mode: PairMode::Blocking,
                },
                Item::Loop {
                    count: 3,
                    body: vec![
                        Item::Compute { proc: 2, usecs: 40 },
                        Item::Pair {
                            src: 2,
                            dst: 3,
                            bytes: 256,
                            mode: PairMode::IrecvWait,
                        },
                    ],
                },
                Item::WildcardSink {
                    sink: 0,
                    senders: vec![1, 2, 3],
                    bytes: 512,
                },
                Item::Coll {
                    op: CollOp::Allreduce,
                    bytes: 64,
                },
            ],
        }
    }

    #[test]
    fn text_round_trips() {
        let p = sample();
        let text = p.to_text();
        let back = TestProgram::parse(&text).unwrap();
        assert_eq!(p, back);
        // And the round-tripped program lowers to an identical model.
        assert_eq!(
            format!("{:?}", p.to_model()),
            format!("{:?}", back.to_model())
        );
    }

    #[test]
    fn parse_reports_line_numbers() {
        let e = TestProgram::parse("nprocs = 2\nfrobnicate x=1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"), "{e}");
        let e = TestProgram::parse("pair src=0 dst=1 bytes=8 mode=blocking\n").unwrap_err();
        assert!(e.message.contains("nprocs"), "{e}");
        let e = TestProgram::parse(
            "nprocs = 2\nloop count=2\npair src=0 dst=1 bytes=8 mode=blocking\n",
        )
        .unwrap_err();
        assert!(e.message.contains("unclosed"), "{e}");
        let e = TestProgram::parse("nprocs = 2\npair src=0 dst=1 mode=blocking\n").unwrap_err();
        assert!(e.message.contains("bytes"), "{e}");
    }

    #[test]
    fn annotated_form_parses_back() {
        let p = sample();
        let model = p.to_model();
        let parsed = pevpm::parse_annotations(&p.to_annotated()).unwrap();
        assert_eq!(parsed.num_stmts(), model.num_stmts());
    }

    #[test]
    fn directives_counts_lowered_statements() {
        let p = TestProgram {
            nprocs: 2,
            items: vec![Item::Pair {
                src: 0,
                dst: 1,
                bytes: 64,
                mode: PairMode::Blocking,
            }],
        };
        // Runon + Send + Recv.
        assert_eq!(p.directives(), 3);
    }

    #[test]
    fn scaling_only_touches_sizes() {
        let p = sample();
        let s = p.scaled_sizes(2);
        assert_eq!(s.nprocs, p.nprocs);
        match (&p.items[1], &s.items[1]) {
            (Item::Pair { bytes: a, .. }, Item::Pair { bytes: b, .. }) => {
                assert_eq!(*b, 2 * *a);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
