//! Fuzzing campaigns: generate → check → shrink → report, per oracle.
//!
//! This is the engine behind both the `cli fuzz` subcommand and the
//! committed smoke corpus (`crates/testkit/tests/smoke.rs`). A campaign
//! is fully determined by its [`CampaignConfig`]: the same config always
//! generates the same programs, builds the same tables, and reaches the
//! same verdicts.

use crate::gen::{generate, GenConfig};
use crate::oracle::{
    check_adaptive, check_dag, check_diagnostics, check_differential, check_fault_identity,
    check_ks, check_scaling, Failure,
};
use crate::program::TestProgram;
use crate::report::Counterexample;
use crate::shrink::shrink;
use crate::tables::{bench_table, synthetic_table};
use pevpm_dist::DistTable;
use pevpm_mpibench::MachineShape;
use std::fmt;

/// Which oracle a campaign drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Bitwise agreement of the three evaluation paths.
    Differential,
    /// Size-scaling dominance plus empty-fault-plan identity.
    Metamorphic,
    /// Two-sample KS against mpisim co-simulation.
    Ks,
    /// Deadlock/budget diagnostics on maybe-deadlocking programs.
    Diagnostics,
    /// Bitwise thread-count invariance of the DAG scheduler (and serial
    /// agreement when the decomposition stands down).
    Dag,
    /// Adaptive sequential stopping against the reference rule:
    /// determinism, fixed-prefix truncation, and CI agreement with the
    /// full fixed batch.
    Adaptive,
}

impl Mode {
    /// Stable lower-case name (CLI flag value, report field).
    pub fn name(self) -> &'static str {
        match self {
            Mode::Differential => "differential",
            Mode::Metamorphic => "metamorphic",
            Mode::Ks => "ks",
            Mode::Diagnostics => "diagnostics",
            Mode::Dag => "dag",
            Mode::Adaptive => "adaptive",
        }
    }

    /// Parse a [`Mode::name`] back.
    pub fn from_name(s: &str) -> Option<Mode> {
        match s {
            "differential" => Some(Mode::Differential),
            "metamorphic" => Some(Mode::Metamorphic),
            "ks" => Some(Mode::Ks),
            "diagnostics" => Some(Mode::Diagnostics),
            "dag" => Some(Mode::Dag),
            "adaptive" => Some(Mode::Adaptive),
            _ => None,
        }
    }

    /// All modes, in reporting order.
    pub const ALL: [Mode; 6] = [
        Mode::Differential,
        Mode::Metamorphic,
        Mode::Ks,
        Mode::Diagnostics,
        Mode::Dag,
        Mode::Adaptive,
    ];
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of one campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Oracle to drive.
    pub mode: Mode,
    /// Number of programs to generate and check.
    pub programs: usize,
    /// Base seed; program `i` uses `seed + i`.
    pub seed: u64,
    /// KS significance level.
    pub alpha: f64,
    /// Monte-Carlo replications per differential/metamorphic program.
    pub replications: usize,
    /// Samples per side of the KS test.
    pub ks_runs: usize,
    /// MPIBench repetitions backing the KS table.
    pub bench_reps: usize,
}

impl Default for CampaignConfig {
    /// The default α puts the 40-vs-40 critical KS distance at ≈0.55:
    /// well above the ≈0.45 that the engine's genuine residual modelling
    /// error (~1% of the makespan, the figure the paper itself reports)
    /// can reach on long relay chains, and well below the 0.8–1.0 that
    /// real defects (wrong matching, lost contention, broken sampling)
    /// produce — every seeded-bug counterexample found while calibrating
    /// scored ≥ 0.775.
    fn default() -> Self {
        CampaignConfig {
            mode: Mode::Differential,
            programs: 50,
            seed: 2004,
            alpha: 1e-5,
            replications: 3,
            ks_runs: 40,
            bench_reps: 40,
        }
    }
}

/// The machine shape KS campaigns benchmark and co-simulate on.
///
/// One process per node keeps every link inter-node: with `ppn > 1` the
/// ring benchmark mixes intra- and inter-node samples into one
/// distribution, a locality split the `(op, size, contention)` table key
/// cannot express, so any single-locality program diverges from the
/// mixture and the KS oracle reports model-fidelity noise instead of
/// engine bugs.
pub const KS_SHAPE: MachineShape = MachineShape { nodes: 4, ppn: 1 };

/// Message-size grid of KS campaigns (kept small: each size needs its
/// own benchmark distribution, and eager-protocol only).
pub const KS_SIZES: [u64; 3] = [256, 1024, 4096];

/// Outcome of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// How many programs were checked.
    pub programs: usize,
    /// Minimised counterexamples, in discovery order (empty on success).
    pub failures: Vec<Counterexample>,
    /// Sum of generated directive counts (a coverage indicator).
    pub directives: usize,
}

impl CampaignResult {
    /// True when every program passed its oracle.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Generator config and timing table for a mode.
fn mode_setup(mode: Mode, seed: u64, bench_reps: usize) -> (GenConfig, DistTable) {
    match mode {
        Mode::Differential => {
            let cfg = GenConfig::differential();
            let table = synthetic_table(&with_doubles(&cfg.sizes), seed);
            (cfg, table)
        }
        Mode::Metamorphic => {
            let cfg = GenConfig::metamorphic();
            let table = synthetic_table(&with_doubles(&cfg.sizes), seed);
            (cfg, table)
        }
        Mode::Ks => {
            let cfg = GenConfig::ks(KS_SHAPE.nodes * KS_SHAPE.ppn, KS_SIZES.to_vec());
            let table = bench_table(&KS_SIZES, bench_reps, seed);
            (cfg, table)
        }
        Mode::Diagnostics => {
            let cfg = GenConfig::maybe_deadlocking();
            let table = synthetic_table(&with_doubles(&cfg.sizes), seed);
            (cfg, table)
        }
        Mode::Dag => {
            // The differential corpus: deadlock-free, wildcard-heavy,
            // multi-process — the right stressor for component matching.
            let cfg = GenConfig::differential();
            let table = synthetic_table(&with_doubles(&cfg.sizes), seed);
            (cfg, table)
        }
        Mode::Adaptive => {
            let cfg = GenConfig::adaptive();
            let table = synthetic_table(&with_doubles(&cfg.sizes), seed);
            (cfg, table)
        }
    }
}

fn with_doubles(sizes: &[u64]) -> Vec<u64> {
    let mut all: Vec<u64> = sizes.to_vec();
    all.extend(sizes.iter().map(|s| s * 2));
    all.sort_unstable();
    all.dedup();
    all
}

/// Run one program through the mode's oracle.
fn check(
    mode: Mode,
    cfg: &CampaignConfig,
    table: &DistTable,
    prog: &TestProgram,
    seed: u64,
) -> Result<(), Failure> {
    match mode {
        Mode::Differential => check_differential(prog, table, seed, cfg.replications),
        Mode::Metamorphic => {
            check_scaling(prog, table, 2, seed, cfg.replications)?;
            check_fault_identity(
                prog,
                MachineShape {
                    nodes: prog.nprocs,
                    ppn: 1,
                },
                seed,
            )
        }
        Mode::Ks => {
            // Shrink candidates that drop processes cannot be co-simulated
            // on the benchmarked shape, and candidates outside the
            // token-relay family fail for model-fidelity reasons the
            // oracle does not gate (see [`crate::gen::is_token_relay`]);
            // treat both as passing so the shrinker rejects them instead
            // of wandering out of the sound program space.
            if prog.nprocs != KS_SHAPE.nodes * KS_SHAPE.ppn || !crate::gen::is_token_relay(prog) {
                return Ok(());
            }
            check_ks(
                prog,
                table,
                KS_SHAPE,
                cfg.alpha,
                cfg.ks_runs,
                cfg.ks_runs,
                seed,
            )
            .map(|_| ())
        }
        Mode::Diagnostics => check_diagnostics(prog, table, seed),
        Mode::Dag => check_dag(prog, table, seed, cfg.replications),
        Mode::Adaptive => check_adaptive(prog, table, seed),
    }
}

/// Run a campaign: generate `programs` programs, check each, and shrink
/// any failure to a minimised [`Counterexample`].
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignResult {
    let (gen_cfg, table) = mode_setup(cfg.mode, cfg.seed, cfg.bench_reps);
    let mut failures = Vec::new();
    let mut directives = 0;
    for i in 0..cfg.programs {
        let seed = cfg.seed.wrapping_add(i as u64);
        let prog = generate(&gen_cfg, seed);
        directives += prog.directives();
        if let Err(first) = check(cfg.mode, cfg, &table, &prog, seed) {
            // Shrink toward the *same kind* of failure so minimisation
            // cannot wander from, say, a KS divergence to an evaluation
            // error on a degenerate candidate.
            let kind = first.kind();
            let minimised = shrink(&prog, &gen_cfg.sizes, |candidate| {
                check(cfg.mode, cfg, &table, candidate, seed)
                    .err()
                    .is_some_and(|f| f.kind() == kind)
            });
            // Re-derive the failure on the minimised program so the
            // artifact's description matches what it replays to; fall
            // back to the original failure if shrinking somehow landed
            // on a passing program (it cannot, by construction).
            let failure = check(cfg.mode, cfg, &table, &minimised, seed)
                .err()
                .unwrap_or(first);
            failures.push(Counterexample::new(&failure, seed, &prog, minimised));
        }
    }
    CampaignResult {
        programs: cfg.programs,
        failures,
        directives,
    }
}

/// Replay a parsed counterexample artifact under its recorded oracle.
/// Returns the failure if it still reproduces.
pub fn replay(cx: &Counterexample, cfg: &CampaignConfig) -> Result<(), Failure> {
    let mode = Mode::from_name(&cx.oracle).unwrap_or(cfg.mode);
    let (_, table) = mode_setup(mode, cfg.seed, cfg.bench_reps);
    check(mode, cfg, &table, &cx.program, cx.seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip() {
        for m in Mode::ALL {
            assert_eq!(Mode::from_name(m.name()), Some(m));
        }
        assert_eq!(Mode::from_name("bogus"), None);
    }

    #[test]
    fn small_differential_campaign_passes() {
        let cfg = CampaignConfig {
            programs: 5,
            ..CampaignConfig::default()
        };
        let res = run_campaign(&cfg);
        assert!(res.passed(), "{:?}", res.failures);
        assert_eq!(res.programs, 5);
        assert!(res.directives > 0);
    }

    #[test]
    fn small_dag_campaign_passes() {
        let cfg = CampaignConfig {
            mode: Mode::Dag,
            programs: 5,
            ..CampaignConfig::default()
        };
        let res = run_campaign(&cfg);
        assert!(res.passed(), "{:?}", res.failures);
    }

    #[test]
    fn small_diagnostics_campaign_passes() {
        let cfg = CampaignConfig {
            mode: Mode::Diagnostics,
            programs: 5,
            ..CampaignConfig::default()
        };
        let res = run_campaign(&cfg);
        assert!(res.passed(), "{:?}", res.failures);
    }
}
