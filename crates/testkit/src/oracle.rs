//! The oracle hierarchy: bitwise differential, statistical (KS),
//! metamorphic, and diagnostics checks over one [`TestProgram`].
//!
//! Every check is a pure function of `(program, table, seed)` so a
//! failure replays exactly and the shrinker can re-run it on candidate
//! reductions.

use crate::corun;
use crate::program::TestProgram;
use pevpm::replicate::replica_seed;
use pevpm::timing::TimingModel;
use pevpm::vm::{evaluate, monte_carlo, EvalConfig, PevpmError, Prediction};
use pevpm_dist::{DistTable, Ecdf};
use pevpm_mpibench::MachineShape;
use pevpm_mpisim::{FaultPlan, WorldConfig};
use std::fmt;

/// A confirmed oracle violation. `Display` is deterministic — it appears
/// verbatim in counterexample artifacts and golden files.
#[derive(Debug, Clone, PartialEq)]
pub enum Failure {
    /// Two evaluation paths disagreed bitwise.
    Differential {
        /// Name of the first evaluation path.
        left: &'static str,
        /// Name of the second evaluation path.
        right: &'static str,
        /// Replication index at which they diverged.
        replication: usize,
        /// Which field diverged (`makespan`, `finish_times[i]`, …).
        field: String,
        /// The first path's value, rendered exactly.
        left_value: String,
        /// The second path's value, rendered exactly.
        right_value: String,
    },
    /// The two-sample KS statistic exceeded the critical value.
    Ks {
        /// Observed KS distance.
        distance: f64,
        /// Critical value at `alpha`.
        critical: f64,
        /// Significance level used.
        alpha: f64,
        /// Predicted-sample count.
        predicted: usize,
        /// Simulated-sample count.
        simulated: usize,
    },
    /// Doubling every message size shrank a replication's makespan.
    MetamorphicScaling {
        /// Replication index that violated dominance.
        replication: usize,
        /// Base-program makespan.
        base: f64,
        /// Scaled-program makespan.
        scaled: f64,
    },
    /// An empty fault plan changed the co-simulated makespan.
    FaultIdentity {
        /// Makespan with `faults: None`.
        without: f64,
        /// Makespan with `faults: Some(FaultPlan::default())`.
        with_plan: f64,
    },
    /// A diagnostics-mode program produced the wrong outcome class.
    Diagnostics {
        /// What happened, including what was expected.
        outcome: String,
    },
    /// The adaptive replication engine violated its stopping contract.
    Adaptive {
        /// Which part of the contract broke (`determinism`,
        /// `stop-point`, `prefix`, `ci-agreement`).
        check: &'static str,
        /// What was observed, rendered exactly.
        detail: String,
    },
    /// An oracle could not even run the program (evaluation or
    /// co-simulation error outside the accepted diagnostic classes).
    Error {
        /// Which step failed.
        context: String,
        /// The underlying error.
        error: String,
    },
}

impl Failure {
    /// Stable short name of the violated oracle, used in artifact
    /// headers and file names.
    pub fn kind(&self) -> &'static str {
        match self {
            Failure::Differential { .. } => "differential",
            Failure::Ks { .. } => "ks",
            Failure::MetamorphicScaling { .. } => "metamorphic-scaling",
            Failure::FaultIdentity { .. } => "fault-identity",
            Failure::Diagnostics { .. } => "diagnostics",
            Failure::Adaptive { .. } => "adaptive",
            Failure::Error { .. } => "error",
        }
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Differential {
                left,
                right,
                replication,
                field,
                left_value,
                right_value,
            } => write!(
                f,
                "{left} vs {right} diverge at replication {replication}: \
                 {field} = {left_value} vs {right_value}"
            ),
            Failure::Ks {
                distance,
                critical,
                alpha,
                predicted,
                simulated,
            } => write!(
                f,
                "KS distance {distance:.4} exceeds critical {critical:.4} \
                 (alpha {alpha}, n={predicted} predicted vs m={simulated} simulated)"
            ),
            Failure::MetamorphicScaling {
                replication,
                base,
                scaled,
            } => write!(
                f,
                "doubling message sizes shrank replication {replication}: \
                 base {base:.9e} > scaled {scaled:.9e}"
            ),
            Failure::FaultIdentity { without, with_plan } => write!(
                f,
                "empty FaultPlan changed the makespan: {without:.9e} \
                 (no plan) vs {with_plan:.9e} (empty plan)"
            ),
            Failure::Diagnostics { outcome } => write!(f, "{outcome}"),
            Failure::Adaptive { check, detail } => {
                write!(f, "adaptive {check} contract violated: {detail}")
            }
            Failure::Error { context, error } => write!(f, "{context}: {error}"),
        }
    }
}

fn eval_err(context: &str, e: &PevpmError) -> Failure {
    Failure::Error {
        context: context.to_string(),
        error: format!("{e:?}"),
    }
}

/// Compare two predictions field-by-field at bit precision.
fn compare(
    left: &'static str,
    right: &'static str,
    replication: usize,
    a: &Prediction,
    b: &Prediction,
) -> Result<(), Failure> {
    let fail = |field: String, lv: String, rv: String| Failure::Differential {
        left,
        right,
        replication,
        field,
        left_value: lv,
        right_value: rv,
    };
    if a.makespan.to_bits() != b.makespan.to_bits() {
        return Err(fail(
            "makespan".into(),
            format!("{:.17e}", a.makespan),
            format!("{:.17e}", b.makespan),
        ));
    }
    if a.finish_times.len() != b.finish_times.len() {
        return Err(fail(
            "finish_times.len".into(),
            a.finish_times.len().to_string(),
            b.finish_times.len().to_string(),
        ));
    }
    for (i, (x, y)) in a.finish_times.iter().zip(&b.finish_times).enumerate() {
        if x.to_bits() != y.to_bits() {
            return Err(fail(
                format!("finish_times[{i}]"),
                format!("{x:.17e}"),
                format!("{y:.17e}"),
            ));
        }
    }
    if a.messages != b.messages {
        return Err(fail(
            "messages".into(),
            a.messages.to_string(),
            b.messages.to_string(),
        ));
    }
    Ok(())
}

/// Oracle 1 — the interpreted, compiled, and unfolded-lowering evaluation
/// paths must agree bitwise on every replication.
///
/// "Unfolded" evaluates through the compiled timing model but with
/// constant folding disabled ([`EvalConfig::without_const_fold`]), so the
/// lowering pipeline itself is differentially exercised, not just the
/// sampler.
pub fn check_differential(
    prog: &TestProgram,
    table: &DistTable,
    seed: u64,
    replications: usize,
) -> Result<(), Failure> {
    let model = prog.to_model();
    let interp = TimingModel::interpreted(table.clone());
    let compiled = TimingModel::distributions(table.clone());
    for r in 0..replications {
        let cfg = EvalConfig::new(prog.nprocs).with_seed(replica_seed(seed, r as u64));
        let a = evaluate(&model, &cfg, &interp).map_err(|e| eval_err("interpreted", &e))?;
        let b = evaluate(&model, &cfg, &compiled).map_err(|e| eval_err("compiled", &e))?;
        let c = evaluate(&model, &cfg.clone().without_const_fold(), &compiled)
            .map_err(|e| eval_err("unfolded", &e))?;
        compare("interpreted", "compiled", r, &a, &b)?;
        compare("compiled", "unfolded", r, &b, &c)?;
    }
    Ok(())
}

/// Worker counts the DAG oracle sweeps. 1 exercises the scheduler with
/// no concurrency, 2 the smallest concurrent shape, 8 more workers than
/// most generated programs have components (idle-worker paths).
pub const DAG_THREADS: [(&str, usize); 3] = [("dag-t1", 1), ("dag-t2", 2), ("dag-t8", 8)];

/// Oracle 5 — the DAG scheduler must agree with itself bitwise at every
/// worker count, and reproduce the serial engine exactly whenever the
/// decomposition stands down (single component, or an analysis fallback).
///
/// Evaluation *errors* are part of the contract too: every path must
/// reach the same disposition, and failing paths must report the same
/// error — a thread count must never change what diagnostic a program
/// produces.
pub fn check_dag(
    prog: &TestProgram,
    table: &DistTable,
    seed: u64,
    replications: usize,
) -> Result<(), Failure> {
    let model = prog.to_model();
    let timing = TimingModel::distributions(table.clone());
    // Whether the decomposition stands down for this program: then the
    // DAG path is documented to be bitwise the serial engine, not just
    // thread-invariant. (A plan error means evaluation errors too; the
    // disposition check below covers it.)
    let plan_cfg = EvalConfig::new(prog.nprocs).with_seed(seed);
    let stands_down = pevpm::dag::plan(&model, &plan_cfg)
        .map(|p| p.components <= 1 || p.fallback.is_some())
        .unwrap_or(false);
    for r in 0..replications {
        let cfg = EvalConfig::new(prog.nprocs).with_seed(replica_seed(seed, r as u64));
        let serial = evaluate(&model, &cfg, &timing);
        let runs: Vec<(&'static str, Result<Prediction, PevpmError>)> = DAG_THREADS
            .iter()
            .map(|&(name, t)| {
                let c = cfg.clone().with_eval_threads(t);
                (name, evaluate(&model, &c, &timing))
            })
            .collect();
        let disposition = |res: &Result<Prediction, PevpmError>| match res {
            Ok(_) => String::new(),
            Err(e) => format!("{e:?}"),
        };
        let error_diff =
            |left: &'static str, right: &'static str, lv: &str, rv: &str| Failure::Differential {
                left,
                right,
                replication: r,
                field: "error".into(),
                left_value: if lv.is_empty() {
                    "ok".into()
                } else {
                    lv.into()
                },
                right_value: if rv.is_empty() {
                    "ok".into()
                } else {
                    rv.into()
                },
            };
        // Thread-count invariance is unconditional: every DAG worker
        // count reaches the same disposition with the same payload.
        let base_err = disposition(&runs[0].1);
        for (name, res) in &runs[1..] {
            let err = disposition(res);
            if err != base_err {
                return Err(error_diff(runs[0].0, name, &base_err, &err));
            }
        }
        // Serial agreement (including the exact error — e.g. a deadlock's
        // reported time) only when the decomposition stands down. A
        // multi-component deadlock legitimately reports component-local
        // virtual time, so only the disposition is compared there.
        let serial_err = disposition(&serial);
        if stands_down {
            if serial_err != base_err {
                return Err(error_diff("serial", runs[0].0, &serial_err, &base_err));
            }
        } else if serial_err.is_empty() != base_err.is_empty() {
            return Err(error_diff("serial", runs[0].0, &serial_err, &base_err));
        }
        let Ok(ref base) = runs[0].1 else {
            continue; // every path errored identically
        };
        for (name, res) in &runs[1..] {
            compare(runs[0].0, name, r, base, res.as_ref().expect("checked ok"))?;
        }
        if stands_down {
            compare(
                "serial",
                runs[0].0,
                r,
                serial.as_ref().expect("checked ok"),
                base,
            )?;
        }
    }
    Ok(())
}

/// Critical value of the two-sample KS test at significance `alpha` for
/// sample sizes `n` and `m`: `c(α)·sqrt((n+m)/(n·m))` with
/// `c(α) = sqrt(-ln(α/2)/2)`.
pub fn ks_critical(alpha: f64, n: usize, m: usize) -> f64 {
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    c * (((n + m) as f64) / ((n * m) as f64)).sqrt()
}

/// Outcome of a passing KS check, for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsReport {
    /// Observed two-sample KS distance.
    pub distance: f64,
    /// Critical value it stayed under.
    pub critical: f64,
}

/// mpisim quantises virtual time to whole nanoseconds while the PEVPM
/// clock is a plain f64, so a degenerate (near-point-mass) makespan
/// distribution — e.g. a pure-compute program — can sit one quantum apart
/// on the two sides. KS distance between two point masses is 1.0 no
/// matter how close they are, so before failing we check whether the
/// sorted samples are pointwise within the quantisation error; if so the
/// distributions are identical for every purpose this oracle gates.
fn pointwise_close(a: &[f64], b: &[f64]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut a: Vec<f64> = a.to_vec();
    let mut b: Vec<f64> = b.to_vec();
    a.sort_by(f64::total_cmp);
    b.sort_by(f64::total_cmp);
    a.iter().zip(&b).all(|(x, y)| (x - y).abs() <= 2e-9)
}

/// Oracle 2 — the predicted makespan distribution must pass a two-sample
/// KS test against mpisim co-simulation on the same machine.
///
/// `table` must be the MPIBench measurement of `shape`
/// ([`crate::tables::bench_table`]); predicted samples are Monte-Carlo
/// replications, simulated samples are co-simulations under fresh world
/// seeds. `alpha` is deliberately small: the oracle gates *gross*
/// mismatches (wrong matching, lost contention, broken sampling), not the
/// residual modelling error the paper itself quantifies at a few percent.
pub fn check_ks(
    prog: &TestProgram,
    table: &DistTable,
    shape: MachineShape,
    alpha: f64,
    predicted_runs: usize,
    simulated_runs: usize,
    seed: u64,
) -> Result<KsReport, Failure> {
    assert_eq!(
        shape.nodes * shape.ppn,
        prog.nprocs,
        "benchmarked shape must match the program's process count"
    );
    let model = prog.to_model();
    let cfg = EvalConfig::new(prog.nprocs).with_seed(seed);
    let timing = TimingModel::distributions(table.clone());
    let mc = monte_carlo(&model, &cfg, &timing, predicted_runs)
        .map_err(|e| eval_err("monte-carlo prediction", &e))?;
    let predicted: Vec<f64> = mc.runs.iter().map(|p| p.makespan).collect();

    let mut simulated = Vec::with_capacity(simulated_runs);
    for i in 0..simulated_runs {
        let world = WorldConfig::perseus(
            shape.nodes,
            shape.ppn,
            replica_seed(seed ^ 0x5151_5151, i as u64),
        );
        let t = corun::simulate(prog, world).map_err(|e| Failure::Error {
            context: format!("co-simulation {i}"),
            error: format!("{e:?}"),
        })?;
        simulated.push(t);
    }

    let d = Ecdf::new(&predicted).ks_distance(&Ecdf::new(&simulated));
    let critical = ks_critical(alpha, predicted.len(), simulated.len());
    if d > critical && !pointwise_close(&predicted, &simulated) {
        return Err(Failure::Ks {
            distance: d,
            critical,
            alpha,
            predicted: predicted.len(),
            simulated: simulated.len(),
        });
    }
    Ok(KsReport {
        distance: d,
        critical,
    })
}

/// Oracle 3a — scaling every message size up by `factor` must never
/// shrink any replication's predicted makespan.
///
/// This is an *exact* per-replication check, not a statistical tendency:
/// `table` must have the dominance property
/// ([`crate::tables::synthetic_table`] over the base **and** scaled size
/// grids), and the program must be wildcard-free (wildcard matching is
/// arrival-order dependent, so rescaling may legally re-match).
pub fn check_scaling(
    prog: &TestProgram,
    table: &DistTable,
    factor: u64,
    seed: u64,
    replications: usize,
) -> Result<(), Failure> {
    assert!(
        !prog.has_wildcards(),
        "the exact scaling oracle requires wildcard-free programs"
    );
    let base_model = prog.to_model();
    let scaled_model = prog.scaled_sizes(factor).to_model();
    let timing = TimingModel::distributions(table.clone());
    for r in 0..replications {
        let cfg = EvalConfig::new(prog.nprocs).with_seed(replica_seed(seed, r as u64));
        let base =
            evaluate(&base_model, &cfg, &timing).map_err(|e| eval_err("base evaluation", &e))?;
        let scaled = evaluate(&scaled_model, &cfg, &timing)
            .map_err(|e| eval_err("scaled evaluation", &e))?;
        if scaled.makespan < base.makespan {
            return Err(Failure::MetamorphicScaling {
                replication: r,
                base: base.makespan,
                scaled: scaled.makespan,
            });
        }
    }
    Ok(())
}

/// Oracle 3b — co-simulating under `faults: Some(FaultPlan::default())`
/// must be bitwise identical to `faults: None`.
pub fn check_fault_identity(
    prog: &TestProgram,
    shape: MachineShape,
    seed: u64,
) -> Result<(), Failure> {
    let world = WorldConfig::perseus(shape.nodes, shape.ppn, seed);
    let mut faulted = world.clone();
    faulted.cluster.faults = Some(FaultPlan::default());
    let sim = |w: WorldConfig, what: &str| {
        corun::simulate(prog, w).map_err(|e| Failure::Error {
            context: what.to_string(),
            error: format!("{e:?}"),
        })
    };
    let without = sim(world, "co-simulation without plan")?;
    let with_plan = sim(faulted, "co-simulation with empty plan")?;
    if without.to_bits() != with_plan.to_bits() {
        return Err(Failure::FaultIdentity { without, with_plan });
    }
    Ok(())
}

/// Oracle 4 — diagnostics conformance for maybe-deadlocking programs.
///
/// A program with orphan receives has more receives than sends, so some
/// receive can never match: the VM must report a deadlock (or exhaust a
/// budget while stuck), never complete and never crash. A program
/// without orphans is deadlock-free by construction and must complete.
pub fn check_diagnostics(prog: &TestProgram, table: &DistTable, seed: u64) -> Result<(), Failure> {
    let model = prog.to_model();
    let cfg = EvalConfig::new(prog.nprocs).with_seed(seed);
    let timing = TimingModel::distributions(table.clone());
    let outcome = evaluate(&model, &cfg, &timing);
    match (prog.has_orphans(), outcome) {
        (false, Ok(_)) => Ok(()),
        (true, Err(PevpmError::Deadlock { .. })) | (true, Err(PevpmError::Budget(_))) => Ok(()),
        (true, Ok(p)) => Err(Failure::Diagnostics {
            outcome: format!(
                "program with orphan receives completed (makespan {:.9e}) \
                 instead of deadlocking",
                p.makespan
            ),
        }),
        (false, Err(e)) => Err(Failure::Diagnostics {
            outcome: format!("deadlock-free-by-construction program failed: {e:?}"),
        }),
        (true, Err(e)) => Err(Failure::Diagnostics {
            outcome: format!("expected a deadlock/budget diagnostic, got: {e:?}"),
        }),
    }
}

/// Stopping policy the adaptive oracle checks under: loose enough that
/// most generated programs converge before the ceiling, tight enough
/// that noisy ones run past the floor.
pub const ADAPTIVE_PRECISION: f64 = 0.05;

/// Replication ceiling of the adaptive oracle (also the fixed-batch
/// length the adaptive run is compared against).
pub const ADAPTIVE_MAX_REPS: usize = 12;

/// Oracle 6 — the adaptive replication engine against its reference
/// stopping rule. Three deterministic checks per program:
///
/// - **determinism** — two adaptive runs with the same (seed,
///   precision) choose the same rep count and agree bitwise on the
///   mean;
/// - **stop-point / prefix** — the engine stops exactly where
///   [`pevpm::stats::AdaptivePolicy::stop_point`] says on the
///   fixed-batch makespan stream, and each adaptive replication agrees
///   bitwise with the fixed replication at its index (adaptive mode is
///   a truncation, never a re-sampling);
/// - **ci-agreement** — the adaptive mean lies within a generous
///   multiple of its own reported half-width of the full fixed-batch
///   mean (the calibration claim: stopping early loses precision, not
///   correctness).
pub fn check_adaptive(prog: &TestProgram, table: &DistTable, seed: u64) -> Result<(), Failure> {
    use pevpm::stats::AdaptivePolicy;

    let model = prog.to_model();
    let timing = TimingModel::distributions(table.clone());
    let policy = AdaptivePolicy::new(ADAPTIVE_PRECISION)
        .with_min_reps(2)
        .with_max_reps(ADAPTIVE_MAX_REPS);
    let fixed_cfg = EvalConfig::new(prog.nprocs).with_seed(seed);
    let adaptive_cfg = fixed_cfg.clone().with_adaptive(policy);

    let fixed = monte_carlo(&model, &fixed_cfg, &timing, ADAPTIVE_MAX_REPS)
        .map_err(|e| eval_err("fixed batch", &e))?;
    let run = || monte_carlo(&model, &adaptive_cfg, &timing, ADAPTIVE_MAX_REPS);
    let first = run().map_err(|e| eval_err("adaptive batch", &e))?;
    let second = run().map_err(|e| eval_err("adaptive re-run", &e))?;

    let report = first.adaptive.ok_or_else(|| Failure::Adaptive {
        check: "stop-point",
        detail: "adaptive run returned no report".into(),
    })?;
    let re_report = second.adaptive.expect("adaptive re-run must report");
    if report.reps != re_report.reps || first.mean.to_bits() != second.mean.to_bits() {
        return Err(Failure::Adaptive {
            check: "determinism",
            detail: format!(
                "re-run chose {} rep(s), mean {:.17e}; first chose {} rep(s), mean {:.17e}",
                re_report.reps, second.mean, report.reps, first.mean
            ),
        });
    }

    let stream: Vec<f64> = fixed.runs.iter().map(|p| p.makespan).collect();
    let expected = policy.stop_point(&stream);
    if report.reps != expected {
        return Err(Failure::Adaptive {
            check: "stop-point",
            detail: format!(
                "engine stopped at {} rep(s), the reference rule says {expected} \
                 (precision {ADAPTIVE_PRECISION}, bounds {}..={})",
                report.reps, policy.min_reps, policy.max_reps
            ),
        });
    }
    for (i, (a, b)) in first.runs.iter().zip(&fixed.runs).enumerate() {
        if a.makespan.to_bits() != b.makespan.to_bits() {
            return Err(Failure::Adaptive {
                check: "prefix",
                detail: format!(
                    "replication {i}: adaptive {:.17e} vs fixed {:.17e}",
                    a.makespan, b.makespan
                ),
            });
        }
    }

    // Calibration slack: 4× the larger of the achieved and requested
    // relative half-widths. The fixed mean is itself an estimate, so an
    // exact 1× bound would be wrong ~5% of the time by design.
    let rel = if report.rel_half_width.is_finite() {
        report.rel_half_width.max(ADAPTIVE_PRECISION)
    } else {
        ADAPTIVE_PRECISION
    };
    let slack = 4.0 * rel * first.mean.abs();
    if (first.mean - fixed.mean).abs() > slack {
        return Err(Failure::Adaptive {
            check: "ci-agreement",
            detail: format!(
                "adaptive mean {:.17e} ({} rep(s)) vs fixed mean {:.17e} ({} rep(s)) \
                 differs by more than {slack:.3e}",
                first.mean, report.reps, fixed.mean, ADAPTIVE_MAX_REPS
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use crate::tables::synthetic_table;

    fn table_for(cfg: &GenConfig) -> DistTable {
        let mut sizes = cfg.sizes.clone();
        sizes.extend(cfg.sizes.iter().map(|s| s * 2));
        synthetic_table(&sizes, 11)
    }

    #[test]
    fn differential_oracle_accepts_generated_programs() {
        let cfg = GenConfig::differential();
        let table = table_for(&cfg);
        for seed in 0..10 {
            let p = generate(&cfg, seed);
            check_differential(&p, &table, seed, 2).unwrap_or_else(|f| panic!("seed {seed}: {f}"));
        }
    }

    #[test]
    fn dag_oracle_accepts_generated_programs() {
        let cfg = GenConfig::differential();
        let table = table_for(&cfg);
        for seed in 0..10 {
            let p = generate(&cfg, seed);
            check_dag(&p, &table, seed, 2).unwrap_or_else(|f| panic!("seed {seed}: {f}"));
        }
    }

    #[test]
    fn dag_oracle_requires_identical_errors_across_thread_counts() {
        // A maybe-deadlocking corpus exercises the error-disposition arm:
        // deadlocks must reproduce identically at every worker count.
        let cfg = GenConfig::maybe_deadlocking();
        let table = table_for(&cfg);
        let mut errored = 0;
        for seed in 0..30 {
            let p = generate(&cfg, seed);
            check_dag(&p, &table, seed, 1).unwrap_or_else(|f| panic!("seed {seed}: {f}"));
            if p.has_orphans() {
                errored += 1;
            }
        }
        assert!(errored > 0, "corpus never exercised the error arm");
    }

    #[test]
    fn scaling_oracle_accepts_wildcard_free_programs() {
        let cfg = GenConfig::metamorphic();
        let table = table_for(&cfg);
        for seed in 0..10 {
            let p = generate(&cfg, seed);
            check_scaling(&p, &table, 2, seed, 2).unwrap_or_else(|f| panic!("seed {seed}: {f}"));
        }
    }

    #[test]
    fn diagnostics_oracle_accepts_both_outcomes() {
        let cfg = GenConfig::maybe_deadlocking();
        let table = table_for(&cfg);
        let (mut deadlocked, mut completed) = (0, 0);
        for seed in 0..30 {
            let p = generate(&cfg, seed);
            check_diagnostics(&p, &table, seed).unwrap_or_else(|f| panic!("seed {seed}: {f}"));
            if p.has_orphans() {
                deadlocked += 1;
            } else {
                completed += 1;
            }
        }
        assert!(deadlocked > 0 && completed > 0, "{deadlocked}/{completed}");
    }

    #[test]
    fn adaptive_oracle_accepts_generated_programs() {
        let cfg = GenConfig::adaptive();
        let table = table_for(&cfg);
        for seed in 0..10 {
            let p = generate(&cfg, seed);
            check_adaptive(&p, &table, seed).unwrap_or_else(|f| panic!("seed {seed}: {f}"));
        }
    }

    #[test]
    fn ks_critical_matches_known_values() {
        // c(0.05) ≈ 1.358; equal n=m=100 gives 1.358·sqrt(2/100).
        let crit = ks_critical(0.05, 100, 100);
        assert!((crit - 1.358 * (0.02f64).sqrt()).abs() < 1e-3, "{crit}");
        // Smaller alpha → larger critical value.
        assert!(ks_critical(0.001, 100, 100) > crit);
    }

    #[test]
    fn failure_display_is_deterministic() {
        let f = Failure::Differential {
            left: "interpreted",
            right: "compiled",
            replication: 3,
            field: "makespan".into(),
            left_value: "1".into(),
            right_value: "2".into(),
        };
        assert_eq!(
            f.to_string(),
            "interpreted vs compiled diverge at replication 3: makespan = 1 vs 2"
        );
        assert_eq!(f.kind(), "differential");
    }
}
