//! Replayable counterexample artifacts.
//!
//! A counterexample is written as a single text file ("`PEVPM-FUZZ
//! counterexample v1`") carrying the oracle that failed, the generator
//! seed, the deterministic failure description, the **minimised** program
//! in the [`TestProgram`] text form (parseable back), and the equivalent
//! `// PEVPM`-annotated model for human inspection. `cli fuzz --replay`
//! and the committed-corpus tests both consume this format.

use crate::oracle::Failure;
use crate::program::{ProgramParseError, TestProgram};
use std::fmt;

/// Artifact format version tag (the first line of every artifact).
pub const HEADER: &str = "PEVPM-FUZZ counterexample v1";

/// A minimised, replayable oracle failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// Which oracle failed ([`Failure::kind`]).
    pub oracle: String,
    /// Generator seed that produced the original failing program.
    pub seed: u64,
    /// Directive count of the original (pre-shrink) program.
    pub original_directives: usize,
    /// Deterministic failure description on the *minimised* program.
    pub failure: String,
    /// The minimised program.
    pub program: TestProgram,
}

impl Counterexample {
    /// Build from a failure, the seed, and the original/minimised pair.
    pub fn new(
        failure: &Failure,
        seed: u64,
        original: &TestProgram,
        minimised: TestProgram,
    ) -> Self {
        Counterexample {
            oracle: failure.kind().to_string(),
            seed,
            original_directives: original.directives(),
            failure: failure.to_string(),
            program: minimised,
        }
    }

    /// Render the artifact text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("oracle: {}\n", self.oracle));
        out.push_str(&format!("seed: {}\n", self.seed));
        out.push_str(&format!("nprocs: {}\n", self.program.nprocs));
        out.push_str(&format!(
            "directives: {} (shrunk from {})\n",
            self.program.directives(),
            self.original_directives
        ));
        out.push_str(&format!("failure: {}\n", self.failure));
        out.push_str("replay: cli fuzz --replay <this file>\n");
        out.push_str("--- program ---\n");
        out.push_str(&self.program.to_text());
        out.push_str("--- model ---\n");
        out.push_str(&self.program.to_annotated());
        out
    }

    /// Parse an artifact back. The `--- model ---` section is
    /// informational and ignored; the program section is authoritative.
    pub fn parse(text: &str) -> Result<Counterexample, ArtifactError> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return Err(ArtifactError::BadHeader);
        }
        let mut oracle = None;
        let mut seed = None;
        let mut original = None;
        let mut failure = None;
        for line in lines.by_ref() {
            let line = line.trim();
            if line == "--- program ---" {
                break;
            }
            if let Some(v) = line.strip_prefix("oracle: ") {
                oracle = Some(v.to_string());
            } else if let Some(v) = line.strip_prefix("seed: ") {
                seed = Some(v.parse().map_err(|_| ArtifactError::BadField("seed"))?);
            } else if let Some(v) = line.strip_prefix("directives: ") {
                // "N (shrunk from M)" — M is the original count.
                let m = v
                    .split("shrunk from ")
                    .nth(1)
                    .and_then(|s| s.trim_end_matches(')').parse().ok())
                    .ok_or(ArtifactError::BadField("directives"))?;
                original = Some(m);
            } else if let Some(v) = line.strip_prefix("failure: ") {
                failure = Some(v.to_string());
            }
        }
        let program_text: String = lines
            .by_ref()
            .take_while(|l| l.trim() != "--- model ---")
            .map(|l| format!("{l}\n"))
            .collect();
        let program = TestProgram::parse(&program_text).map_err(ArtifactError::Program)?;
        Ok(Counterexample {
            oracle: oracle.ok_or(ArtifactError::BadField("oracle"))?,
            seed: seed.ok_or(ArtifactError::BadField("seed"))?,
            original_directives: original.ok_or(ArtifactError::BadField("directives"))?,
            failure: failure.ok_or(ArtifactError::BadField("failure"))?,
            program,
        })
    }

    /// Stable artifact file name: `<oracle>-seed<seed>.model`.
    pub fn file_name(&self) -> String {
        format!("{}-seed{}.model", self.oracle, self.seed)
    }
}

/// Why an artifact failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactError {
    /// First line is not [`HEADER`].
    BadHeader,
    /// A required header field is missing or malformed.
    BadField(&'static str),
    /// The program section did not parse.
    Program(ProgramParseError),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadHeader => {
                write!(f, "not a counterexample artifact (missing '{HEADER}')")
            }
            ArtifactError::BadField(name) => write!(f, "missing or malformed field '{name}'"),
            ArtifactError::Program(e) => write!(f, "program section: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use crate::oracle::Failure;

    fn sample() -> Counterexample {
        let prog = generate(&GenConfig::differential(), 7);
        let failure = Failure::Differential {
            left: "interpreted",
            right: "compiled",
            replication: 0,
            field: "makespan".into(),
            left_value: "1.0".into(),
            right_value: "2.0".into(),
        };
        Counterexample::new(&failure, 7, &prog, prog.clone())
    }

    #[test]
    fn artifacts_round_trip() {
        let cx = sample();
        let text = cx.render();
        assert!(text.starts_with(HEADER));
        assert!(text.contains("--- program ---"));
        assert!(text.contains("--- model ---"));
        let back = Counterexample::parse(&text).unwrap();
        assert_eq!(back, cx);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(
            Counterexample::parse("hello\nworld\n"),
            Err(ArtifactError::BadHeader)
        );
        let cx = sample();
        let no_seed = cx.render().replace("seed: 7\n", "");
        assert_eq!(
            Counterexample::parse(&no_seed),
            Err(ArtifactError::BadField("seed"))
        );
    }

    #[test]
    fn file_name_is_stable() {
        assert_eq!(sample().file_name(), "differential-seed7.model");
    }
}
