//! Timing tables for the oracles.
//!
//! Two kinds are used:
//!
//! - [`synthetic_table`] — a deterministic table whose per-size supports
//!   are **disjoint and increasing**: every sampled time at size `2s` is
//!   strictly larger than every sampled time at size `s`. That dominance
//!   is what lets the size-scaling metamorphic oracle assert *exact*
//!   per-replication monotonicity rather than a statistical tendency.
//! - [`bench_table`] — a real MPIBench measurement of the mpisim world a
//!   program will be co-simulated on (the Figure 6 methodology), used by
//!   the statistical (KS) oracle.

use pevpm_dist::{CommDist, DistKey, DistTable, Histogram, Op};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Ops every generated program may touch.
pub const ALL_OPS: [Op; 8] = [
    Op::Send,
    Op::Isend,
    Op::Recv,
    Op::Barrier,
    Op::Bcast,
    Op::Reduce,
    Op::Allreduce,
    Op::Alltoall,
];

/// The synthetic table's contention levels.
pub const CONTENTIONS: [u32; 3] = [1, 8, 100];

/// Per-byte cost coefficient of the synthetic table (seconds).
const BYTE_COST: f64 = 1e-6;

/// Bounds of the synthetic support for one size.
///
/// The support is purely proportional to the size so that dominance holds
/// **across contention levels**: the scaled run of a metamorphic pair may
/// legally see different contention than the base run (larger messages
/// shift what is in flight), so exact monotonicity needs
/// `hi(s, c_max) < lo(2s, c_min)`. With `hi = 1.4·lo` and the contention
/// factor capped at `1 + log2(100)·0.02 ≈ 1.13`, the worst ratio is
/// `1.4 · 1.13 ≈ 1.59 < 2`. An additive latency floor would break this
/// for small sizes, so there is none; size 0 (pure-synchronisation
/// collectives) gets a tiny constant support, which scaling leaves at
/// size 0 — identical draws, so dominance is unaffected.
fn support(size: u64, contention: u32) -> (f64, f64) {
    let c = 1.0 + (contention as f64).log2().max(0.0) * 0.02;
    if size == 0 {
        return (1.0e-6 * c, 1.2e-6 * c);
    }
    let lo = BYTE_COST * size as f64 * c;
    (lo, 1.4 * lo)
}

/// Build the deterministic synthetic table over `sizes` (plus size 0 for
/// collectives) for every op in [`ALL_OPS`].
pub fn synthetic_table(sizes: &[u64], seed: u64) -> DistTable {
    let mut table = DistTable::new();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7ab1e);
    let mut all_sizes: Vec<u64> = sizes.to_vec();
    all_sizes.push(0);
    all_sizes.sort_unstable();
    all_sizes.dedup();
    for op in ALL_OPS {
        for &size in &all_sizes {
            for &contention in &CONTENTIONS {
                let (lo, hi) = support(size, contention);
                let samples: Vec<f64> = (0..40).map(|_| rng.gen_range(lo..hi)).collect();
                let width = (hi - lo) / 16.0;
                table.insert(
                    DistKey {
                        op,
                        size,
                        contention,
                    },
                    CommDist::Hist(Histogram::from_samples(&samples, width)),
                );
            }
        }
    }
    table
}

/// Check the dominance property for a pair of grid sizes: every value of
/// the smaller size's support — at *any* contention level — is below
/// every value of the larger's at any contention level.
pub fn supports_are_disjoint(small: u64, large: u64) -> bool {
    let hi_small = CONTENTIONS
        .iter()
        .map(|&c| support(small, c).1)
        .fold(f64::MIN, f64::max);
    let lo_large = CONTENTIONS
        .iter()
        .map(|&c| support(large, c).0)
        .fold(f64::MAX, f64::min);
    hi_small < lo_large
}

/// Measure the machine a program will be co-simulated on.
///
/// Token-relay programs (the KS oracle's family) have at most one message
/// in flight, so the matching measurement is the *uncontended* one-way
/// transit: a single benchmark pair, barrier-resynchronised before every
/// message, recorded at contention 1. A ring-exchange table (the Figure 6
/// pipeline) records under `n` concurrent messages instead and
/// systematically overcharges every relay hop — a bias that accumulates
/// linearly along the token chain while the spread only grows as √n, so
/// long chains drift into certain KS rejection even though the engine is
/// correct. Inter-node links are homogeneous in the mpisim worlds, so the
/// one-way pair distribution transfers to any co-simulation shape.
pub fn bench_table(sizes: &[u64], reps: usize, seed: u64) -> DistTable {
    pevpm_bench::fig6::oneway_table_ops(sizes, reps, seed, &[Op::Send, Op::Isend])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_table_is_deterministic_and_complete() {
        let sizes = [64, 256, 1024];
        let a = synthetic_table(&sizes, 7);
        let b = synthetic_table(&sizes, 7);
        assert_eq!(a, b);
        for op in ALL_OPS {
            for size in [0u64, 64, 256, 1024] {
                for c in CONTENTIONS {
                    assert!(
                        a.get(&DistKey {
                            op,
                            size,
                            contention: c
                        })
                        .is_some(),
                        "{op:?} {size} @{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn doubling_a_grid_size_strictly_dominates() {
        for s in [64u64, 256, 1024, 4096, 16384, 32768] {
            assert!(supports_are_disjoint(s, 2 * s), "size {s}");
        }
    }

    #[test]
    fn sampled_values_respect_the_support() {
        let sizes = [64, 128];
        let t = synthetic_table(&sizes, 3);
        for &size in &sizes {
            for &c in &CONTENTIONS {
                let (lo, hi) = support(size, c);
                let d = t
                    .get(&DistKey {
                        op: Op::Send,
                        size,
                        contention: c,
                    })
                    .unwrap();
                for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
                    let v = d.quantile(q);
                    // Histogram bin edges may pad the support by one bin.
                    let pad = (hi - lo) / 8.0;
                    assert!(
                        v >= lo - pad && v <= hi + pad,
                        "size {size} @{c} q{q}: {v} outside [{lo}, {hi}]"
                    );
                }
            }
        }
    }
}
