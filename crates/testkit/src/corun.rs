//! Co-simulation: interpret a [`TestProgram`] on real mpisim ranks.
//!
//! The same IR that lowers to a PEVPM model is executed here by
//! coroutine-scheduled rank programs over the packet simulator, giving the
//! statistical and metamorphic oracles an independent ground truth. Tags
//! are derived from item positions so loop iterations reuse a tag —
//! matching stays FIFO per (source, tag), exactly like the model.

use crate::program::{Item, PairMode, TestProgram};
use pevpm::model::CollOp;
use pevpm_mpisim::{Rank, ReduceOp, SimError, SrcSel, World, WorldConfig};

fn run_items(rank: &mut Rank, items: &[Item], tag_base: u64) {
    let me = rank.rank();
    for (i, item) in items.iter().enumerate() {
        let tag = tag_base * 1024 + i as u64 + 1;
        match item {
            Item::ComputeAll { usecs } => rank.compute_secs(*usecs as f64 / 1e6),
            Item::Compute { proc, usecs } => {
                if me == *proc {
                    rank.compute_secs(*usecs as f64 / 1e6);
                }
            }
            Item::Pair {
                src,
                dst,
                bytes,
                mode,
            } => {
                if me == *src {
                    match mode {
                        PairMode::Isend => {
                            let req = rank.isend_size(*dst, tag, *bytes);
                            // The model's Isend is fire-and-forget; the
                            // request must still be completed before the
                            // rank exits, and completing it here keeps
                            // requests from accumulating across items.
                            rank.wait(req);
                        }
                        _ => rank.send_size(*dst, tag, *bytes),
                    }
                } else if me == *dst {
                    match mode {
                        PairMode::IrecvWait => {
                            let req = rank.irecv(*src, tag);
                            rank.wait(req);
                        }
                        _ => {
                            rank.recv(*src, tag);
                        }
                    }
                }
            }
            Item::WildcardSink {
                sink,
                senders,
                bytes,
            } => {
                if me == *sink {
                    for _ in senders {
                        rank.recv(SrcSel::Any, tag);
                    }
                } else if senders.contains(&me) {
                    rank.send_size(*sink, tag, *bytes);
                }
            }
            Item::Coll { op, bytes } => match op {
                CollOp::Barrier => rank.barrier(),
                CollOp::Bcast => rank.bcast_size(0, *bytes),
                CollOp::Reduce => {
                    let words = (*bytes / 8).max(1) as usize;
                    rank.reduce_f64s(0, &vec![1.0; words], ReduceOp::Sum);
                }
                CollOp::Allreduce => {
                    let words = (*bytes / 8).max(1) as usize;
                    rank.allreduce_f64s(&vec![1.0; words], ReduceOp::Sum);
                }
                CollOp::Alltoall => rank.alltoall_size(*bytes),
            },
            Item::Loop { count, body } => {
                for _ in 0..*count {
                    run_items(rank, body, tag);
                }
            }
            Item::OrphanRecv { .. } => {
                panic!("orphan receives cannot be co-simulated (they would hang)")
            }
        }
    }
}

/// Execute the program on the given world; returns the virtual makespan
/// in seconds.
pub fn simulate(prog: &TestProgram, world: WorldConfig) -> Result<f64, SimError> {
    assert_eq!(
        world.nranks(),
        prog.nprocs,
        "world shape must match the program's process count"
    );
    assert!(
        !prog.has_orphans(),
        "orphan receives cannot be co-simulated"
    );
    let items = prog.items.clone();
    let report = World::run(world, move |rank| {
        run_items(rank, &items, 0);
    })?;
    Ok(report.virtual_time.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    fn world_for(nprocs: usize, seed: u64) -> WorldConfig {
        WorldConfig::perseus(nprocs, 1, seed)
    }

    #[test]
    fn simulation_is_deterministic_per_seed() {
        let cfg = GenConfig {
            nprocs_min: 4,
            nprocs_max: 4,
            max_items: 6,
            ..GenConfig::default()
        };
        for seed in 0..5 {
            let p = generate(&cfg, seed);
            let a = simulate(&p, world_for(4, 99)).unwrap();
            let b = simulate(&p, world_for(4, 99)).unwrap();
            assert_eq!(a.to_bits(), b.to_bits(), "seed {seed}");
            assert!(a > 0.0);
        }
    }

    #[test]
    fn all_item_kinds_execute() {
        use crate::program::{Item, PairMode, TestProgram};
        use pevpm::model::CollOp;
        let p = TestProgram {
            nprocs: 4,
            items: vec![
                Item::ComputeAll { usecs: 10 },
                Item::Compute { proc: 1, usecs: 5 },
                Item::Pair {
                    src: 0,
                    dst: 1,
                    bytes: 256,
                    mode: PairMode::Blocking,
                },
                Item::Pair {
                    src: 1,
                    dst: 2,
                    bytes: 64,
                    mode: PairMode::Isend,
                },
                Item::Pair {
                    src: 3,
                    dst: 0,
                    bytes: 64,
                    mode: PairMode::IrecvWait,
                },
                Item::WildcardSink {
                    sink: 2,
                    senders: vec![0, 1, 3],
                    bytes: 128,
                },
                Item::Loop {
                    count: 2,
                    body: vec![Item::Pair {
                        src: 2,
                        dst: 3,
                        bytes: 64,
                        mode: PairMode::Blocking,
                    }],
                },
                Item::Coll {
                    op: CollOp::Barrier,
                    bytes: 0,
                },
                Item::Coll {
                    op: CollOp::Allreduce,
                    bytes: 64,
                },
            ],
        };
        let t = simulate(&p, world_for(4, 1)).unwrap();
        assert!(t > 15e-6, "all compute plus communication: {t}");
    }
}
