//! Differential conformance harness for the PEVPM engine.
//!
//! The engine has three independent implementations of "what does this
//! model program cost": the interpreted distribution lookup, the compiled
//! sampler tables, and the packet-level mpisim co-simulation. This crate
//! generates random well-formed model programs and runs them through all
//! three, gating the results with a hierarchy of oracles:
//!
//! 1. **Bitwise differential** ([`oracle::check_differential`]) — the
//!    interpreted, compiled, and unfolded-lowering evaluation paths must
//!    agree bitwise on every replication's finish times and makespan.
//! 2. **Statistical** ([`oracle::check_ks`]) — the predicted makespan
//!    distribution must pass a two-sample Kolmogorov–Smirnov test against
//!    mpisim co-simulation of the same program on the machine the timing
//!    tables were benchmarked on (the paper's Figure 6 methodology,
//!    distribution-level instead of mean-level).
//! 3. **Metamorphic** ([`oracle::check_scaling`],
//!    [`oracle::check_fault_identity`]) — relations that must hold
//!    between *pairs* of runs: doubling every message size never shrinks
//!    a replication's predicted makespan (exact, via dominance tables),
//!    and an empty fault plan is bitwise identical to no plan.
//! 4. **Diagnostics** ([`oracle::check_diagnostics`]) — opt-in
//!    maybe-deadlocking programs must produce exactly the deadlock/budget
//!    diagnostics their shape implies, never a crash or a silent
//!    completion.
//!
//! Failing programs are minimised by [`shrink::shrink`] to a small
//! replayable counterexample ([`report::Counterexample`]) whose artifact
//! both `cli fuzz --replay` and plain tests can parse back.

pub mod campaign;
pub mod corun;
pub mod gen;
pub mod oracle;
pub mod program;
pub mod report;
pub mod shrink;
pub mod tables;

pub use campaign::{run_campaign, CampaignConfig, CampaignResult, Mode};
pub use gen::{generate, GenConfig};
pub use oracle::Failure;
pub use program::{Item, PairMode, TestProgram};
pub use report::Counterexample;
