//! Seedable generator of random well-formed model programs.
//!
//! Programs are built directly in the matched-schedule IR
//! ([`crate::program`]), so every generated program is deadlock-free by
//! construction (see the `program` module docs for the induction
//! argument). The opt-in [`GenConfig::maybe_deadlock`] mode additionally
//! injects orphan receives to exercise the VM's deadlock and budget
//! diagnostics.

use crate::program::{Item, PairMode, TestProgram};
use pevpm::model::CollOp;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Shape of the programs to generate. The default is the widest
/// well-formed space; the named constructors narrow it to what each
/// oracle can soundly gate.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Inclusive range of process counts.
    pub nprocs_min: usize,
    /// Inclusive upper bound on process count.
    pub nprocs_max: usize,
    /// Maximum top-level items per program (at least 1).
    pub max_items: usize,
    /// Message sizes are drawn from this grid — it must match the timing
    /// table the oracles evaluate against.
    pub sizes: Vec<u64>,
    /// Upper bound on computation length, microseconds.
    pub compute_usecs_max: u64,
    /// Permit wildcard-sink items.
    pub allow_wildcards: bool,
    /// Permit collectives.
    pub allow_collectives: bool,
    /// Permit non-blocking pair modes (`Isend`, `Irecv`+`Wait`).
    pub allow_nonblocking: bool,
    /// Permit top-level loops (bodies are themselves matched schedules).
    pub allow_loops: bool,
    /// Inject orphan receives with ~25% probability per program, making
    /// deadlock possible (never certain). Off in every well-formed corpus.
    pub maybe_deadlock: bool,
    /// Token-relay structure: every pair's source is the process that
    /// received the previous message, so at most one message is ever in
    /// flight. Back-to-back sends from one rank pipeline in mpisim (an
    /// eager send returns at injection) while the PEVPM model charges
    /// each send its full transit, so free-form programs diverge for
    /// model-fidelity reasons; the relay family stays inside the envelope
    /// where both implementations claim the same distribution.
    pub relay: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            nprocs_min: 2,
            nprocs_max: 6,
            max_items: 10,
            sizes: vec![64, 256, 1024, 4096, 16384, 65536],
            compute_usecs_max: 400,
            allow_wildcards: true,
            allow_collectives: true,
            allow_nonblocking: true,
            allow_loops: true,
            maybe_deadlock: false,
            relay: false,
        }
    }
}

impl GenConfig {
    /// Widest space: everything the bitwise differential oracle handles.
    pub fn differential() -> Self {
        GenConfig::default()
    }

    /// Programs the statistical (KS) oracle can soundly gate: blocking
    /// matched pairs and computation on a fixed machine shape. Wildcards,
    /// collectives and non-blocking modes are excluded because mpisim and
    /// the PEVPM model are not claimed to be distribution-identical there
    /// — see DESIGN.md "Testing strategy".
    pub fn ks(nprocs: usize, sizes: Vec<u64>) -> Self {
        GenConfig {
            nprocs_min: nprocs,
            nprocs_max: nprocs,
            max_items: 6,
            sizes,
            compute_usecs_max: 200,
            allow_wildcards: false,
            allow_collectives: false,
            allow_nonblocking: false,
            allow_loops: true,
            maybe_deadlock: false,
            relay: true,
        }
    }

    /// Programs the size-scaling metamorphic oracle can gate *exactly*:
    /// no wildcards (wildcard matching is arrival-time dependent, so
    /// rescaling may legally re-match), and sizes restricted to the lower
    /// half of the grid so doubled sizes stay on it.
    pub fn metamorphic() -> Self {
        let all = GenConfig::default().sizes;
        let lower: Vec<u64> = all[..all.len() / 2].to_vec();
        GenConfig {
            allow_wildcards: false,
            sizes: lower,
            ..GenConfig::default()
        }
    }

    /// Programs for the adaptive-stopping oracle: the well-formed
    /// differential space, biased toward longer programs so the
    /// replication stream carries real sampled spread for the stopping
    /// rule to react to (a two-item program often has near-zero
    /// variance and pins every run to the floor).
    pub fn adaptive() -> Self {
        GenConfig {
            max_items: 14,
            ..GenConfig::default()
        }
    }

    /// The well-formed space plus orphan receives, for exercising the
    /// deadlock/budget diagnostics.
    pub fn maybe_deadlocking() -> Self {
        GenConfig {
            maybe_deadlock: true,
            ..GenConfig::default()
        }
    }
}

fn pick<'a, T>(rng: &mut SmallRng, xs: &'a [T]) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

fn gen_item(rng: &mut SmallRng, cfg: &GenConfig, nprocs: usize, depth: usize) -> Item {
    // Weighted choice over the enabled item kinds.
    let mut kinds: Vec<u8> = vec![0, 0, 1, 1, 1, 2]; // compute-all, compute, pair ×3
    if cfg.allow_wildcards && nprocs >= 3 {
        kinds.push(3);
    }
    if cfg.allow_collectives {
        kinds.push(4);
    }
    if cfg.allow_loops && depth == 0 {
        kinds.push(5);
    }
    if cfg.maybe_deadlock {
        kinds.push(6);
    }
    match *pick(rng, &kinds) {
        0 => Item::ComputeAll {
            usecs: rng.gen_range(1..=cfg.compute_usecs_max),
        },
        1 => Item::Pair {
            src: rng.gen_range(0..nprocs),
            dst: rng.gen_range(0..nprocs),
            bytes: *pick(rng, &cfg.sizes),
            mode: if cfg.allow_nonblocking {
                *pick(
                    rng,
                    &[
                        PairMode::Blocking,
                        PairMode::Blocking,
                        PairMode::Isend,
                        PairMode::IrecvWait,
                    ],
                )
            } else {
                PairMode::Blocking
            },
        },
        2 => Item::Compute {
            proc: rng.gen_range(0..nprocs),
            usecs: rng.gen_range(1..=cfg.compute_usecs_max),
        },
        3 => {
            let sink = rng.gen_range(0..nprocs);
            let mut senders: Vec<usize> = (0..nprocs).filter(|p| *p != sink).collect();
            // Keep a random non-empty subset, in ascending order.
            while senders.len() > 1 && rng.gen_bool(0.35) {
                let i = rng.gen_range(0..senders.len());
                senders.remove(i);
            }
            Item::WildcardSink {
                sink,
                senders,
                bytes: *pick(rng, &cfg.sizes),
            }
        }
        4 => Item::Coll {
            op: *pick(
                rng,
                &[
                    CollOp::Barrier,
                    CollOp::Bcast,
                    CollOp::Reduce,
                    CollOp::Allreduce,
                    CollOp::Alltoall,
                ],
            ),
            bytes: if rng.gen_bool(0.2) {
                0
            } else {
                *pick(rng, &cfg.sizes)
            },
        },
        5 => {
            let n = rng.gen_range(1..=3usize);
            let body = (0..n)
                .map(|_| gen_item(rng, cfg, nprocs, depth + 1))
                .collect();
            Item::Loop {
                count: rng.gen_range(2..=4u32),
                body,
            }
        }
        _ => Item::OrphanRecv {
            src: rng.gen_range(0..nprocs),
            dst: rng.gen_range(0..nprocs),
            bytes: *pick(rng, &cfg.sizes),
        },
    }
}

/// One step of a token-relay program. The token is the process holding
/// the "right to send"; every pair moves it, and loop bodies return it to
/// their entry holder so each iteration re-matches.
///
/// `stale` tracks processes that have sent since they last received.
/// Such a process's virtual clock legitimately differs between the two
/// implementations (mpisim's eager send returns at injection, the PEVPM
/// model charges the full transit), so giving a stale process *private*
/// computation would surface the difference in the makespan. Receiving
/// resynchronises (both sides clamp to the arrival time), and shared
/// [`Item::ComputeAll`] keeps the stale clock dominated by its receiver's,
/// so only `Item::Compute` needs the restriction. Inside loop bodies only
/// the current token holder is iteration-invariantly non-stale (bodies
/// close the token cycle), so computes there stick to the token.
fn gen_relay_items(
    rng: &mut SmallRng,
    cfg: &GenConfig,
    nprocs: usize,
    token: &mut usize,
    stale: &mut std::collections::BTreeSet<usize>,
    n: usize,
    depth: usize,
) -> Vec<Item> {
    (0..n)
        .map(|_| {
            let mut kinds: Vec<u8> = vec![0, 1, 1, 1, 2]; // compute-all, relay ×3, compute
            if cfg.allow_loops && depth == 0 {
                kinds.push(3);
            }
            match *pick(rng, &kinds) {
                0 => Item::ComputeAll {
                    usecs: rng.gen_range(1..=cfg.compute_usecs_max),
                },
                1 => {
                    let mut dst = rng.gen_range(0..nprocs - 1);
                    if dst >= *token {
                        dst += 1;
                    }
                    let item = Item::Pair {
                        src: *token,
                        dst,
                        bytes: *pick(rng, &cfg.sizes),
                        mode: PairMode::Blocking,
                    };
                    stale.insert(*token);
                    stale.remove(&dst);
                    *token = dst;
                    item
                }
                2 => {
                    let proc = if depth == 0 {
                        let fresh: Vec<usize> =
                            (0..nprocs).filter(|p| !stale.contains(p)).collect();
                        *pick(rng, &fresh) // the token holder is always fresh
                    } else {
                        *token
                    };
                    Item::Compute {
                        proc,
                        usecs: rng.gen_range(1..=cfg.compute_usecs_max),
                    }
                }
                _ => {
                    let entry = *token;
                    let n_body = rng.gen_range(1..=3usize);
                    let mut body =
                        gen_relay_items(rng, cfg, nprocs, token, stale, n_body, depth + 1);
                    if *token != entry {
                        body.push(Item::Pair {
                            src: *token,
                            dst: entry,
                            bytes: *pick(rng, &cfg.sizes),
                            mode: PairMode::Blocking,
                        });
                        stale.insert(*token);
                        stale.remove(&entry);
                        *token = entry;
                    }
                    Item::Loop {
                        count: rng.gen_range(2..=4u32),
                        body,
                    }
                }
            }
        })
        .collect()
}

/// Is `p` a member of the token-relay family ([`GenConfig::relay`])?
///
/// Checks the three invariants the statistical oracle's soundness rests
/// on: every pair's source holds the token (so at most one message is in
/// flight), loop bodies return the token to their entry holder (so every
/// iteration re-matches), and private computation never lands on a stale
/// sender. The KS shrink predicate rejects candidates outside the family
/// — dropping a pair from a relay chain creates exactly the same-source
/// back-to-back sends whose pipelining the model does not claim to
/// capture, so an unconstrained shrinker walks every failure into that
/// known model-fidelity gap instead of minimising the real divergence.
pub fn is_token_relay(p: &TestProgram) -> bool {
    use std::collections::BTreeSet;
    fn walk(items: &[Item], token: &mut Option<usize>, stale: &mut BTreeSet<usize>) -> bool {
        for item in items {
            match item {
                Item::Pair { src, dst, mode, .. } => {
                    if *mode != PairMode::Blocking || src == dst {
                        return false;
                    }
                    if token.is_some_and(|t| t != *src) {
                        return false;
                    }
                    stale.insert(*src);
                    stale.remove(dst);
                    *token = Some(*dst);
                }
                Item::Loop { body, .. } => {
                    let entry = *token;
                    if !walk(body, token, stale) {
                        return false;
                    }
                    let has_pairs = |items: &[Item]| {
                        fn any_pair(items: &[Item]) -> bool {
                            items.iter().any(|i| match i {
                                Item::Pair { .. } => true,
                                Item::Loop { body, .. } => any_pair(body),
                                _ => false,
                            })
                        }
                        any_pair(items)
                    };
                    if entry.is_some() && *token != entry && has_pairs(body) {
                        return false;
                    }
                    // Iterations ≥ 2 run under the steady-state stale set.
                    if !walk(body, token, stale) {
                        return false;
                    }
                }
                Item::Compute { proc, .. } => {
                    if stale.contains(proc) {
                        return false;
                    }
                }
                Item::ComputeAll { .. } => {}
                Item::WildcardSink { .. } | Item::Coll { .. } | Item::OrphanRecv { .. } => {
                    return false;
                }
            }
        }
        true
    }
    walk(&p.items, &mut None, &mut BTreeSet::new())
}

/// Generate one program. The same `(cfg, seed)` always yields the same
/// program.
pub fn generate(cfg: &GenConfig, seed: u64) -> TestProgram {
    // Fixed salt decouples testkit's program stream from other consumers
    // of small seeds (table builders, replica seeding).
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x7e57_c0de);
    let nprocs = rng.gen_range(cfg.nprocs_min..=cfg.nprocs_max);
    let n_items = rng.gen_range(1..=cfg.max_items.max(1));
    if cfg.relay {
        let mut token = rng.gen_range(0..nprocs);
        let mut stale = std::collections::BTreeSet::new();
        let items = gen_relay_items(&mut rng, cfg, nprocs, &mut token, &mut stale, n_items, 0);
        return TestProgram { nprocs, items };
    }
    let mut items: Vec<Item> = (0..n_items)
        .map(|_| gen_item(&mut rng, cfg, nprocs, 0))
        .collect();
    // Post-pass repairs, both deterministic:
    //
    // 1. A Pair may have drawn src == dst; self-messages are not
    //    meaningful in either implementation.
    // 2. A named receive must never target a proc that is a wildcard
    //    sink *anywhere* in the program. A wildcard receive matches by
    //    arrival time, so it can steal the message a named receive on
    //    the same channel expected (the named receive then waits for a
    //    sequence number that was already consumed — deadlock). Keeping
    //    sink procs wildcard-only as receivers closes the race; stealing
    //    among wildcard receives at the same sink is harmless because
    //    the per-sink send and receive counts still match.
    //
    // Offending destinations move to the first eligible proc; an item
    // with no eligible destination degrades to a computation.
    fn sinks_of(items: &[Item], out: &mut std::collections::BTreeSet<usize>) {
        for item in items {
            match item {
                Item::WildcardSink { sink, .. } => {
                    out.insert(*sink);
                }
                Item::Loop { body, .. } => sinks_of(body, out),
                _ => {}
            }
        }
    }
    let mut sinks = std::collections::BTreeSet::new();
    sinks_of(&items, &mut sinks);
    fn fix(items: &mut [Item], nprocs: usize, sinks: &std::collections::BTreeSet<usize>) {
        for item in items {
            let degrade = match item {
                Item::Pair { src, dst, .. } | Item::OrphanRecv { src, dst, .. }
                    if *src == *dst || sinks.contains(dst) =>
                {
                    match (0..nprocs).find(|p| p != src && !sinks.contains(p)) {
                        Some(p) => {
                            *dst = p;
                            false
                        }
                        None => true,
                    }
                }
                Item::Loop { body, .. } => {
                    fix(body, nprocs, sinks);
                    false
                }
                _ => false,
            };
            if degrade {
                *item = Item::ComputeAll { usecs: 10 };
            }
        }
    }
    fix(&mut items, nprocs, &sinks);
    TestProgram { nprocs, items }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            assert_eq!(generate(&cfg, seed), generate(&cfg, seed));
        }
    }

    #[test]
    fn well_formed_configs_never_emit_orphans_or_self_messages() {
        for cfg in [
            GenConfig::differential(),
            GenConfig::ks(4, vec![256, 1024]),
            GenConfig::metamorphic(),
        ] {
            for seed in 0..200 {
                let p = generate(&cfg, seed);
                assert!(!p.has_orphans(), "seed {seed}");
                assert!(p.nprocs >= cfg.nprocs_min && p.nprocs <= cfg.nprocs_max);
                fn no_self(items: &[Item]) -> bool {
                    items.iter().all(|i| match i {
                        Item::Pair { src, dst, .. } => src != dst,
                        Item::Loop { body, .. } => no_self(body),
                        _ => true,
                    })
                }
                assert!(no_self(&p.items), "seed {seed}");
            }
        }
    }

    #[test]
    fn restricted_configs_respect_their_exclusions() {
        let ks = GenConfig::ks(4, vec![256, 1024]);
        let meta = GenConfig::metamorphic();
        for seed in 0..200 {
            assert!(!generate(&ks, seed).has_wildcards(), "seed {seed}");
            assert!(!generate(&meta, seed).has_wildcards(), "seed {seed}");
            fn only_blocking(items: &[Item]) -> bool {
                items.iter().all(|i| match i {
                    Item::Pair { mode, .. } => *mode == PairMode::Blocking,
                    Item::WildcardSink { .. } | Item::Coll { .. } => false,
                    Item::Loop { body, .. } => only_blocking(body),
                    _ => true,
                })
            }
            assert!(only_blocking(&generate(&ks, seed).items), "seed {seed}");
        }
    }

    /// A named receive targeting a wildcard sink can have its message
    /// stolen by an outstanding wildcard receive (arrival-order race),
    /// deadlocking an otherwise well-formed program — the generator must
    /// keep sink procs wildcard-only as receivers.
    #[test]
    fn named_receives_never_target_wildcard_sinks() {
        use std::collections::BTreeSet;
        for seed in 0..300 {
            let p = generate(&GenConfig::differential(), seed);
            let mut sinks = BTreeSet::new();
            fn scan_sinks(items: &[Item], out: &mut BTreeSet<usize>) {
                for i in items {
                    match i {
                        Item::WildcardSink { sink, .. } => {
                            out.insert(*sink);
                        }
                        Item::Loop { body, .. } => scan_sinks(body, out),
                        _ => {}
                    }
                }
            }
            scan_sinks(&p.items, &mut sinks);
            fn no_named_recv_on(items: &[Item], sinks: &BTreeSet<usize>) -> bool {
                items.iter().all(|i| match i {
                    Item::Pair { dst, .. } | Item::OrphanRecv { dst, .. } => !sinks.contains(dst),
                    Item::Loop { body, .. } => no_named_recv_on(body, sinks),
                    _ => true,
                })
            }
            assert!(no_named_recv_on(&p.items, &sinks), "seed {seed}");
        }
    }

    /// In relay mode at most one message is ever in flight: each pair's
    /// source must be the destination of the previous pair (walking into
    /// loop bodies, which must return the token to their entry holder),
    /// and private computation never lands on a stale sender — a process
    /// that sent since it last received, whose clock differs between the
    /// two implementations (eager injection vs full transit).
    #[test]
    fn ks_programs_are_token_relays_without_stale_computes() {
        use std::collections::BTreeSet;
        fn walk(
            items: &[Item],
            token: &mut Option<usize>,
            stale: &mut BTreeSet<usize>,
            in_loop: bool,
        ) {
            for item in items {
                match item {
                    Item::Pair { src, dst, mode, .. } => {
                        assert_eq!(*mode, PairMode::Blocking);
                        if let Some(t) = token {
                            assert_eq!(*src, *t, "pair source must hold the token");
                        }
                        assert_ne!(src, dst);
                        stale.insert(*src);
                        stale.remove(dst);
                        *token = Some(*dst);
                    }
                    Item::Loop { body, .. } => {
                        let entry = *token;
                        // Walking the body twice checks the compute
                        // restriction under the steady-state stale set
                        // (iterations ≥ 2), not just the entry state.
                        walk(body, token, stale, true);
                        // (If entry is None the second walk still checks
                        // closure: an unclosed cycle breaks its src
                        // assertions.)
                        assert!(
                            entry.is_none()
                                || *token == entry
                                || !body.iter().any(|i| matches!(i, Item::Pair { .. })),
                            "loop body must return the token to its entry holder"
                        );
                        walk(body, token, stale, true);
                    }
                    Item::Compute { proc, .. } => {
                        assert!(!stale.contains(proc), "compute on a stale sender");
                        if in_loop {
                            if let Some(t) = token {
                                assert_eq!(proc, t, "in-loop computes stick to the token holder");
                            }
                        }
                    }
                    Item::WildcardSink { .. } | Item::Coll { .. } | Item::OrphanRecv { .. } => {
                        panic!("relay programs are pairs and computation only")
                    }
                    Item::ComputeAll { .. } => {}
                }
            }
        }
        let cfg = GenConfig::ks(4, vec![256, 1024, 4096]);
        for seed in 0..300 {
            let p = generate(&cfg, seed);
            walk(&p.items, &mut None, &mut BTreeSet::new(), false);
        }
    }

    #[test]
    fn maybe_deadlock_mode_eventually_emits_orphans() {
        let cfg = GenConfig::maybe_deadlocking();
        let found = (0..100).any(|seed| generate(&cfg, seed).has_orphans());
        assert!(found, "orphan receives should appear within 100 seeds");
    }
}
