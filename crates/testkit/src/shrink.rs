//! Greedy counterexample minimisation.
//!
//! [`shrink`] repeatedly applies the single smallest-step reductions —
//! drop an item, lower a loop count or inline a single-iteration loop,
//! drop a wildcard sender, snap sizes to the smallest grid value, shorten
//! computations, simplify pair modes, drop unused top processes — keeping
//! a candidate only when the caller's predicate still fails on it. Every
//! accepted candidate strictly decreases a well-founded size measure, so
//! the pass always terminates at a locally-minimal program.

use crate::program::{Item, PairMode, TestProgram};

/// Total atoms in a program, with loop bodies weighted by their count —
/// the well-founded measure the shrinker descends.
fn atoms(items: &[Item]) -> u64 {
    items
        .iter()
        .map(|i| match i {
            Item::Loop { count, body } => 1 + u64::from(*count) * atoms(body),
            Item::WildcardSink { senders, .. } => 1 + senders.len() as u64,
            _ => 1,
        })
        .sum()
}

fn weight(p: &TestProgram) -> (u64, usize, u64) {
    fn bytes_and_usecs(items: &[Item]) -> u64 {
        items
            .iter()
            .map(|i| match i {
                Item::Pair { bytes, .. }
                | Item::WildcardSink { bytes, .. }
                | Item::Coll { bytes, .. }
                | Item::OrphanRecv { bytes, .. } => *bytes,
                Item::Compute { usecs, .. } | Item::ComputeAll { usecs } => *usecs,
                Item::Loop { body, .. } => bytes_and_usecs(body),
            })
            .sum()
    }
    (atoms(&p.items), p.nprocs, bytes_and_usecs(&p.items))
}

/// Every program reachable from `items` by one structural reduction.
fn structural_candidates(items: &[Item]) -> Vec<Vec<Item>> {
    let mut out = Vec::new();
    for i in 0..items.len() {
        // Drop the item entirely.
        let mut dropped = items.to_vec();
        dropped.remove(i);
        out.push(dropped);
        match &items[i] {
            Item::Loop { count, body } => {
                if *count > 1 {
                    let mut v = items.to_vec();
                    v[i] = Item::Loop {
                        count: count - 1,
                        body: body.clone(),
                    };
                    out.push(v);
                } else {
                    // Inline a single-iteration loop.
                    let mut v = items.to_vec();
                    v.splice(i..=i, body.iter().cloned());
                    out.push(v);
                }
                // Recurse into the body.
                for smaller in structural_candidates(body) {
                    if !smaller.is_empty() {
                        let mut v = items.to_vec();
                        v[i] = Item::Loop {
                            count: *count,
                            body: smaller,
                        };
                        out.push(v);
                    }
                }
            }
            Item::WildcardSink {
                sink,
                senders,
                bytes,
            } if senders.len() > 1 => {
                for s in 0..senders.len() {
                    let mut fewer = senders.clone();
                    fewer.remove(s);
                    let mut v = items.to_vec();
                    v[i] = Item::WildcardSink {
                        sink: *sink,
                        senders: fewer,
                        bytes: *bytes,
                    };
                    out.push(v);
                }
            }
            _ => {}
        }
    }
    out
}

/// Every program reachable by one value reduction (sizes, durations,
/// modes). These keep the structure but shrink the data. Byte counts are
/// offered every smaller grid size (smallest first), so a failure that
/// needs a minimum size settles at that grid point.
fn value_candidates(items: &[Item], grid: &[u64]) -> Vec<Vec<Item>> {
    fn reduce_at(items: &[Item], path: &mut Vec<Vec<Item>>, grid: &[u64]) {
        let smaller = |bytes: u64| grid.iter().copied().filter(move |&s| s < bytes);
        for i in 0..items.len() {
            let mut push = |replacement: Item| {
                let mut v = items.to_vec();
                v[i] = replacement;
                path.push(v);
            };
            match &items[i] {
                Item::Pair {
                    src,
                    dst,
                    bytes,
                    mode,
                } => {
                    for b in smaller(*bytes) {
                        push(Item::Pair {
                            src: *src,
                            dst: *dst,
                            bytes: b,
                            mode: *mode,
                        });
                    }
                    if *mode != PairMode::Blocking {
                        push(Item::Pair {
                            src: *src,
                            dst: *dst,
                            bytes: *bytes,
                            mode: PairMode::Blocking,
                        });
                    }
                }
                Item::WildcardSink {
                    sink,
                    senders,
                    bytes,
                } => {
                    for b in smaller(*bytes) {
                        push(Item::WildcardSink {
                            sink: *sink,
                            senders: senders.clone(),
                            bytes: b,
                        });
                    }
                }
                Item::Coll { op, bytes } => {
                    for b in smaller(*bytes) {
                        push(Item::Coll { op: *op, bytes: b });
                    }
                }
                Item::OrphanRecv { src, dst, bytes } => {
                    for b in smaller(*bytes) {
                        push(Item::OrphanRecv {
                            src: *src,
                            dst: *dst,
                            bytes: b,
                        });
                    }
                }
                Item::Compute { proc, usecs } if *usecs > 1 => push(Item::Compute {
                    proc: *proc,
                    usecs: 1,
                }),
                Item::ComputeAll { usecs } if *usecs > 1 => push(Item::ComputeAll { usecs: 1 }),
                Item::Loop { count, body } => {
                    let mut inner = Vec::new();
                    reduce_at(body, &mut inner, grid);
                    for b in inner {
                        let mut v = items.to_vec();
                        v[i] = Item::Loop {
                            count: *count,
                            body: b,
                        };
                        path.push(v);
                    }
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    reduce_at(items, &mut out, grid);
    out
}

/// Renumber referenced processes to a compact `0..k` range (order
/// preserving), dropping processes the program never names. `None` when
/// that would not reduce the process count.
fn compacted(p: &TestProgram) -> Option<TestProgram> {
    use std::collections::{BTreeMap, BTreeSet};
    fn collect(items: &[Item], used: &mut BTreeSet<usize>) {
        for i in items {
            match i {
                Item::Pair { src, dst, .. } | Item::OrphanRecv { src, dst, .. } => {
                    used.insert(*src);
                    used.insert(*dst);
                }
                Item::Compute { proc, .. } => {
                    used.insert(*proc);
                }
                Item::WildcardSink { sink, senders, .. } => {
                    used.insert(*sink);
                    used.extend(senders.iter().copied());
                }
                Item::Loop { body, .. } => collect(body, used),
                Item::ComputeAll { .. } | Item::Coll { .. } => {}
            }
        }
    }
    let mut used = BTreeSet::new();
    collect(&p.items, &mut used);
    let map: BTreeMap<usize, usize> = used.iter().copied().zip(0..).collect();
    let nprocs = map.len().max(2);
    if nprocs >= p.nprocs {
        return None;
    }
    fn apply(items: &[Item], map: &BTreeMap<usize, usize>) -> Vec<Item> {
        items
            .iter()
            .map(|i| match i {
                Item::Pair {
                    src,
                    dst,
                    bytes,
                    mode,
                } => Item::Pair {
                    src: map[src],
                    dst: map[dst],
                    bytes: *bytes,
                    mode: *mode,
                },
                Item::OrphanRecv { src, dst, bytes } => Item::OrphanRecv {
                    src: map[src],
                    dst: map[dst],
                    bytes: *bytes,
                },
                Item::Compute { proc, usecs } => Item::Compute {
                    proc: map[proc],
                    usecs: *usecs,
                },
                Item::WildcardSink {
                    sink,
                    senders,
                    bytes,
                } => Item::WildcardSink {
                    sink: map[sink],
                    senders: senders.iter().map(|s| map[s]).collect(),
                    bytes: *bytes,
                },
                Item::Loop { count, body } => Item::Loop {
                    count: *count,
                    body: apply(body, map),
                },
                Item::ComputeAll { usecs } => Item::ComputeAll { usecs: *usecs },
                Item::Coll { op, bytes } => Item::Coll {
                    op: *op,
                    bytes: *bytes,
                },
            })
            .collect()
    }
    Some(TestProgram {
        nprocs,
        items: apply(&p.items, &map),
    })
}

/// Minimise `start` with respect to `fails`, which must return `true` on
/// `start` itself (the caller has already confirmed the failure).
/// `sizes` is the generation grid; byte counts shrink to its smallest
/// entry so the minimised program stays on the oracle's timing table.
pub fn shrink<F>(start: &TestProgram, sizes: &[u64], fails: F) -> TestProgram
where
    F: Fn(&TestProgram) -> bool,
{
    let mut grid: Vec<u64> = sizes.to_vec();
    grid.sort_unstable();
    grid.dedup();
    let mut cur = start.clone();
    loop {
        let cur_weight = weight(&cur);
        let mut candidates: Vec<TestProgram> = Vec::new();
        for items in structural_candidates(&cur.items) {
            if !items.is_empty() {
                candidates.push(TestProgram {
                    nprocs: cur.nprocs,
                    items,
                });
            }
        }
        // Drop and renumber unused processes. Collectives involve every
        // process implicitly, so this changes their width — the predicate
        // decides whether the failure survives that.
        if let Some(c) = compacted(&cur) {
            candidates.push(c);
        }
        for items in value_candidates(&cur.items, &grid) {
            candidates.push(TestProgram {
                nprocs: cur.nprocs,
                items,
            });
        }
        let accepted = candidates
            .into_iter()
            .find(|c| weight(c) < cur_weight && fails(c));
        match accepted {
            Some(c) => cur = c,
            None => return cur,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};

    /// A predicate that only looks at structure: "contains an Isend pair
    /// of at least 1024 bytes". The shrinker must reduce any failing
    /// program to exactly one such pair and nothing else.
    #[test]
    fn shrinks_to_the_single_triggering_item() {
        let cfg = GenConfig::differential();
        let has_big_isend = |p: &TestProgram| {
            fn scan(items: &[Item]) -> bool {
                items.iter().any(|i| match i {
                    Item::Pair { bytes, mode, .. } => *mode == PairMode::Isend && *bytes >= 1024,
                    Item::Loop { body, .. } => scan(body),
                    _ => false,
                })
            }
            scan(&p.items)
        };
        let mut shrunk_any = false;
        for seed in 0..200 {
            let p = generate(&cfg, seed);
            if !has_big_isend(&p) {
                continue;
            }
            shrunk_any = true;
            let small = shrink(&p, &cfg.sizes, has_big_isend);
            assert_eq!(small.items.len(), 1, "seed {seed}: {small:?}");
            assert!(has_big_isend(&small));
            assert_eq!(small.nprocs, 2, "seed {seed}: procs not minimised");
            match &small.items[0] {
                Item::Pair { bytes, .. } => assert_eq!(*bytes, 1024, "seed {seed}"),
                other => panic!("seed {seed}: {other:?}"),
            }
        }
        assert!(shrunk_any, "no seed produced a big Isend in 200 tries");
    }

    #[test]
    fn shrinking_terminates_on_unshrinkable_programs() {
        let p = TestProgram {
            nprocs: 2,
            items: vec![Item::Pair {
                src: 0,
                dst: 1,
                bytes: 64,
                mode: PairMode::Blocking,
            }],
        };
        let out = shrink(&p, &[64], |_| true);
        assert_eq!(out, p);
    }

    #[test]
    fn loop_counts_and_bodies_are_reduced() {
        let p = TestProgram {
            nprocs: 2,
            items: vec![Item::Loop {
                count: 4,
                body: vec![
                    Item::ComputeAll { usecs: 100 },
                    Item::Pair {
                        src: 0,
                        dst: 1,
                        bytes: 4096,
                        mode: PairMode::Blocking,
                    },
                ],
            }],
        };
        // Predicate: program still contains a Pair somewhere.
        let has_pair = |p: &TestProgram| {
            fn scan(items: &[Item]) -> bool {
                items.iter().any(|i| match i {
                    Item::Pair { .. } => true,
                    Item::Loop { body, .. } => scan(body),
                    _ => false,
                })
            }
            scan(&p.items)
        };
        let small = shrink(&p, &[64, 4096], has_pair);
        // The loop must be gone (inlined) and only the pair remain, at
        // the smallest grid size.
        assert_eq!(
            small.items,
            vec![Item::Pair {
                src: 0,
                dst: 1,
                bytes: 64,
                mode: PairMode::Blocking,
            }]
        );
    }
}
