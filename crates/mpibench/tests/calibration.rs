//! Calibration probes: verify that the simulated cluster reproduces the
//! paper's qualitative phenomena. The `#[ignore]`d probe prints full series
//! for manual inspection (`cargo test -p pevpm-mpibench --release -- --ignored --nocapture`);
//! the enabled tests assert the qualitative shapes.

use pevpm_mpibench::{run_p2p, P2pConfig};

fn mean_at(nodes: usize, ppn: usize, size: u64, reps: usize) -> f64 {
    let cfg = P2pConfig::perseus(nodes, ppn, vec![size], reps, 42);
    let res = run_p2p(&cfg).unwrap();
    res.by_size[0].summary.mean().unwrap()
}

#[test]
fn contention_penalty_grows_with_node_count() {
    // Paper §3: a 1 KB message takes ~70% longer at 64×1 than at 2×1.
    // Assert the monotone growth and a substantial 64-node penalty.
    let t2 = mean_at(2, 1, 1024, 60);
    let t16 = mean_at(16, 1, 1024, 60);
    let t64 = mean_at(64, 1, 1024, 40);
    assert!(t16 > t2, "16x1 ({t16}) should exceed 2x1 ({t2})");
    assert!(t64 > t16, "64x1 ({t64}) should exceed 16x1 ({t16})");
    let penalty = t64 / t2 - 1.0;
    assert!(
        penalty > 0.25,
        "64x1 contention penalty too small: {:.0}% (t2={t2:.6}, t64={t64:.6})",
        penalty * 100.0
    );
}

#[test]
fn smp_processes_add_nic_contention() {
    // Fig 1/2: n×2 lines sit above n×1 lines (two processes share one
    // NIC). The effect grows with message size as NIC serialisation
    // dominates.
    let t1k_1 = mean_at(8, 1, 1024, 60);
    let t1k_2 = mean_at(8, 2, 1024, 60);
    assert!(
        t1k_2 > t1k_1,
        "8x2 ({t1k_2}) should exceed 8x1 ({t1k_1}) at 1 KB"
    );
    let t4k_1 = mean_at(8, 1, 4096, 60);
    let t4k_2 = mean_at(8, 2, 4096, 60);
    assert!(
        t4k_2 > t4k_1 * 1.15,
        "8x2 ({t4k_2}) should clearly exceed 8x1 ({t4k_1}) at 4 KB"
    );
}

#[test]
fn eager_rendezvous_knee_at_16k() {
    // Fig 2: a knee at the 16 KB protocol switch. The per-byte cost jumps
    // when crossing the threshold.
    let t8k = mean_at(2, 1, 8 * 1024, 30);
    let t14k = mean_at(2, 1, 14 * 1024, 30);
    let t18k = mean_at(2, 1, 18 * 1024, 30);
    // Slope below the knee (per 4 KB step, eager):
    let eager_step = (t14k - t8k) / 6.0;
    // Jump across the knee minus the expected linear growth:
    let knee_jump = (t18k - t14k) - eager_step * 4.0;
    assert!(
        knee_jump > 100e-6,
        "expected a rendezvous round-trip jump at 16 KB, got {knee_jump:.2e}s \
         (t8k={t8k:.6}, t14k={t14k:.6}, t18k={t18k:.6})"
    );
}

#[test]
fn saturation_tails_at_64x1_large_messages() {
    // Fig 4: at 64×1 with large messages the backplane saturates. Most
    // losses recover via fast retransmit (milliseconds), but tail losses
    // wait out the full RTO — producing a main mass plus detached outliers
    // "at values related to the network's retransmission timeout
    // parameters" (paper §3).
    let cfg = P2pConfig::perseus(64, 1, vec![32 * 1024], 15, 7);
    let res = run_p2p(&cfg).unwrap();
    let samples = &res.by_size[0].samples;
    let ecdf = pevpm_dist::Ecdf::new(samples);
    let p50 = ecdf.quantile(0.5).unwrap();
    let max = ecdf.quantile(1.0).unwrap();
    assert!(
        p50 < 0.08,
        "main mass should recover via fast retransmit, p50={p50:.6}"
    );
    assert!(
        max > 0.15,
        "expected detached RTO outliers beyond 150 ms, max={max:.6}"
    );
    assert!(
        max > p50 * 3.0,
        "outliers should be detached from the mass: p50={p50:.6}, max={max:.6}"
    );
}

#[test]
#[ignore = "manual calibration probe; prints full series"]
fn print_calibration_series() {
    for &(nodes, ppn) in &[(2usize, 1usize), (8, 1), (32, 1), (64, 1), (8, 2), (64, 2)] {
        let sizes = vec![64, 256, 1024, 4096, 16384, 65536];
        let cfg = P2pConfig::perseus(nodes, ppn, sizes, 30, 42);
        let res = run_p2p(&cfg).unwrap();
        println!("== {nodes}x{ppn} ==");
        for r in &res.by_size {
            println!(
                "  size {:>7}: min {:>10.1}us avg {:>10.1}us max {:>10.1}us",
                r.size,
                r.summary.min().unwrap() * 1e6,
                r.summary.mean().unwrap() * 1e6,
                r.summary.max().unwrap() * 1e6,
            );
        }
    }
}
