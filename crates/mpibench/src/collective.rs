//! Collective-operation benchmark driver.
//!
//! MPIBench's second headline capability (§2): because every process reads
//! the same global clock, the benchmark can record the completion time of a
//! collective **at every process**, not just at one designated rank the way
//! conventional benchmarks do. Samples here are per-process completion
//! times measured from the synchronised start of each repetition.

use crate::clock::ClockModel;
use crate::p2p::histogram_from_samples;
use parking_lot::Mutex;
use pevpm_dist::{CommDist, DistKey, DistTable, Op, Summary};
use pevpm_mpisim::{Rank, ReduceOp, SimError, World, WorldConfig};
use std::sync::Arc;

/// Which collective to benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollKind {
    /// Barrier (size ignored).
    Barrier,
    /// Broadcast from rank 0.
    Bcast,
    /// Reduce (sum) to rank 0.
    Reduce,
    /// Allreduce (sum).
    Allreduce,
    /// All-to-all personalised exchange.
    Alltoall,
}

impl CollKind {
    /// The benchmark-database operation this collective is recorded under.
    pub fn op(self) -> Op {
        match self {
            CollKind::Barrier => Op::Barrier,
            CollKind::Bcast => Op::Bcast,
            CollKind::Reduce => Op::Reduce,
            CollKind::Allreduce => Op::Allreduce,
            CollKind::Alltoall => Op::Alltoall,
        }
    }

    fn run(self, rank: &mut Rank, bytes: u64) {
        match self {
            CollKind::Barrier => rank.barrier(),
            CollKind::Bcast => rank.bcast_size(0, bytes),
            CollKind::Reduce => {
                // Use a real payload sized to `bytes` (f64 elements).
                let n = (bytes as usize / 8).max(1);
                let data = vec![1.0f64; n];
                let _ = rank.reduce_f64s(0, &data, ReduceOp::Sum);
            }
            CollKind::Allreduce => {
                let n = (bytes as usize / 8).max(1);
                let data = vec![1.0f64; n];
                let _ = rank.allreduce_f64s(&data, ReduceOp::Sum);
            }
            CollKind::Alltoall => rank.alltoall_size(bytes),
        }
    }
}

/// Configuration of one collective benchmark run.
#[derive(Debug, Clone)]
pub struct CollConfig {
    /// World under test.
    pub world: WorldConfig,
    /// Collective to benchmark.
    pub kind: CollKind,
    /// Message sizes to sweep (a single `0` for barrier).
    pub sizes: Vec<u64>,
    /// Timed repetitions per size.
    pub repetitions: usize,
    /// Untimed warmup repetitions.
    pub warmup: usize,
    /// Clock model (perfect by default).
    pub clock: Option<ClockModel>,
}

/// Per-size distribution of per-process completion times.
#[derive(Debug, Clone)]
pub struct CollSizeResult {
    /// Message size in bytes.
    pub size: u64,
    /// One completion-time sample per (process, repetition).
    pub samples: Vec<f64>,
    /// Exact summary of the samples.
    pub summary: Summary,
}

/// Result of a collective benchmark run.
#[derive(Debug, Clone)]
pub struct CollResult {
    /// The collective that was measured.
    pub kind: CollKind,
    /// Ranks in the world.
    pub nranks: usize,
    /// Per-size results.
    pub by_size: Vec<CollSizeResult>,
}

impl CollResult {
    /// Average completion time per size.
    pub fn avg_series(&self) -> Vec<(u64, f64)> {
        self.by_size
            .iter()
            .map(|r| (r.size, r.summary.mean().unwrap_or(0.0)))
            .collect()
    }

    /// Insert histograms into a benchmark database. Collectives are
    /// recorded at contention level = nranks (every process participates).
    pub fn add_to_table(&self, table: &mut DistTable, bins: usize) {
        for r in &self.by_size {
            table.insert(
                DistKey {
                    op: self.kind.op(),
                    size: r.size,
                    contention: self.nranks as u32,
                },
                CommDist::Hist(histogram_from_samples(&r.samples, bins)),
            );
        }
    }
}

/// Run a collective benchmark: per repetition, all ranks synchronise, then
/// each records its own completion time for the collective.
pub fn run_collective(cfg: &CollConfig) -> Result<CollResult, SimError> {
    let n = cfg.world.nranks();
    let nsizes = cfg.sizes.len();
    let clock = cfg.clock.clone().unwrap_or_else(|| ClockModel::perfect(n));

    let stamps: Arc<Mutex<Vec<Vec<Vec<f64>>>>> =
        Arc::new(Mutex::new(vec![vec![Vec::new(); nsizes]; n]));
    let stamps2 = stamps.clone();
    let sizes = cfg.sizes.clone();
    let (kind, reps, warmup) = (cfg.kind, cfg.repetitions, cfg.warmup);
    let clock2 = clock.clone();

    World::run(cfg.world.clone(), move |rank| {
        let r = rank.rank();
        for (si, &size) in sizes.iter().enumerate() {
            for _ in 0..warmup {
                kind.run(rank, size);
            }
            let mut local = Vec::with_capacity(reps);
            for _ in 0..reps {
                rank.barrier();
                let t0 = clock2.read(r, rank.now());
                kind.run(rank, size);
                let t1 = clock2.read(r, rank.now());
                local.push((t1 - t0).max(0.0));
            }
            stamps2.lock()[r][si] = local;
        }
    })?;

    let stamps = Arc::try_unwrap(stamps)
        .unwrap_or_else(|_| panic!("stamp log still shared"))
        .into_inner();
    let mut by_size = Vec::with_capacity(nsizes);
    for (si, &size) in cfg.sizes.iter().enumerate() {
        let mut samples = Vec::with_capacity(reps * n);
        for per_rank in stamps.iter() {
            samples.extend_from_slice(&per_rank[si]);
        }
        let summary = Summary::from_slice(&samples);
        by_size.push(CollSizeResult {
            size,
            samples,
            summary,
        });
    }
    Ok(CollResult {
        kind: cfg.kind,
        nranks: n,
        by_size,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(kind: CollKind, nodes: usize, sizes: Vec<u64>) -> CollResult {
        run_collective(&CollConfig {
            world: WorldConfig::perseus(nodes, 1, 1),
            kind,
            sizes,
            repetitions: 10,
            warmup: 2,
            clock: None,
        })
        .unwrap()
    }

    #[test]
    fn barrier_scales_with_rank_count() {
        let small = quick(CollKind::Barrier, 2, vec![0]);
        let large = quick(CollKind::Barrier, 16, vec![0]);
        let m_small = small.by_size[0].summary.mean().unwrap();
        let m_large = large.by_size[0].summary.mean().unwrap();
        assert!(
            m_large > m_small,
            "barrier should cost more at 16 ranks: {m_small} vs {m_large}"
        );
    }

    #[test]
    fn bcast_collects_samples_from_every_rank() {
        let res = quick(CollKind::Bcast, 4, vec![256, 1024]);
        assert_eq!(res.by_size.len(), 2);
        // 4 ranks × 10 reps.
        assert_eq!(res.by_size[0].samples.len(), 40);
        // Larger broadcasts take longer.
        assert!(res.by_size[1].summary.mean().unwrap() > res.by_size[0].summary.mean().unwrap());
    }

    #[test]
    fn reduce_and_allreduce_run() {
        let r = quick(CollKind::Reduce, 4, vec![64]);
        assert!(r.by_size[0].summary.mean().unwrap() > 0.0);
        let a = quick(CollKind::Allreduce, 4, vec![64]);
        // Allreduce = reduce + bcast, so it must cost more than reduce.
        assert!(a.by_size[0].summary.mean().unwrap() > r.by_size[0].summary.mean().unwrap());
    }

    #[test]
    fn alltoall_is_the_most_expensive() {
        let b = quick(CollKind::Bcast, 4, vec![1024]);
        let a = quick(CollKind::Alltoall, 4, vec![1024]);
        assert!(a.by_size[0].summary.mean().unwrap() > b.by_size[0].summary.mean().unwrap());
    }

    #[test]
    fn table_insertion_records_contention_as_nranks() {
        let res = quick(CollKind::Bcast, 4, vec![256]);
        let mut t = DistTable::new();
        res.add_to_table(&mut t, 32);
        assert!(t
            .get(&DistKey {
                op: Op::Bcast,
                size: 256,
                contention: 4
            })
            .is_some());
    }
}
