//! Conventional MPI benchmarking, reproduced for comparison.
//!
//! §2 of the paper: Mpptest, MPBench, SKaMPI and the Pallas benchmarks
//! "all determine the average communication time … using essentially the
//! same approach: they measure the time taken for many repetitions of an
//! MPI operation and then compute the average". This module implements
//! that methodology faithfully — a rank-0-local stopwatch around a batch
//! of ping-pongs — so its blind spots can be demonstrated against
//! MPIBench's per-message global-clock measurements:
//!
//! 1. it reports a single number, hiding the distribution (no tails, no
//!    RTO outliers — the very information PEVPM needs);
//! 2. it measures an *idle* network (one pair at a time), so it cannot see
//!    contention at all;
//! 3. batched non-resynchronised loops let pipelining smear what each
//!    "repetition" means.

use crate::p2p::{run_p2p, P2pConfig};
use parking_lot::Mutex;
use pevpm_dist::Summary;
use pevpm_mpisim::{SimError, World, WorldConfig};
use std::sync::Arc;

/// Result of a conventional ping-pong benchmark: one number per size.
#[derive(Debug, Clone)]
pub struct PingPongResult {
    /// Message size.
    pub size: u64,
    /// The reported "time per message": round-trip / 2, averaged over the
    /// whole batch by rank 0's local stopwatch.
    pub avg: f64,
}

/// Run the conventional benchmark: ranks 0 and 1 ping-pong `reps` times
/// per size; rank 0 times the whole batch locally and divides.
pub fn run_pingpong(
    world: WorldConfig,
    sizes: &[u64],
    reps: usize,
) -> Result<Vec<PingPongResult>, SimError> {
    assert!(world.nranks() >= 2, "ping-pong needs two ranks");
    let sizes_v = sizes.to_vec();
    let out: Arc<Mutex<Vec<PingPongResult>>> = Arc::new(Mutex::new(Vec::new()));
    let out2 = out.clone();

    World::run(world, move |rank| {
        if rank.rank() > 1 {
            return;
        }
        for (si, &size) in sizes_v.iter().enumerate() {
            rank.barrier2(); // pairwise sync between ranks 0 and 1
            let t0 = rank.now();
            for _ in 0..reps {
                if rank.rank() == 0 {
                    rank.send_size(1, si as u64, size);
                    let _ = rank.recv(1, si as u64);
                } else {
                    let _ = rank.recv(0, si as u64);
                    rank.send_size(0, si as u64, size);
                }
            }
            if rank.rank() == 0 {
                let elapsed = rank.now().since(t0).as_secs_f64();
                out2.lock().push(PingPongResult {
                    size,
                    avg: elapsed / (2.0 * reps as f64),
                });
            }
        }
    })?;

    let results = out.lock().clone();
    Ok(results)
}

/// What the conventional number misses, per size: MPIBench's per-message
/// statistics under real contention at the same machine shape.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Message size.
    pub size: u64,
    /// Conventional ping-pong average (idle network, round-trip halves).
    pub conventional_avg: f64,
    /// MPIBench per-message summary under the loaded `n×p` exchange.
    pub mpibench: Summary,
    /// 99th percentile of the MPIBench distribution.
    pub p99: f64,
}

impl Comparison {
    /// How much slower the loaded-network average is than the conventional
    /// number — the contention the single number cannot see.
    pub fn hidden_contention_factor(&self) -> f64 {
        self.mpibench.mean().unwrap_or(0.0) / self.conventional_avg
    }
}

/// Run both methodologies on the same machine shape and pair the results.
pub fn compare(
    nodes: usize,
    ppn: usize,
    sizes: &[u64],
    reps: usize,
    seed: u64,
) -> Result<Vec<Comparison>, SimError> {
    let pp = run_pingpong(WorldConfig::perseus(nodes, ppn, seed), sizes, reps)?;
    let mb = run_p2p(&P2pConfig::perseus(nodes, ppn, sizes.to_vec(), reps, seed))?;
    Ok(pp
        .into_iter()
        .zip(mb.by_size)
        .map(|(conv, loaded)| {
            let ecdf = pevpm_dist::Ecdf::new(&loaded.samples);
            Comparison {
                size: conv.size,
                conventional_avg: conv.avg,
                p99: ecdf.quantile(0.99).unwrap_or(0.0),
                mpibench: loaded.summary,
            }
        })
        .collect())
}

/// Minimal two-rank synchronisation used by the ping-pong driver (a full
/// `barrier()` would involve all ranks, which the conventional tools do
/// not do for a pairwise test).
trait PairSync {
    fn barrier2(&mut self);
}

impl PairSync for pevpm_mpisim::Rank {
    fn barrier2(&mut self) {
        const TAG: u64 = (1 << 40) + 99;
        if self.rank() == 0 {
            self.send_size(1, TAG, 0);
            let _ = self.recv(1, TAG);
        } else if self.rank() == 1 {
            let _ = self.recv(0, TAG);
            self.send_size(0, TAG, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pingpong_reports_one_number_per_size() {
        let res = run_pingpong(WorldConfig::perseus(2, 1, 5), &[256, 1024], 30).unwrap();
        assert_eq!(res.len(), 2);
        assert!(res[0].avg > 0.0 && res[1].avg > res[0].avg);
        // Era-plausible one-way 1 KB time.
        assert!(res[1].avg > 1e-4 && res[1].avg < 1e-3, "avg {}", res[1].avg);
    }

    #[test]
    fn conventional_number_hides_contention() {
        // At 32x1 the loaded exchange is visibly slower than the idle
        // ping-pong, but the conventional tool cannot tell.
        let cmp = compare(32, 1, &[1024], 30, 7).unwrap();
        let c = &cmp[0];
        assert!(
            c.hidden_contention_factor() > 1.05,
            "loaded mean should exceed idle ping-pong: {:.3}",
            c.hidden_contention_factor()
        );
        // And the distribution information (p99 tail) exceeds what the
        // single number suggests.
        assert!(c.p99 > c.conventional_avg * 1.1);
    }

    #[test]
    fn pingpong_matches_mpibench_on_idle_two_rank_machine() {
        // With only two ranks the methodologies must roughly agree — the
        // differences appear only under load.
        let cmp = compare(2, 1, &[1024], 40, 9).unwrap();
        let c = &cmp[0];
        let rel = (c.mpibench.mean().unwrap() - c.conventional_avg).abs() / c.conventional_avg;
        assert!(rel < 0.10, "idle disagreement {:.1}%", rel * 100.0);
    }
}
