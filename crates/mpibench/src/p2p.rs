//! Point-to-point benchmark driver.
//!
//! Reproduces MPIBench's p2p methodology (§2–3 of the paper): ranks are
//! paired across the machine (rank `i` with rank `i + n/2`, so pairs span
//! switches and stress the backplane exactly as in the paper's 64×1
//! analysis), all pairs communicate **simultaneously**, and each individual
//! message is timed on the globally synchronised clock as
//! `t_recv_complete(receiver) − t_send_start(sender)` — something ordinary
//! ping-pong benchmarks cannot do. Periodic barriers stop the pairs
//! drifting apart, but the timed operations themselves run under full
//! contention.

use crate::clock::ClockModel;
use parking_lot::Mutex;
use pevpm_dist::{CommDist, DistKey, DistTable, Op};
use pevpm_dist::{Histogram, Summary};
use pevpm_mpisim::{SimError, TraceEvent, World, WorldConfig};
use std::sync::Arc;

/// Pairing pattern for the point-to-point test.
///
/// Following Grove's MPIBench methodology, the pattern is chosen to match
/// the contention structure of interest: `HalfSplit` stresses the
/// inter-switch backplane (the paper's Figures 1–4 setup), while `Ring`
/// reproduces the locality of regular-local applications (each rank talks
/// to its neighbours, mixing intra-node/intra-switch paths exactly as a
/// halo exchange does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairPattern {
    /// Rank `i` pairs with `i + n/2` (spans the machine; the default and
    /// the paper's contention-heavy setup).
    HalfSplit,
    /// Rank `2i` pairs with `2i+1` (mostly same-switch neighbours).
    Adjacent,
    /// Every rank sends to `(i+1) % n` and receives from `(i-1+n) % n`
    /// (always bidirectionally active; `Direction` is ignored).
    Ring,
}

impl PairPattern {
    /// The peer of `rank` in a world of `n` ranks, plus whether this rank
    /// is the pair's *primary* (the only sender in one-way mode; the
    /// even-phase sender in exchange mode). Not meaningful for `Ring`.
    pub fn peer(self, rank: usize, n: usize) -> (usize, bool) {
        assert!(
            n >= 2 && n.is_multiple_of(2),
            "p2p benchmark needs an even rank count"
        );
        match self {
            PairPattern::HalfSplit => {
                if rank < n / 2 {
                    (rank + n / 2, true)
                } else {
                    (rank - n / 2, false)
                }
            }
            PairPattern::Adjacent => {
                if rank.is_multiple_of(2) {
                    (rank + 1, true)
                } else {
                    (rank - 1, false)
                }
            }
            PairPattern::Ring => ((rank + 1) % n, true),
        }
    }

    /// `(send_to, recv_from, sends_here, recvs_here)` for a rank under
    /// this pattern and traffic direction.
    pub fn role(self, rank: usize, n: usize, direction: Direction) -> (usize, usize, bool, bool) {
        match self {
            PairPattern::Ring => {
                assert!(n >= 2, "ring needs at least two ranks");
                ((rank + 1) % n, (rank + n - 1) % n, true, true)
            }
            _ => {
                let (peer, primary) = self.peer(rank, n);
                let exchange = direction == Direction::Exchange;
                (peer, peer, primary || exchange, !primary || exchange)
            }
        }
    }

    /// Number of simultaneously in-flight messages under this pattern.
    pub fn concurrency(self, n: usize, direction: Direction) -> u32 {
        match self {
            PairPattern::Ring => n as u32,
            _ => match direction {
                Direction::OneWay => (n / 2) as u32,
                Direction::Exchange => n as u32,
            },
        }
    }
}

/// Whether traffic flows one way per pair or both ways simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Only the primary of each pair sends.
    OneWay,
    /// Both ends of each pair send simultaneously — the paper's "processes
    /// exchanging messages" setup (Figure 3), with twice the network load.
    Exchange,
}

/// Configuration of one point-to-point benchmark run.
#[derive(Debug, Clone)]
pub struct P2pConfig {
    /// World (cluster + placement) under test.
    pub world: WorldConfig,
    /// Message sizes to sweep.
    pub sizes: Vec<u64>,
    /// Timed repetitions per size.
    pub repetitions: usize,
    /// Untimed warmup repetitions per size.
    pub warmup: usize,
    /// Resynchronise with a barrier every this many repetitions. 1 (the
    /// default) re-aligns all pairs before every timed operation so
    /// measured times are per-message transfer times, not pipeline
    /// backlogs.
    pub sync_every: usize,
    /// Pairing pattern.
    pub pattern: PairPattern,
    /// One-way or bidirectional-exchange traffic.
    pub direction: Direction,
    /// Clock model used to *read* timestamps (perfect by default).
    pub clock: Option<ClockModel>,
}

impl P2pConfig {
    /// MPIBench-like defaults for an `nodes × ppn` Perseus configuration.
    pub fn perseus(
        nodes: usize,
        ppn: usize,
        sizes: Vec<u64>,
        repetitions: usize,
        seed: u64,
    ) -> Self {
        P2pConfig {
            world: WorldConfig::perseus(nodes, ppn, seed),
            sizes,
            repetitions,
            warmup: (repetitions / 10).max(2),
            sync_every: 1,
            pattern: PairPattern::HalfSplit,
            direction: Direction::Exchange,
            clock: None,
        }
    }
}

/// Distribution of individual-message times for one (size, world) point.
#[derive(Debug, Clone)]
pub struct P2pSizeResult {
    /// Message size in bytes.
    pub size: u64,
    /// Individual message times in seconds (one per timed message).
    pub samples: Vec<f64>,
    /// Exact summary of the samples.
    pub summary: Summary,
}

impl P2pSizeResult {
    /// Histogram of the samples with `bins` bins spanning the data.
    pub fn histogram(&self, bins: usize) -> Histogram {
        histogram_from_samples(&self.samples, bins)
    }
}

/// Full result of a point-to-point benchmark run.
#[derive(Debug, Clone)]
pub struct P2pResult {
    /// Nodes in the tested world (`n` of `n×p`).
    pub nodes: usize,
    /// Processes per node (`p` of `n×p`).
    pub ppn: usize,
    /// Number of simultaneously in-flight messages (= the contention level
    /// recorded in the benchmark database): n/2 for one-way traffic, n for
    /// bidirectional exchange.
    pub pairs: u32,
    /// Per-size distributions, in the order of `P2pConfig::sizes`.
    pub by_size: Vec<P2pSizeResult>,
    /// Per-rank operation timelines of the benchmark execution; `Some`
    /// when `P2pConfig::world.record_trace` is set. For merged
    /// multi-replica results ([`run_p2p_reps`]) this is the first
    /// replica's trace.
    pub traces: Option<Vec<Vec<TraceEvent>>>,
}

impl P2pResult {
    /// The average-time series (size, mean seconds) — a Figure 1/2 line.
    pub fn avg_series(&self) -> Vec<(u64, f64)> {
        self.by_size
            .iter()
            .map(|r| (r.size, r.summary.mean().unwrap_or(0.0)))
            .collect()
    }

    /// The minimum-time series (size, min seconds) — the `min` curve.
    pub fn min_series(&self) -> Vec<(u64, f64)> {
        self.by_size
            .iter()
            .map(|r| (r.size, r.summary.min().unwrap_or(0.0)))
            .collect()
    }

    /// Insert this run's histograms into a benchmark database.
    pub fn add_to_table(&self, table: &mut DistTable, op: Op, bins: usize) {
        for r in &self.by_size {
            table.insert(
                DistKey {
                    op,
                    size: r.size,
                    contention: self.pairs,
                },
                CommDist::Hist(r.histogram(bins)),
            );
        }
    }
}

/// Build a histogram over samples with `bins` equal bins spanning
/// `[min, max]`. Degenerate spans get a single tiny bin.
pub fn histogram_from_samples(samples: &[f64], bins: usize) -> Histogram {
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !min.is_finite() || !max.is_finite() {
        return Histogram::new(0.0, 1e-6);
    }
    let span = (max - min).max(1e-9);
    let width = span / bins.max(1) as f64;
    let mut h = Histogram::new(min, width);
    for &s in samples {
        h.add(s);
    }
    h
}

/// Per-rank stamp logs for one run: send-start and receive-completion
/// timestamps, indexed `[size][rep]`.
#[derive(Debug, Clone, Default)]
struct Stamps {
    sends: Vec<Vec<f64>>,
    recvs: Vec<Vec<f64>>,
}

/// Run the point-to-point benchmark. Every timed message contributes one
/// sample: receive-completion time at the destination minus send-start time
/// at the source, both read from the global clock (possibly skewed by the
/// configured [`ClockModel`]).
pub fn run_p2p(cfg: &P2pConfig) -> Result<P2pResult, SimError> {
    let n = cfg.world.nranks();
    assert!(n >= 2, "p2p benchmark needs at least two ranks");
    assert!(
        cfg.pattern == PairPattern::Ring || n.is_multiple_of(2),
        "paired patterns need an even rank count"
    );
    let nsizes = cfg.sizes.len();
    let clock = cfg.clock.clone().unwrap_or_else(|| ClockModel::perfect(n));

    // Written only by the owning rank, so the shared Mutex is purely for
    // Sync; contents stay deterministic.
    let stamps: Arc<Mutex<Vec<Stamps>>> = Arc::new(Mutex::new(vec![
        Stamps {
            sends: vec![Vec::new(); nsizes],
            recvs: vec![Vec::new(); nsizes],
        };
        n
    ]));

    let stamps2 = stamps.clone();
    let sizes = cfg.sizes.clone();
    let (reps, warmup, sync_every) = (cfg.repetitions, cfg.warmup, cfg.sync_every.max(1));
    let (pattern, direction) = (cfg.pattern, cfg.direction);
    let clock2 = clock.clone();

    let report = World::run(cfg.world.clone(), move |rank| {
        let r = rank.rank();
        let (send_to, recv_from, sends_here, recvs_here) = pattern.role(r, n, direction);
        for (si, &size) in sizes.iter().enumerate() {
            rank.barrier();
            for _ in 0..warmup {
                if sends_here {
                    let req = rank.isend_size(send_to, si as u64, size);
                    if recvs_here {
                        let _ = rank.recv(recv_from, si as u64);
                    }
                    rank.wait(req);
                } else {
                    let _ = rank.recv(recv_from, si as u64);
                }
            }
            let mut sends: Vec<f64> = Vec::with_capacity(reps);
            let mut recvs: Vec<f64> = Vec::with_capacity(reps);
            for rep in 0..reps {
                if rep % sync_every == 0 {
                    rank.barrier();
                }
                if sends_here {
                    let t0 = clock2.read(r, rank.now());
                    let req = rank.isend_size(send_to, si as u64, size);
                    if recvs_here {
                        let _ = rank.recv(recv_from, si as u64);
                        recvs.push(clock2.read(r, rank.now()));
                    }
                    rank.wait(req);
                    sends.push(t0);
                } else {
                    let _ = rank.recv(recv_from, si as u64);
                    recvs.push(clock2.read(r, rank.now()));
                }
            }
            let mut log = stamps2.lock();
            log[r].sends[si] = sends;
            log[r].recvs[si] = recvs;
        }
    })?;

    // Pair up stamps: sample = recv_complete(dst) − send_start(src).
    let stamps = Arc::try_unwrap(stamps)
        .unwrap_or_else(|_| panic!("stamp log still shared"))
        .into_inner();
    let mut by_size = Vec::with_capacity(nsizes);
    for (si, &size) in cfg.sizes.iter().enumerate() {
        let mut samples = Vec::new();
        for r in 0..n {
            let (send_to, _, sends_here, _) = cfg.pattern.role(r, n, cfg.direction);
            if !sends_here {
                continue;
            }
            let sends = &stamps[r].sends[si];
            let recvs = &stamps[send_to].recvs[si];
            assert_eq!(sends.len(), recvs.len(), "stamp logs out of step");
            for (t0, t1) in sends.iter().zip(recvs) {
                samples.push((t1 - t0).max(0.0));
            }
        }
        let summary = Summary::from_slice(&samples);
        by_size.push(P2pSizeResult {
            size,
            samples,
            summary,
        });
    }

    Ok(P2pResult {
        nodes: cfg.world.cluster.nodes,
        ppn: cfg.world.procs_per_node,
        pairs: cfg.pattern.concurrency(n, cfg.direction),
        by_size,
        traces: report.traces,
    })
}

/// Run `reps` independent replications of the benchmark and merge their
/// samples into one result, fanning replicas across up to `threads`
/// worker threads (`0` = all cores, `1` = serial).
///
/// Replica `i` re-runs the full benchmark with the world seed
/// `replica_seed(cfg.world.seed, i)`; merged samples are appended in
/// replica order, so the result is bitwise identical at any thread count.
/// This is how a benchmark gathers more repetitions than one simulated
/// run provides without serialising the extra work.
pub fn run_p2p_reps(cfg: &P2pConfig, reps: usize, threads: usize) -> Result<P2pResult, SimError> {
    let base_seed = cfg.world.seed;
    let runs: Vec<P2pResult> = pevpm::replicate::try_parallel_map(reps.max(1), threads, |i| {
        let mut c = cfg.clone();
        c.world.seed = pevpm::replicate::replica_seed(base_seed, i as u64);
        run_p2p(&c)
    })
    .map_err(|e| match e {
        pevpm::replicate::JobError::Err(e) => e,
        pevpm::replicate::JobError::Panic(p) => SimError::ReplicaPanic {
            index: p.index,
            message: p.message,
        },
    })?;

    let mut merged = runs[0].clone();
    for run in &runs[1..] {
        for (acc, r) in merged.by_size.iter_mut().zip(&run.by_size) {
            debug_assert_eq!(acc.size, r.size);
            acc.samples.extend_from_slice(&r.samples);
        }
    }
    for s in &mut merged.by_size {
        s.summary = Summary::from_slice(&s.samples);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairing_patterns() {
        assert_eq!(PairPattern::HalfSplit.peer(0, 8), (4, true));
        assert_eq!(PairPattern::HalfSplit.peer(5, 8), (1, false));
        assert_eq!(PairPattern::Adjacent.peer(0, 8), (1, true));
        assert_eq!(PairPattern::Adjacent.peer(7, 8), (6, false));
    }

    #[test]
    fn two_rank_pingpong_gives_reasonable_times() {
        let cfg = P2pConfig::perseus(2, 1, vec![64, 1024], 40, 1);
        let res = run_p2p(&cfg).unwrap();
        assert_eq!(res.pairs, 2, "exchange mode: both directions in flight");
        assert_eq!(res.by_size.len(), 2);
        for r in &res.by_size {
            // Exchange mode: one sample per direction per repetition.
            assert_eq!(r.samples.len(), 80);
            let mean = r.summary.mean().unwrap();
            // Fast-Ethernet-era small-message latencies: tens of µs to ~1 ms.
            assert!(mean > 1e-5 && mean < 2e-3, "size {} mean {mean}", r.size);
        }
        // Bigger message must be slower.
        let m64 = res.by_size[0].summary.mean().unwrap();
        let m1k = res.by_size[1].summary.mean().unwrap();
        assert!(m1k > m64);
    }

    #[test]
    fn contention_raises_average_times() {
        let sizes = vec![1024u64];
        let lo = run_p2p(&P2pConfig::perseus(2, 1, sizes.clone(), 50, 1)).unwrap();
        let hi = run_p2p(&P2pConfig::perseus(16, 1, sizes, 50, 1)).unwrap();
        let m_lo = lo.by_size[0].summary.mean().unwrap();
        let m_hi = hi.by_size[0].summary.mean().unwrap();
        assert!(
            m_hi > m_lo,
            "16x1 should be slower than 2x1 under contention: {m_lo} vs {m_hi}"
        );
    }

    #[test]
    fn series_extraction_and_table_insertion() {
        let cfg = P2pConfig::perseus(2, 1, vec![64, 256], 20, 1);
        let res = run_p2p(&cfg).unwrap();
        let avg = res.avg_series();
        let min = res.min_series();
        assert_eq!(avg.len(), 2);
        assert!(min[0].1 <= avg[0].1);

        let mut table = DistTable::new();
        res.add_to_table(&mut table, Op::Isend, 64);
        assert_eq!(table.len(), 2);
        assert!(table.mean_at(Op::Isend, 64.0, 2.0).is_some());
    }

    #[test]
    fn replicated_runs_merge_deterministically_at_any_thread_count() {
        let cfg = P2pConfig::perseus(2, 1, vec![512], 10, 9);
        let serial = run_p2p_reps(&cfg, 3, 1).unwrap();
        // Exchange mode: 2 samples per repetition per replica.
        assert_eq!(serial.by_size[0].samples.len(), 3 * 2 * 10);
        let bits = |r: &P2pResult| -> Vec<Vec<u64>> {
            r.by_size
                .iter()
                .map(|s| s.samples.iter().map(|x| x.to_bits()).collect())
                .collect()
        };
        for threads in [2usize, 4] {
            let par = run_p2p_reps(&cfg, 3, threads).unwrap();
            assert_eq!(bits(&serial), bits(&par), "{threads} threads");
            assert_eq!(
                serial.by_size[0].summary.mean().unwrap().to_bits(),
                par.by_size[0].summary.mean().unwrap().to_bits()
            );
        }
        // Replica 0 derives seed base+0, so its samples lead the merge and
        // equal a plain single run.
        let solo = run_p2p(&cfg).unwrap();
        assert_eq!(
            &serial.by_size[0].samples[..solo.by_size[0].samples.len()],
            &solo.by_size[0].samples[..]
        );
    }

    #[test]
    fn one_way_mode_halves_concurrency() {
        let mut cfg = P2pConfig::perseus(4, 1, vec![512], 10, 1);
        cfg.direction = Direction::OneWay;
        let res = run_p2p(&cfg).unwrap();
        assert_eq!(res.pairs, 2);
        assert_eq!(res.by_size[0].samples.len(), 2 * 10);
    }

    #[test]
    fn clock_skew_distorts_measurements() {
        let sizes = vec![512u64];
        let mut cfg = P2pConfig::perseus(2, 1, sizes, 50, 1);
        // One-way timing: every sample is shifted by the same receiver−sender
        // offset. (Exchange would average the +δ and −δ directions and the
        // shift would cancel out of the mean.)
        cfg.direction = Direction::OneWay;
        let clean = run_p2p(&cfg).unwrap();
        cfg.clock = Some(ClockModel::skewed(2, 5e-4, 9));
        let skewed = run_p2p(&cfg).unwrap();
        let d = (skewed.by_size[0].summary.mean().unwrap()
            - clean.by_size[0].summary.mean().unwrap())
        .abs();
        assert!(
            d > 1e-5,
            "clock skew should shift one-way measurements, d={d}"
        );
    }

    #[test]
    fn histogram_from_degenerate_samples() {
        let h = histogram_from_samples(&[1.0, 1.0, 1.0], 10);
        assert_eq!(h.total(), 3);
        let h = histogram_from_samples(&[], 10);
        assert!(h.is_empty());
    }
}
