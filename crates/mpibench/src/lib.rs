//! MPIBench — precise MPI communication benchmarking (reproduction).
//!
//! The original MPIBench (Grove & Coddington, HPC Asia 2001; §2–3 of the
//! reproduced paper) differs from Mpptest/SKaMPI/Pallas in two ways, both
//! reproduced here:
//!
//! 1. **A globally synchronised clock**: individual messages are timed
//!    *across* processes (send start at the sender, receive completion at
//!    the receiver), not as round-trip halves. In this reproduction the
//!    simulator's virtual clock plays that role; [`ClockModel`] can inject
//!    synchronisation error to study its effect.
//! 2. **Distributions, not averages**: every individual operation
//!    contributes one sample, and results are kept as histograms — the
//!    probability distributions PEVPM samples from — rather than collapsed
//!    into a single mean as conventional benchmarks do.
//!
//! The crate provides the point-to-point driver ([`p2p`]), collective
//! drivers ([`collective`]), and full-machine sweeps ([`sweep`]) that
//! produce the [`pevpm_dist::DistTable`] benchmark databases consumed by
//! the PEVPM modelling engine.

pub mod clock;
pub mod collective;
pub mod conventional;
pub mod p2p;
pub mod sweep;

pub use clock::ClockModel;
pub use collective::{run_collective, CollConfig, CollKind, CollResult};
pub use conventional::{compare as compare_conventional, run_pingpong, Comparison, PingPongResult};
pub use p2p::{
    histogram_from_samples, run_p2p, run_p2p_reps, Direction, P2pConfig, P2pResult, PairPattern,
};
pub use sweep::{
    paper_shapes, run_sweep, run_sweep_threads, size_grid, MachineShape, SweepConfig, SweepResult,
};
