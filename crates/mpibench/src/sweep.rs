//! Full benchmark sweeps: run the p2p benchmark over a grid of `n×p`
//! machine configurations and message sizes, producing both the
//! figure-ready series (average/min lines per configuration) and the
//! benchmark database ([`DistTable`]) that PEVPM samples from.

use crate::p2p::{run_p2p, Direction, P2pConfig, P2pResult, PairPattern};
use pevpm_dist::{DistTable, Op};
use pevpm_mpisim::{SimError, WorldConfig};

/// A machine configuration in the paper's `n×p` notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineShape {
    /// Number of nodes.
    pub nodes: usize,
    /// Processes per node.
    pub ppn: usize,
}

impl std::fmt::Display for MachineShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.nodes, self.ppn)
    }
}

/// The configuration grid used throughout the paper's figures:
/// n ∈ {2,4,8,16,32,64} × p ∈ {1,2}.
pub fn paper_shapes() -> Vec<MachineShape> {
    let mut v = Vec::new();
    for &ppn in &[1usize, 2] {
        for &nodes in &[2usize, 4, 8, 16, 32, 64] {
            v.push(MachineShape { nodes, ppn });
        }
    }
    v
}

/// Geometric size grid `lo..=hi` doubling each step.
pub fn size_grid(lo: u64, hi: u64) -> Vec<u64> {
    let mut v = Vec::new();
    let mut s = lo.max(1);
    while s <= hi {
        v.push(s);
        s *= 2;
    }
    v
}

/// Configuration of a full p2p sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Machine shapes to test.
    pub shapes: Vec<MachineShape>,
    /// Message sizes.
    pub sizes: Vec<u64>,
    /// Timed repetitions per (shape, size).
    pub repetitions: usize,
    /// Base RNG seed; each shape uses a distinct derived seed.
    pub seed: u64,
    /// Histogram bins used when building the benchmark database.
    pub bins: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            shapes: paper_shapes(),
            sizes: size_grid(64, 4096),
            repetitions: 100,
            seed: 20040101,
            bins: 100,
        }
    }
}

/// Result of a sweep: per-shape p2p results plus the merged database.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// One p2p result per machine shape, in `shapes` order.
    pub runs: Vec<P2pResult>,
    /// The benchmark database (op = Isend) keyed by size × contention.
    pub table: DistTable,
}

impl SweepResult {
    /// The run for a given shape, if it was in the sweep.
    pub fn run_for(&self, shape: MachineShape) -> Option<&P2pResult> {
        self.runs
            .iter()
            .find(|r| r.nodes == shape.nodes && r.ppn == shape.ppn)
    }
}

/// Run the sweep. This is the expensive entry point behind Figures 1–4.
/// Shapes are independent simulations, so they fan out across all
/// available cores; see [`run_sweep_threads`] for an explicit count.
pub fn run_sweep(cfg: &SweepConfig) -> Result<SweepResult, SimError> {
    run_sweep_threads(cfg, 0)
}

/// [`run_sweep`] with an explicit worker-thread count (`0` = all cores,
/// `1` = serial). Each shape derives its world seed from the shape index
/// alone (`replica_seed(cfg.seed, i)`), and results are merged into the
/// database in shape order, so the output is bitwise identical at any
/// thread count.
pub fn run_sweep_threads(cfg: &SweepConfig, threads: usize) -> Result<SweepResult, SimError> {
    let runs: Vec<P2pResult> = pevpm::replicate::try_parallel_map(cfg.shapes.len(), threads, |i| {
        let shape = cfg.shapes[i];
        let world = WorldConfig::perseus(
            shape.nodes,
            shape.ppn,
            pevpm::replicate::replica_seed(cfg.seed, i as u64),
        );
        let p2p = P2pConfig {
            world,
            sizes: cfg.sizes.clone(),
            repetitions: cfg.repetitions,
            warmup: (cfg.repetitions / 10).max(2),
            sync_every: 1,
            pattern: PairPattern::HalfSplit,
            direction: Direction::Exchange,
            clock: None,
        };
        run_p2p(&p2p)
    })
    .map_err(|e| match e {
        pevpm::replicate::JobError::Err(e) => e,
        pevpm::replicate::JobError::Panic(p) => SimError::ReplicaPanic {
            index: p.index,
            message: p.message,
        },
    })?;
    let mut table = DistTable::new();
    for res in &runs {
        res.add_to_table(&mut table, Op::Isend, cfg.bins);
    }
    Ok(SweepResult { runs, table })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_has_twelve_shapes() {
        let shapes = paper_shapes();
        assert_eq!(shapes.len(), 12);
        assert_eq!(shapes[0].to_string(), "2x1");
        assert_eq!(shapes[11].to_string(), "64x2");
    }

    #[test]
    fn size_grid_doubles() {
        assert_eq!(size_grid(64, 1024), vec![64, 128, 256, 512, 1024]);
        assert_eq!(size_grid(1, 1), vec![1]);
    }

    #[test]
    fn sweep_is_bitwise_identical_at_any_thread_count() {
        let cfg = SweepConfig {
            shapes: vec![
                MachineShape { nodes: 2, ppn: 1 },
                MachineShape { nodes: 4, ppn: 1 },
                MachineShape { nodes: 2, ppn: 2 },
            ],
            sizes: vec![256, 512],
            repetitions: 8,
            seed: 5,
            bins: 32,
        };
        let serial = run_sweep_threads(&cfg, 1).unwrap();
        for threads in [2usize, 4] {
            let par = run_sweep_threads(&cfg, threads).unwrap();
            assert_eq!(serial.runs.len(), par.runs.len());
            for (a, b) in serial.runs.iter().zip(&par.runs) {
                assert_eq!((a.nodes, a.ppn), (b.nodes, b.ppn), "shape order changed");
                for (sa, sb) in a.by_size.iter().zip(&b.by_size) {
                    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(&sa.samples), bits(&sb.samples));
                }
            }
            assert_eq!(serial.table.len(), par.table.len());
        }
    }

    #[test]
    fn small_sweep_builds_table() {
        let cfg = SweepConfig {
            shapes: vec![
                MachineShape { nodes: 2, ppn: 1 },
                MachineShape { nodes: 4, ppn: 1 },
            ],
            sizes: vec![256, 1024],
            repetitions: 15,
            seed: 5,
            bins: 20,
        };
        let res = run_sweep(&cfg).unwrap();
        assert_eq!(res.runs.len(), 2);
        // Table holds 2 shapes × 2 sizes = 4 histograms; exchange mode
        // records n concurrent messages per shape.
        assert_eq!(res.table.len(), 4);
        assert_eq!(res.table.contentions(Op::Isend), vec![2, 4]);
        assert!(res.run_for(MachineShape { nodes: 4, ppn: 1 }).is_some());
        assert!(res.run_for(MachineShape { nodes: 64, ppn: 2 }).is_none());
    }
}
