//! Global-clock measurement helpers.
//!
//! The simulator's virtual clock is *perfectly* synchronised across ranks —
//! the ideal that MPIBench's hardware clock synchronisation approximates.
//! To study what clock-synchronisation error does to measured distributions
//! (the Abl-clock ablation), [`ClockModel`] can inject a fixed per-rank
//! offset, drawn uniformly from ±`max_offset`, into every timestamp a rank
//! reads — exactly the error structure of an imperfectly synchronised
//! distributed clock.

use pevpm_netsim::Time;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Per-rank clock-reading model.
#[derive(Debug, Clone)]
pub struct ClockModel {
    offsets: Vec<f64>,
}

impl ClockModel {
    /// A perfectly synchronised clock (all offsets zero).
    pub fn perfect(nranks: usize) -> Self {
        ClockModel {
            offsets: vec![0.0; nranks],
        }
    }

    /// A clock with a fixed per-rank offset drawn uniformly from
    /// `[-max_offset_secs, +max_offset_secs]`.
    pub fn skewed(nranks: usize, max_offset_secs: f64, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        ClockModel {
            offsets: (0..nranks)
                .map(|_| rng.gen_range(-max_offset_secs..=max_offset_secs))
                .collect(),
        }
    }

    /// Timestamp `t` as read by `rank` (seconds).
    pub fn read(&self, rank: usize, t: Time) -> f64 {
        t.as_secs_f64() + self.offsets[rank]
    }

    /// The injected offset of `rank`, in seconds.
    pub fn offset(&self, rank: usize) -> f64 {
        self.offsets[rank]
    }

    /// Worst-case pairwise clock disagreement, in seconds.
    pub fn max_skew(&self) -> f64 {
        let max = self
            .offsets
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let min = self.offsets.iter().cloned().fold(f64::INFINITY, f64::min);
        (max - min).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_reads_true_time() {
        let c = ClockModel::perfect(4);
        assert_eq!(c.read(2, Time::from_secs_f64(1.5)), 1.5);
        assert_eq!(c.max_skew(), 0.0);
    }

    #[test]
    fn skewed_clock_bounds_offsets() {
        let c = ClockModel::skewed(16, 1e-4, 7);
        for r in 0..16 {
            assert!(c.offset(r).abs() <= 1e-4);
        }
        assert!(c.max_skew() > 0.0);
        assert!(c.max_skew() <= 2e-4);
    }

    #[test]
    fn skew_is_deterministic_per_seed() {
        let a = ClockModel::skewed(8, 1e-3, 42);
        let b = ClockModel::skewed(8, 1e-3, 42);
        for r in 0..8 {
            assert_eq!(a.offset(r), b.offset(r));
        }
    }
}
