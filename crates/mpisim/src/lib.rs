//! A simulated MPI library over the packet-level cluster simulator.
//!
//! This crate stands in for MPICH 1.2.0 on the paper's Perseus cluster:
//! rank programs are ordinary Rust closures executed by coroutine-scheduled
//! threads in exact virtual-time order, with an eager/rendezvous
//! point-to-point protocol and MPICH-style collective algorithms whose
//! network traffic flows through [`pevpm_netsim`]. The result is
//! deterministic per seed and exposes the globally synchronised virtual
//! clock that MPIBench relies on.
//!
//! # Quick start
//!
//! ```
//! use pevpm_mpisim::{World, WorldConfig};
//!
//! let cfg = WorldConfig::ideal(2, 1); // 2 nodes × 1 process
//! let report = World::run(cfg, |rank| {
//!     if rank.rank() == 0 {
//!         rank.send(1, 7, &b"hello"[..]);
//!     } else {
//!         let (meta, payload) = rank.recv(0, 7);
//!         assert_eq!(&payload[..], b"hello");
//!         assert_eq!(meta.src, 0);
//!     }
//! })
//! .unwrap();
//! assert!(report.virtual_time > pevpm_netsim::Time::ZERO);
//! ```

pub mod collectives;
pub mod config;
pub mod msg;
pub mod rank;
pub mod sched;
pub mod trace;

pub use collectives::ReduceOp;
pub use config::{Placement, ProtocolConfig, WorldConfig};
pub use msg::{MsgMeta, Request, SrcSel, TagSel, COLLECTIVE_TAG_BASE};
pub use rank::{decode_f64s, encode_f64s, Rank};
pub use sched::{RunReport, SimError, World};
pub use trace::{breakdown, fault_marks, RankBreakdown, TraceEvent, TraceKind};

// Payload buffer type used by the rank API, re-exported so dependants do
// not need a direct `bytes` dependency.
pub use bytes::Bytes;

// Re-export the substrate types callers need for configuration.
pub use pevpm_netsim::{ClusterConfig, Dur, FaultEvent, FaultKind, FaultPlan, Time};
