//! The per-process MPI handle available inside rank programs.
//!
//! A [`Rank`] is handed to the user closure by [`crate::World::run`]. Its
//! methods mirror the MPI point-to-point interface (`send`/`isend`/`recv`/
//! `irecv`/`wait`/`test`) plus virtual-clock access ([`Rank::now`],
//! [`Rank::compute`]). Collective operations live in
//! [`crate::collectives`] as further methods on this type.
//!
//! Every method is a *syscall*: it suspends the calling OS thread until the
//! scheduler decides the operation's completion time, so virtual time flows
//! correctly no matter what real-time interleaving the OS picks.

use crate::msg::{Call, MsgMeta, Reply, Request, SimAborted, SrcSel, TagSel};
use crate::trace::{TraceEvent, TraceKind};
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use pevpm_netsim::{Dur, Time};

/// Handle to one simulated MPI process.
pub struct Rank {
    id: usize,
    nranks: usize,
    node: usize,
    clock: Time,
    call_tx: Sender<Call>,
    reply_rx: Receiver<Reply>,
    tracing: bool,
    trace: Vec<TraceEvent>,
    coll_depth: u32,
}

impl Rank {
    pub(crate) fn new(
        id: usize,
        nranks: usize,
        node: usize,
        call_tx: Sender<Call>,
        reply_rx: Receiver<Reply>,
        tracing: bool,
    ) -> Self {
        Rank {
            id,
            nranks,
            node,
            clock: Time::ZERO,
            call_tx,
            reply_rx,
            tracing,
            trace: Vec::new(),
            coll_depth: 0,
        }
    }

    pub(crate) fn send_finish(&mut self) {
        let trace = std::mem::take(&mut self.trace);
        let _ = self.call_tx.send(Call::Finish(trace));
    }

    pub(crate) fn enter_collective(&mut self) {
        self.coll_depth += 1;
    }

    pub(crate) fn exit_collective(&mut self) {
        self.coll_depth -= 1;
    }

    fn record(&mut self, kind: TraceKind, start: Time, peer: Option<usize>, bytes: u64) {
        if self.tracing {
            self.trace.push(TraceEvent {
                kind,
                start,
                end: self.clock,
                peer,
                bytes,
                in_collective: self.coll_depth > 0,
            });
        }
    }

    pub(crate) fn send_aborted(&self, message: String) {
        let _ = self.call_tx.send(Call::Aborted(message));
    }

    fn roundtrip(&mut self, call: Call) -> Reply {
        if self.call_tx.send(call).is_err() {
            std::panic::panic_any(SimAborted);
        }
        match self.reply_rx.recv() {
            Ok(Reply::Poison) | Err(_) => std::panic::panic_any(SimAborted),
            Ok(reply) => reply,
        }
    }

    /// This process's rank (0-based).
    pub fn rank(&self) -> usize {
        self.id
    }

    /// Total number of ranks in the world (MPI_Comm_size).
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The physical node hosting this rank.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Current virtual time on the globally synchronised clock.
    ///
    /// This is the capability MPIBench needs: every rank reads the *same*
    /// timebase, so `t_recv_end − t_send_start` across two different ranks
    /// is a meaningful single-message transfer time.
    pub fn now(&self) -> Time {
        self.clock
    }

    /// Advance this rank's clock by a computation time (models a serial
    /// code segment of known duration).
    pub fn compute(&mut self, d: Dur) {
        let start = self.clock;
        match self.roundtrip(Call::Compute(d)) {
            Reply::Ok { clock } => self.clock = clock,
            r => unreachable!("unexpected reply to Compute: {r:?}"),
        }
        self.record(TraceKind::Compute, start, None, 0);
    }

    /// [`Rank::compute`] taking seconds.
    pub fn compute_secs(&mut self, secs: f64) {
        self.compute(Dur::from_secs_f64(secs));
    }

    /// Blocking standard-mode send of a real payload.
    pub fn send(&mut self, dst: usize, tag: u64, payload: impl Into<Bytes>) {
        let payload = payload.into();
        let bytes = payload.len() as u64;
        self.send_inner(dst, tag, bytes, payload);
    }

    /// Blocking send of a synthetic `bytes`-sized message with no payload
    /// (benchmark use: exercises the full protocol and network without
    /// materialising buffers).
    pub fn send_size(&mut self, dst: usize, tag: u64, bytes: u64) {
        self.send_inner(dst, tag, bytes, Bytes::new());
    }

    fn send_inner(&mut self, dst: usize, tag: u64, bytes: u64, payload: Bytes) {
        assert!(dst < self.nranks, "send to out-of-range rank {dst}");
        let start = self.clock;
        match self.roundtrip(Call::Send {
            dst,
            tag,
            bytes,
            payload,
        }) {
            Reply::Ok { clock } => self.clock = clock,
            r => unreachable!("unexpected reply to Send: {r:?}"),
        }
        self.record(TraceKind::Send, start, Some(dst), bytes);
    }

    /// Nonblocking send of a real payload.
    pub fn isend(&mut self, dst: usize, tag: u64, payload: impl Into<Bytes>) -> Request {
        let payload = payload.into();
        let bytes = payload.len() as u64;
        self.isend_inner(dst, tag, bytes, payload)
    }

    /// Nonblocking synthetic-size send.
    pub fn isend_size(&mut self, dst: usize, tag: u64, bytes: u64) -> Request {
        self.isend_inner(dst, tag, bytes, Bytes::new())
    }

    fn isend_inner(&mut self, dst: usize, tag: u64, bytes: u64, payload: Bytes) -> Request {
        assert!(dst < self.nranks, "isend to out-of-range rank {dst}");
        let start = self.clock;
        let req = match self.roundtrip(Call::Isend {
            dst,
            tag,
            bytes,
            payload,
        }) {
            Reply::Posted { clock, req } => {
                self.clock = clock;
                req
            }
            r => unreachable!("unexpected reply to Isend: {r:?}"),
        };
        self.record(TraceKind::Isend, start, Some(dst), bytes);
        req
    }

    /// Blocking receive. `src`/`tag` accept concrete values or the
    /// wildcards [`SrcSel::Any`] / [`TagSel::Any`].
    pub fn recv(&mut self, src: impl Into<SrcSel>, tag: impl Into<TagSel>) -> (MsgMeta, Bytes) {
        let start = self.clock;
        let (meta, payload) = match self.roundtrip(Call::Recv {
            src: src.into(),
            tag: tag.into(),
        }) {
            Reply::Msg {
                clock,
                meta,
                payload,
            } => {
                self.clock = clock;
                (meta, payload)
            }
            r => unreachable!("unexpected reply to Recv: {r:?}"),
        };
        self.record(TraceKind::Recv, start, Some(meta.src), meta.bytes);
        (meta, payload)
    }

    /// Nonblocking receive.
    pub fn irecv(&mut self, src: impl Into<SrcSel>, tag: impl Into<TagSel>) -> Request {
        match self.roundtrip(Call::Irecv {
            src: src.into(),
            tag: tag.into(),
        }) {
            Reply::Posted { clock, req } => {
                self.clock = clock;
                req
            }
            r => unreachable!("unexpected reply to Irecv: {r:?}"),
        }
    }

    /// Block until a request completes. Returns the message for receive
    /// requests, `None` for send requests.
    pub fn wait(&mut self, req: Request) -> Option<(MsgMeta, Bytes)> {
        let start = self.clock;
        let out = match self.roundtrip(Call::Wait { req }) {
            Reply::Ok { clock } => {
                self.clock = clock;
                None
            }
            Reply::Msg {
                clock,
                meta,
                payload,
            } => {
                self.clock = clock;
                Some((meta, payload))
            }
            r => unreachable!("unexpected reply to Wait: {r:?}"),
        };
        let peer = out.as_ref().map(|(m, _)| m.src);
        let bytes = out.as_ref().map(|(m, _)| m.bytes).unwrap_or(0);
        self.record(TraceKind::Wait, start, peer, bytes);
        out
    }

    /// Wait for every request in order.
    pub fn waitall(
        &mut self,
        reqs: impl IntoIterator<Item = Request>,
    ) -> Vec<Option<(MsgMeta, Bytes)>> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }

    /// Nonblocking completion test. `Some(None)` = send request completed;
    /// `Some(Some(msg))` = receive completed; `None` = still pending.
    pub fn test(&mut self, req: Request) -> Option<Option<(MsgMeta, Bytes)>> {
        match self.roundtrip(Call::Test { req }) {
            Reply::TestResult { clock, done } => {
                self.clock = clock;
                done
            }
            r => unreachable!("unexpected reply to Test: {r:?}"),
        }
    }

    /// Combined send + receive (MPI_Sendrecv): posts the send without
    /// blocking, completes the receive, then waits out the send. Safe
    /// against the head-to-head exchange deadlock that two opposing
    /// blocking rendezvous sends would produce.
    pub fn sendrecv(
        &mut self,
        dst: usize,
        send_tag: u64,
        payload: impl Into<Bytes>,
        src: impl Into<SrcSel>,
        recv_tag: impl Into<TagSel>,
    ) -> (MsgMeta, Bytes) {
        let req = self.isend(dst, send_tag, payload);
        let msg = self.recv(src, recv_tag);
        self.wait(req);
        msg
    }

    /// [`Rank::sendrecv`] with a synthetic send size.
    pub fn sendrecv_size(
        &mut self,
        dst: usize,
        send_tag: u64,
        bytes: u64,
        src: impl Into<SrcSel>,
        recv_tag: impl Into<TagSel>,
    ) -> (MsgMeta, Bytes) {
        let req = self.isend_size(dst, send_tag, bytes);
        let msg = self.recv(src, recv_tag);
        self.wait(req);
        msg
    }

    /// Send a slice of `f64`s (little-endian encoded).
    pub fn send_f64s(&mut self, dst: usize, tag: u64, data: &[f64]) {
        self.send(dst, tag, encode_f64s(data));
    }

    /// Nonblocking variant of [`Rank::send_f64s`].
    pub fn isend_f64s(&mut self, dst: usize, tag: u64, data: &[f64]) -> Request {
        self.isend(dst, tag, encode_f64s(data))
    }

    /// Receive a slice of `f64`s sent by [`Rank::send_f64s`].
    pub fn recv_f64s(
        &mut self,
        src: impl Into<SrcSel>,
        tag: impl Into<TagSel>,
    ) -> (MsgMeta, Vec<f64>) {
        let (meta, payload) = self.recv(src, tag);
        (meta, decode_f64s(&payload))
    }
}

/// Encode a `f64` slice as little-endian bytes.
pub fn encode_f64s(data: &[f64]) -> Bytes {
    let mut buf = Vec::with_capacity(data.len() * 8);
    for x in data {
        buf.extend_from_slice(&x.to_le_bytes());
    }
    Bytes::from(buf)
}

/// Decode bytes produced by [`encode_f64s`].
pub fn decode_f64s(b: &[u8]) -> Vec<f64> {
    assert!(
        b.len().is_multiple_of(8),
        "payload is not a whole number of f64s"
    );
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_codec_roundtrip() {
        let xs = [0.0, -1.5, std::f64::consts::PI, f64::MAX];
        let enc = encode_f64s(&xs);
        assert_eq!(enc.len(), 32);
        assert_eq!(decode_f64s(&enc), xs);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn decode_rejects_ragged_payloads() {
        decode_f64s(&[1, 2, 3]);
    }
}
