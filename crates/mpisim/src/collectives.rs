//! Collective operations, implemented with the same algorithms MPICH 1.2
//! used, on top of the point-to-point layer — so their cost structure
//! (trees, rings, pairwise exchanges) and network footprint are emergent,
//! exactly as on the paper's cluster.
//!
//! Tag space: every collective type owns a distinct tag above
//! [`COLLECTIVE_TAG_BASE`]; correctness across back-to-back collectives of
//! the same type follows from MPI's per-pair FIFO matching.

use crate::msg::{MsgMeta, COLLECTIVE_TAG_BASE};
use crate::rank::{decode_f64s, encode_f64s, Rank};
use bytes::Bytes;

const TAG_BARRIER: u64 = COLLECTIVE_TAG_BASE;
const TAG_BCAST: u64 = COLLECTIVE_TAG_BASE + 1;
const TAG_REDUCE: u64 = COLLECTIVE_TAG_BASE + 2;
const TAG_GATHER: u64 = COLLECTIVE_TAG_BASE + 3;
const TAG_SCATTER: u64 = COLLECTIVE_TAG_BASE + 4;
const TAG_ALLGATHER: u64 = COLLECTIVE_TAG_BASE + 5;
const TAG_ALLTOALL: u64 = COLLECTIVE_TAG_BASE + 6;

/// Reduction operators for [`Rank::reduce_f64s`] / [`Rank::allreduce_f64s`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
}

impl ReduceOp {
    fn combine(self, acc: &mut [f64], other: &[f64]) {
        assert_eq!(acc.len(), other.len(), "reduce buffers differ in length");
        for (a, b) in acc.iter_mut().zip(other) {
            *a = match self {
                ReduceOp::Sum => *a + *b,
                ReduceOp::Min => a.min(*b),
                ReduceOp::Max => a.max(*b),
            };
        }
    }
}

/// Public collective entry points: each wraps its implementation so that
/// the point-to-point operations issued inside are marked
/// `in_collective` in recorded traces.
impl Rank {
    /// Dissemination barrier: ⌈log₂ n⌉ rounds of pairwise notifications.
    pub fn barrier(&mut self) {
        self.enter_collective();
        self.barrier_impl();
        self.exit_collective();
    }

    /// Binomial-tree broadcast of a real payload from `root`. Every rank
    /// returns the payload.
    pub fn bcast(&mut self, root: usize, payload: Option<Bytes>) -> Bytes {
        self.enter_collective();
        let out = self.bcast_impl(root, payload);
        self.exit_collective();
        out
    }

    /// Broadcast of a synthetic `bytes`-sized message (benchmark use).
    pub fn bcast_size(&mut self, root: usize, bytes: u64) {
        self.enter_collective();
        self.bcast_size_impl(root, bytes);
        self.exit_collective();
    }

    /// Binomial-tree reduction of `f64` vectors to `root`. Returns the
    /// reduced vector at the root, `None` elsewhere.
    pub fn reduce_f64s(&mut self, root: usize, data: &[f64], op: ReduceOp) -> Option<Vec<f64>> {
        self.enter_collective();
        let out = self.reduce_f64s_impl(root, data, op);
        self.exit_collective();
        out
    }

    /// Allreduce = reduce-to-0 + broadcast (the MPICH 1.2 composition).
    pub fn allreduce_f64s(&mut self, data: &[f64], op: ReduceOp) -> Vec<f64> {
        self.enter_collective();
        let out = self.allreduce_f64s_impl(data, op);
        self.exit_collective();
        out
    }

    /// Linear gather of per-rank payloads to `root`; returns the payloads
    /// in rank order at the root, `None` elsewhere.
    pub fn gather(&mut self, root: usize, payload: Bytes) -> Option<Vec<Bytes>> {
        self.enter_collective();
        let out = self.gather_impl(root, payload);
        self.exit_collective();
        out
    }

    /// Linear scatter of per-rank payloads from `root`; returns this
    /// rank's chunk.
    pub fn scatter(&mut self, root: usize, chunks: Option<Vec<Bytes>>) -> Bytes {
        self.enter_collective();
        let out = self.scatter_impl(root, chunks);
        self.exit_collective();
        out
    }

    /// Ring allgather: n−1 steps, each rank forwarding the newest block to
    /// its right neighbour. Returns all ranks' payloads in rank order.
    pub fn allgather(&mut self, payload: Bytes) -> Vec<Bytes> {
        self.enter_collective();
        let out = self.allgather_impl(payload);
        self.exit_collective();
        out
    }

    /// Pairwise-exchange all-to-all of synthetic `bytes`-per-peer messages.
    pub fn alltoall_size(&mut self, bytes: u64) {
        self.enter_collective();
        self.alltoall_size_impl(bytes);
        self.exit_collective();
    }

    /// Pairwise-exchange all-to-all with real payloads (one per peer, in
    /// rank order). Returns the payloads received, indexed by source rank.
    pub fn alltoall(&mut self, chunks: Vec<Bytes>) -> Vec<Bytes> {
        self.enter_collective();
        let out = self.alltoall_impl(chunks);
        self.exit_collective();
        out
    }
}

impl Rank {
    /// Dissemination barrier: ⌈log₂ n⌉ rounds of pairwise notifications.
    fn barrier_impl(&mut self) {
        let n = self.nranks();
        let r = self.rank();
        if n == 1 {
            return;
        }
        let mut k = 1usize;
        while k < n {
            let dst = (r + k) % n;
            let src = (r + n - k % n) % n;
            let sreq = self.isend_size(dst, TAG_BARRIER, 0);
            let _ = self.recv(src, TAG_BARRIER);
            self.wait(sreq);
            k <<= 1;
        }
    }

    /// Binomial-tree broadcast of a real payload from `root`. Every rank
    /// returns the payload.
    fn bcast_impl(&mut self, root: usize, payload: Option<Bytes>) -> Bytes {
        let n = self.nranks();
        let r = self.rank();
        let mut data = if r == root {
            payload.expect("root must supply the broadcast payload")
        } else {
            Bytes::new()
        };
        if n == 1 {
            return data;
        }
        let vr = (r + n - root % n) % n;
        // Receive phase: find the subtree parent.
        let mut mask = 1usize;
        while mask < n {
            if vr & mask != 0 {
                let src = (vr - mask + root) % n;
                let (_, p) = self.recv(src, TAG_BCAST);
                data = p;
                break;
            }
            mask <<= 1;
        }
        // Send phase: fan out to children.
        mask >>= 1;
        while mask > 0 {
            if vr + mask < n {
                let dst = (vr + mask + root) % n;
                self.send(dst, TAG_BCAST, data.clone());
            }
            mask >>= 1;
        }
        data
    }

    /// Broadcast of a synthetic `bytes`-sized message (benchmark use).
    fn bcast_size_impl(&mut self, root: usize, bytes: u64) {
        let n = self.nranks();
        let r = self.rank();
        if n == 1 {
            return;
        }
        let vr = (r + n - root % n) % n;
        let mut mask = 1usize;
        while mask < n {
            if vr & mask != 0 {
                let src = (vr - mask + root) % n;
                let _ = self.recv(src, TAG_BCAST);
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if vr + mask < n {
                let dst = (vr + mask + root) % n;
                self.send_size(dst, TAG_BCAST, bytes);
            }
            mask >>= 1;
        }
    }

    /// Binomial-tree reduction of `f64` vectors to `root`. Returns the
    /// reduced vector at the root, `None` elsewhere.
    fn reduce_f64s_impl(&mut self, root: usize, data: &[f64], op: ReduceOp) -> Option<Vec<f64>> {
        let n = self.nranks();
        let r = self.rank();
        let mut acc = data.to_vec();
        if n == 1 {
            return Some(acc);
        }
        let vr = (r + n - root % n) % n;
        let mut mask = 1usize;
        while mask < n {
            if vr & mask == 0 {
                let peer = vr | mask;
                if peer < n {
                    let src = (peer + root) % n;
                    let (_, p) = self.recv(src, TAG_REDUCE);
                    op.combine(&mut acc, &decode_f64s(&p));
                }
            } else {
                let dst = (vr - mask + root) % n;
                self.send(dst, TAG_REDUCE, encode_f64s(&acc));
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Allreduce = reduce-to-0 + broadcast (the MPICH 1.2 composition).
    fn allreduce_f64s_impl(&mut self, data: &[f64], op: ReduceOp) -> Vec<f64> {
        let reduced = self.reduce_f64s_impl(0, data, op);
        let payload = reduced.map(|v| encode_f64s(&v));
        let out = self.bcast_impl(0, payload);
        decode_f64s(&out)
    }

    /// Linear gather of per-rank payloads to `root`; returns the payloads
    /// in rank order at the root, `None` elsewhere.
    fn gather_impl(&mut self, root: usize, payload: Bytes) -> Option<Vec<Bytes>> {
        let n = self.nranks();
        let r = self.rank();
        if r == root {
            let mut out: Vec<Bytes> = vec![Bytes::new(); n];
            out[root] = payload;
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    let (_, p) = self.recv(src, TAG_GATHER);
                    *slot = p;
                }
            }
            Some(out)
        } else {
            self.send(root, TAG_GATHER, payload);
            None
        }
    }

    /// Linear scatter of per-rank payloads from `root`; returns this
    /// rank's chunk.
    fn scatter_impl(&mut self, root: usize, chunks: Option<Vec<Bytes>>) -> Bytes {
        let n = self.nranks();
        let r = self.rank();
        if r == root {
            let chunks = chunks.expect("root must supply scatter chunks");
            assert_eq!(chunks.len(), n, "scatter needs one chunk per rank");
            let mut reqs = Vec::new();
            for (dst, chunk) in chunks.iter().enumerate() {
                if dst != root {
                    reqs.push(self.isend(dst, TAG_SCATTER, chunk.clone()));
                }
            }
            let mine = chunks[root].clone();
            self.waitall(reqs);
            mine
        } else {
            let (_, p) = self.recv(root, TAG_SCATTER);
            p
        }
    }

    /// Ring allgather: n−1 steps, each rank forwarding the newest block to
    /// its right neighbour. Returns all ranks' payloads in rank order.
    fn allgather_impl(&mut self, payload: Bytes) -> Vec<Bytes> {
        let n = self.nranks();
        let r = self.rank();
        let mut out: Vec<Bytes> = vec![Bytes::new(); n];
        out[r] = payload;
        if n == 1 {
            return out;
        }
        let right = (r + 1) % n;
        let left = (r + n - 1) % n;
        let mut have = r; // index of the newest block we hold
        for _ in 0..n - 1 {
            let sreq = self.isend(right, TAG_ALLGATHER, out[have].clone());
            let (_, p) = self.recv(left, TAG_ALLGATHER);
            have = (have + n - 1) % n;
            out[have] = p;
            self.wait(sreq);
        }
        out
    }

    /// Pairwise-exchange all-to-all of synthetic `bytes`-per-peer messages.
    fn alltoall_size_impl(&mut self, bytes: u64) {
        let n = self.nranks();
        let r = self.rank();
        for step in 1..n {
            let dst = (r + step) % n;
            let src = (r + n - step) % n;
            let sreq = self.isend_size(dst, TAG_ALLTOALL, bytes);
            let _ = self.recv(src, TAG_ALLTOALL);
            self.wait(sreq);
        }
    }

    /// Pairwise-exchange all-to-all with real payloads (one per peer, in
    /// rank order). Returns the payloads received, indexed by source rank.
    fn alltoall_impl(&mut self, chunks: Vec<Bytes>) -> Vec<Bytes> {
        let n = self.nranks();
        let r = self.rank();
        assert_eq!(chunks.len(), n, "alltoall needs one chunk per rank");
        let mut out: Vec<Bytes> = vec![Bytes::new(); n];
        out[r] = chunks[r].clone();
        for step in 1..n {
            let dst = (r + step) % n;
            let src = (r + n - step) % n;
            let sreq = self.isend(dst, TAG_ALLTOALL, chunks[dst].clone());
            let (meta, p): (MsgMeta, Bytes) = self.recv(src, TAG_ALLTOALL);
            debug_assert_eq!(meta.src, src);
            out[src] = p;
            self.wait(sreq);
        }
        out
    }
}
