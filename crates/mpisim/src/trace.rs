//! Execution tracing: per-rank event timelines of measured runs.
//!
//! When enabled (`WorldConfig::record_trace`), every MPI call a rank makes
//! is recorded with its virtual start/end times. The resulting timelines
//! are the *measured* counterpart of PEVPM's per-directive loss
//! attribution (§5): they decompose a run into computation, send overhead
//! and blocked-waiting time, so predicted and measured loss breakdowns can
//! be compared — and they make "where does the time go?" questions
//! answerable for any rank program.

use pevpm_netsim::{FaultEvent, Time};
use pevpm_obs::chrome::{ChromeTrace, Span, PID_MEASURED};

/// Conventional pid for injected-fault marks (one thread row per node).
pub const PID_FAULTS: u32 = 3;

/// What kind of operation an event covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// `compute` / `compute_secs`.
    Compute,
    /// Blocking send (includes rendezvous blocking time).
    Send,
    /// Nonblocking send post.
    Isend,
    /// Blocking receive.
    Recv,
    /// Nonblocking receive post.
    Irecv,
    /// `wait` on a request.
    Wait,
}

/// One traced operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Operation kind.
    pub kind: TraceKind,
    /// Virtual time the call was made.
    pub start: Time,
    /// Virtual time the call returned.
    pub end: Time,
    /// Peer rank for point-to-point operations.
    pub peer: Option<usize>,
    /// Message size in bytes (0 for compute/wait).
    pub bytes: u64,
    /// True if the call was issued from inside a collective algorithm.
    pub in_collective: bool,
}

impl TraceEvent {
    /// Event duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end.since(self.start).as_secs_f64()
    }
}

/// Aggregated per-rank breakdown of a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankBreakdown {
    /// Seconds spent in `compute`.
    pub compute: f64,
    /// Seconds spent in blocking sends + nonblocking send posts.
    pub send: f64,
    /// Seconds blocked in receives and waits.
    pub blocked: f64,
    /// Seconds inside collective operations (subset of the above).
    pub collective: f64,
    /// Number of point-to-point messages initiated.
    pub messages: u64,
}

impl RankBreakdown {
    /// Total accounted time.
    pub fn total(&self) -> f64 {
        self.compute + self.send + self.blocked
    }

    /// Fraction of accounted time spent communicating (send + blocked).
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total();
        if t <= 0.0 {
            0.0
        } else {
            (self.send + self.blocked) / t
        }
    }
}

/// Compute per-rank breakdowns from raw traces.
pub fn breakdown(traces: &[Vec<TraceEvent>]) -> Vec<RankBreakdown> {
    traces
        .iter()
        .map(|events| {
            let mut b = RankBreakdown::default();
            for e in events {
                let d = e.duration();
                match e.kind {
                    TraceKind::Compute => b.compute += d,
                    TraceKind::Send | TraceKind::Isend => {
                        b.send += d;
                        b.messages += 1;
                    }
                    TraceKind::Recv | TraceKind::Irecv | TraceKind::Wait => b.blocked += d,
                }
                if e.in_collective {
                    b.collective += d;
                }
            }
            b
        })
        .collect()
}

impl TraceKind {
    /// Lower-case operation name (Chrome-trace slice name / category).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Compute => "compute",
            TraceKind::Send => "send",
            TraceKind::Isend => "isend",
            TraceKind::Recv => "recv",
            TraceKind::Irecv => "irecv",
            TraceKind::Wait => "wait",
        }
    }
}

/// Convert measured per-rank timelines into a Chrome `trace_event` trace,
/// under the workspace convention **pid 2 = "mpisim measured"** with one
/// thread row per rank. Merge with
/// `pevpm::trace_export::chrome_trace` output to view predicted and
/// measured timelines side by side in `chrome://tracing` / Perfetto.
pub fn chrome_trace(traces: &[Vec<TraceEvent>]) -> ChromeTrace {
    let mut trace = ChromeTrace::new();
    trace.name_process(PID_MEASURED, "mpisim measured");
    for (r, events) in traces.iter().enumerate() {
        trace.name_thread(PID_MEASURED, r as u32, &format!("rank {r}"));
        for e in events {
            let name = e.kind.name();
            let mut args = Vec::new();
            if let Some(p) = e.peer {
                args.push(("peer".to_string(), p.to_string()));
            }
            if e.bytes > 0 {
                args.push(("bytes".to_string(), e.bytes.to_string()));
            }
            trace.push(Span {
                pid: PID_MEASURED,
                tid: r as u32,
                name: if e.in_collective {
                    format!("{name} [coll]")
                } else {
                    name.to_string()
                },
                cat: name.to_string(),
                ts_us: e.start.as_secs_f64() * 1e6,
                dur_us: e.duration() * 1e6,
                args,
            });
        }
    }
    trace
}

/// Convert injected-fault occurrences into Chrome-trace marks under
/// **pid 3 = "fault injection"**, one thread row per affected node.
/// Merged alongside the predicted (pid 1) and measured (pid 2) timelines,
/// the marks show *when* the machine was being degraded — e.g. which
/// blocked-receive spans line up with a link-flap window.
pub fn fault_marks(events: &[FaultEvent]) -> ChromeTrace {
    let mut trace = ChromeTrace::new();
    if events.is_empty() {
        return trace;
    }
    trace.name_process(PID_FAULTS, "fault injection");
    let mut named: Vec<usize> = events.iter().map(|e| e.node).collect();
    named.sort_unstable();
    named.dedup();
    for n in named {
        trace.name_thread(PID_FAULTS, n as u32, &format!("node {n}"));
    }
    for e in events {
        trace.push(Span {
            pid: PID_FAULTS,
            tid: e.node as u32,
            name: e.kind.name().to_string(),
            cat: "fault".to_string(),
            ts_us: e.at.as_secs_f64() * 1e6,
            dur_us: 0.0,
            args: Vec::new(),
        });
    }
    trace
}

/// Render a compact ASCII timeline of the first `max_events` events of
/// each rank (debugging aid).
pub fn render_timeline(traces: &[Vec<TraceEvent>], max_events: usize) -> String {
    let mut out = String::new();
    for (r, events) in traces.iter().enumerate() {
        out.push_str(&format!("rank {r}:\n"));
        for e in events.iter().take(max_events) {
            let glyph = match e.kind {
                TraceKind::Compute => "====",
                TraceKind::Send => "send",
                TraceKind::Isend => "isnd",
                TraceKind::Recv => "recv",
                TraceKind::Irecv => "ircv",
                TraceKind::Wait => "wait",
            };
            out.push_str(&format!(
                "  {:>12} .. {:>12}  {glyph}{}{}{}\n",
                format!("{}", e.start),
                format!("{}", e.end),
                e.peer.map(|p| format!(" peer {p}")).unwrap_or_default(),
                if e.bytes > 0 {
                    format!(" {} B", e.bytes)
                } else {
                    String::new()
                },
                if e.in_collective { " [coll]" } else { "" },
            ));
        }
        if events.len() > max_events {
            out.push_str(&format!("  … {} more events\n", events.len() - max_events));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: TraceKind, start: u64, end: u64, coll: bool) -> TraceEvent {
        TraceEvent {
            kind,
            start: Time(start),
            end: Time(end),
            peer: Some(1),
            bytes: 8,
            in_collective: coll,
        }
    }

    #[test]
    fn breakdown_sums_by_kind() {
        let traces = vec![vec![
            ev(TraceKind::Compute, 0, 1_000_000_000, false),
            ev(TraceKind::Send, 1_000_000_000, 1_100_000_000, false),
            ev(TraceKind::Recv, 1_100_000_000, 1_600_000_000, false),
            ev(TraceKind::Wait, 1_600_000_000, 1_700_000_000, true),
        ]];
        let b = breakdown(&traces);
        assert!((b[0].compute - 1.0).abs() < 1e-12);
        assert!((b[0].send - 0.1).abs() < 1e-12);
        assert!((b[0].blocked - 0.6).abs() < 1e-12);
        assert!((b[0].collective - 0.1).abs() < 1e-12);
        assert_eq!(b[0].messages, 1);
        assert!((b[0].comm_fraction() - 0.7 / 1.7).abs() < 1e-12);
    }

    #[test]
    fn timeline_renders_and_truncates() {
        let traces = vec![vec![ev(TraceKind::Recv, 0, 500, false); 5]];
        let text = render_timeline(&traces, 3);
        assert!(text.contains("rank 0"));
        assert!(text.contains("… 2 more events"));
        assert_eq!(text.matches("recv").count(), 3);
    }

    #[test]
    fn fault_marks_render_one_row_per_node() {
        use pevpm_netsim::{FaultKind, Time as NTime};
        let events = vec![
            FaultEvent {
                at: NTime(1_000_000),
                node: 2,
                kind: FaultKind::InjectedLoss,
            },
            FaultEvent {
                at: NTime(2_000_000),
                node: 2,
                kind: FaultKind::FlapDrop,
            },
            FaultEvent {
                at: NTime(0),
                node: 0,
                kind: FaultKind::BackgroundStart,
            },
        ];
        let t = fault_marks(&events);
        assert_eq!(t.len(), 3);
        let js = t.to_json();
        assert_eq!(pevpm_obs::chrome::validate(&js), Ok(3));
        assert!(js.contains("fault injection"));
        assert!(js.contains("injected_loss"));
        assert!(js.contains("node 2"));
        assert!(fault_marks(&[]).is_empty(), "no plan, no marks");
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = breakdown(&[vec![]]);
        assert_eq!(b[0], RankBreakdown::default());
        assert_eq!(b[0].comm_fraction(), 0.0);
    }

    #[test]
    fn chrome_export_is_schema_valid_and_carries_metadata() {
        let traces = vec![
            vec![
                ev(TraceKind::Compute, 0, 1_000_000, false),
                ev(TraceKind::Send, 1_000_000, 1_500_000, false),
            ],
            vec![ev(TraceKind::Recv, 0, 1_500_000, true)],
        ];
        let trace = chrome_trace(&traces);
        assert_eq!(trace.len(), 3);
        let js = trace.to_json();
        assert_eq!(pevpm_obs::chrome::validate(&js), Ok(3));
        assert!(js.contains("mpisim measured"));
        assert!(js.contains("rank 1"));
        assert!(js.contains("recv [coll]"));
        assert!(js.contains("\"peer\": \"1\""));
    }
}
