//! Configuration of a simulated MPI world.

use pevpm_netsim::{ClusterConfig, Dur};

/// How MPI ranks are laid out over physical nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Consecutive ranks share a node (MPICH default): rank r is on node
    /// `r / procs_per_node`. The paper's `n×p` notation assumes this.
    Block,
    /// Ranks cycle over nodes: rank r is on node `r % nodes`.
    RoundRobin,
}

/// MPI-library-level protocol parameters (MPICH-1.2-like).
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolConfig {
    /// Messages strictly smaller than this are sent eagerly; larger ones use
    /// the rendezvous (RTS/CTS) protocol. MPICH 1.2's 16 KB threshold is the
    /// cause of the knee in the paper's Figure 2.
    pub eager_threshold: u64,
    /// Size of RTS/CTS control messages on the wire.
    pub ctrl_bytes: u64,
    /// CPU cost of matching an envelope against the receive queue.
    pub match_cost: Dur,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            eager_threshold: 16 * 1024,
            ctrl_bytes: 64,
            match_cost: Dur::from_micros(2),
        }
    }
}

/// Complete description of a simulated MPI world.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// The physical cluster beneath the MPI library.
    pub cluster: ClusterConfig,
    /// MPI processes per node (`p` in the paper's `n×p` notation).
    pub procs_per_node: usize,
    /// Rank→node layout.
    pub placement: Placement,
    /// MPI protocol parameters.
    pub protocol: ProtocolConfig,
    /// RNG seed for the network's stochastic elements.
    pub seed: u64,
    /// Abort if virtual time exceeds this bound (guards against runaway
    /// programs in tests); `None` disables the check.
    pub virtual_deadline: Option<Dur>,
    /// Record per-rank operation timelines (see [`crate::trace`]).
    pub record_trace: bool,
}

impl WorldConfig {
    /// A Perseus-like world of `nodes × procs_per_node` ranks.
    pub fn perseus(nodes: usize, procs_per_node: usize, seed: u64) -> Self {
        WorldConfig {
            cluster: ClusterConfig::perseus(nodes),
            procs_per_node,
            placement: Placement::Block,
            protocol: ProtocolConfig::default(),
            seed,
            virtual_deadline: None,
            record_trace: false,
        }
    }

    /// An idealised (deterministic, lossless) world for unit tests.
    pub fn ideal(nodes: usize, procs_per_node: usize) -> Self {
        WorldConfig {
            cluster: ClusterConfig::ideal(nodes),
            procs_per_node,
            placement: Placement::Block,
            protocol: ProtocolConfig::default(),
            seed: 0,
            virtual_deadline: None,
            record_trace: false,
        }
    }

    /// Total number of MPI ranks.
    pub fn nranks(&self) -> usize {
        self.cluster.nodes * self.procs_per_node
    }

    /// Physical node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        match self.placement {
            Placement::Block => rank / self.procs_per_node,
            Placement::RoundRobin => rank % self.cluster.nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement_groups_consecutive_ranks() {
        let cfg = WorldConfig::perseus(4, 2, 0);
        assert_eq!(cfg.nranks(), 8);
        assert_eq!(cfg.node_of(0), 0);
        assert_eq!(cfg.node_of(1), 0);
        assert_eq!(cfg.node_of(2), 1);
        assert_eq!(cfg.node_of(7), 3);
    }

    #[test]
    fn round_robin_placement_cycles() {
        let mut cfg = WorldConfig::perseus(4, 2, 0);
        cfg.placement = Placement::RoundRobin;
        assert_eq!(cfg.node_of(0), 0);
        assert_eq!(cfg.node_of(1), 1);
        assert_eq!(cfg.node_of(4), 0);
        assert_eq!(cfg.node_of(5), 1);
    }

    #[test]
    fn default_protocol_matches_mpich() {
        let p = ProtocolConfig::default();
        assert_eq!(p.eager_threshold, 16 * 1024);
    }
}
