//! Message, request and syscall types shared between ranks and the
//! scheduler.

use bytes::Bytes;
use pevpm_netsim::{Dur, Time};

/// A message tag. High values are reserved for collectives.
pub type Tag = u64;

/// First tag reserved for internal collective algorithms; user tags must be
/// below this.
pub const COLLECTIVE_TAG_BASE: Tag = 1 << 40;

/// Wildcard accepted by receive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcSel {
    /// Match a specific source rank.
    Rank(usize),
    /// Match any source (MPI_ANY_SOURCE).
    Any,
}

impl From<usize> for SrcSel {
    fn from(r: usize) -> Self {
        SrcSel::Rank(r)
    }
}

/// Tag selector for receive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSel {
    /// Match a specific tag.
    Tag(Tag),
    /// Match any tag (MPI_ANY_TAG).
    Any,
}

impl From<Tag> for TagSel {
    fn from(t: Tag) -> Self {
        TagSel::Tag(t)
    }
}

/// Envelope information returned with every received message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgMeta {
    /// Sending rank.
    pub src: usize,
    /// Message tag.
    pub tag: Tag,
    /// Logical message size in bytes (may exceed the payload's length when
    /// the sender used `send_size`-style calls with synthetic sizes).
    pub bytes: u64,
}

/// Handle for a nonblocking operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Request(pub u64);

/// Syscalls a rank thread issues to the scheduler.
#[derive(Debug)]
pub(crate) enum Call {
    /// Advance the rank's virtual clock by a computation time.
    Compute(Dur),
    /// Blocking standard-mode send.
    Send {
        dst: usize,
        tag: Tag,
        bytes: u64,
        payload: Bytes,
    },
    /// Nonblocking send; replies with a `Request`.
    Isend {
        dst: usize,
        tag: Tag,
        bytes: u64,
        payload: Bytes,
    },
    /// Blocking receive.
    Recv { src: SrcSel, tag: TagSel },
    /// Nonblocking receive; replies with a `Request`.
    Irecv { src: SrcSel, tag: TagSel },
    /// Block until the request completes.
    Wait { req: Request },
    /// Nonblocking completion test; replies immediately.
    Test { req: Request },
    /// The rank's program returned; carries the recorded trace (empty when
    /// tracing is disabled).
    Finish(Vec<crate::trace::TraceEvent>),
    /// The rank's program panicked; the scheduler aborts the world.
    Aborted(String),
}

/// Scheduler replies to rank syscalls.
#[derive(Debug)]
pub(crate) enum Reply {
    /// Operation finished; the rank's clock is now `clock`.
    Ok { clock: Time },
    /// A nonblocking operation was posted.
    Posted { clock: Time, req: Request },
    /// A receive completed.
    Msg {
        clock: Time,
        meta: MsgMeta,
        payload: Bytes,
    },
    /// A `Test` result: `Some` if the request completed.
    TestResult {
        clock: Time,
        done: Option<Option<(MsgMeta, Bytes)>>,
    },
    /// The simulation is being torn down (deadlock or another rank's
    /// panic); the rank thread must exit.
    Poison,
}

/// Marker panic payload used to unwind a rank thread during teardown.
pub(crate) struct SimAborted;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_conversions() {
        assert_eq!(SrcSel::from(3), SrcSel::Rank(3));
        assert_eq!(TagSel::from(9u64), TagSel::Tag(9));
    }

    #[test]
    fn collective_tags_leave_user_space() {
        assert!(COLLECTIVE_TAG_BASE > u32::MAX as u64);
    }
}
