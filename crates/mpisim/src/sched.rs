//! The virtual-time scheduler and MPI message-progress engine.
//!
//! Ranks run as real OS threads, but **exactly one runs at a time**: every
//! MPI call is a syscall to this scheduler, which interleaves rank
//! execution with network events in strict virtual-time order. This yields
//! deterministic simulation (per seed) while letting applications be
//! written as ordinary Rust functions.
//!
//! The message engine implements MPICH-1.2-like semantics:
//!
//! - **eager protocol** for messages under the threshold: data is pushed
//!   into the network immediately and buffered at the receiver if no
//!   matching receive is posted yet;
//! - **rendezvous protocol** (RTS → CTS → data) above the threshold — the
//!   cause of the 16 KB knee in the paper's Figure 2;
//! - envelope matching in **per-pair send order** (TCP streams are FIFO, so
//!   a retransmission stall delays everything behind it), with
//!   MPI_ANY_SOURCE / MPI_ANY_TAG wildcards and posted/unexpected queues;
//! - intra-node messages bypass the network (shared-memory path).
//!
//! Progress is idealised: protocol transitions (e.g. sending a CTS) happen
//! at their natural virtual time even if the host rank is blocked — i.e. an
//! asynchronous progress engine, unlike real MPICH 1.2 which progressed
//! only inside MPI calls. This is the right model for PEVPM comparison and
//! is documented in DESIGN.md.

use crate::config::WorldConfig;
use crate::msg::{Call, MsgMeta, Reply, Request, SimAborted, SrcSel, Tag, TagSel};
use crate::rank::Rank;
use crate::trace::TraceEvent;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use pevpm_netsim::network::{Completion, NetStats, TransferId};
use pevpm_netsim::{Dur, FaultEvent, Network, Time};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Result of a completed simulation.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Virtual time at which the last rank finished.
    pub virtual_time: Time,
    /// Final virtual clock of every rank.
    pub clocks: Vec<Time>,
    /// Network-level statistics.
    pub net_stats: NetStats,
    /// Total point-to-point messages sent (including collectives' internal
    /// messages).
    pub messages: u64,
    /// Per-rank operation timelines; `Some` when
    /// `WorldConfig::record_trace` was set.
    pub traces: Option<Vec<Vec<TraceEvent>>>,
    /// Injected-fault occurrences from the network's fault plan, for
    /// degraded-run reports and trace marks. Empty without a plan.
    pub fault_events: Vec<FaultEvent>,
}

/// Why a simulation failed.
#[derive(Debug, Clone)]
pub enum SimError {
    /// No rank can make progress and no network event is pending.
    Deadlock {
        /// Virtual time of the deadlock.
        time: Time,
        /// The blocked ranks and the operations they are stuck in.
        blocked: Vec<(usize, String)>,
    },
    /// A rank's program panicked.
    RankPanic {
        /// Which rank panicked.
        rank: usize,
        /// The panic message.
        message: String,
    },
    /// Virtual time exceeded `WorldConfig::virtual_deadline`.
    DeadlineExceeded {
        /// The deadline that was crossed.
        time: Time,
    },
    /// A benchmark replication worker panicked (caught and surfaced
    /// rather than aborting the process).
    ReplicaPanic {
        /// Replica index, when the panic is attributable to one.
        index: Option<usize>,
        /// The panic message.
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { time, blocked } => {
                write!(f, "deadlock at {time}: ")?;
                for (i, (r, d)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "rank {r} blocked in {d}")?;
                }
                Ok(())
            }
            SimError::RankPanic { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            SimError::DeadlineExceeded { time } => {
                write!(f, "virtual deadline exceeded at {time}")
            }
            SimError::ReplicaPanic {
                index: Some(i),
                message,
            } => {
                write!(f, "replication {i} panicked: {message}")
            }
            SimError::ReplicaPanic {
                index: None,
                message,
            } => {
                write!(f, "replication worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A simulated MPI world. Construct with a [`WorldConfig`] and run a rank
/// program over it.
pub struct World;

impl World {
    /// Run `program` once per rank and simulate until every rank returns.
    ///
    /// The closure receives a [`Rank`] handle; it may capture shared state
    /// (`Arc<Mutex<..>>`) to extract results — rank syscalls are serialised
    /// by the scheduler, and collection vectors indexed per rank stay
    /// deterministic.
    pub fn run<F>(cfg: WorldConfig, program: F) -> Result<RunReport, SimError>
    where
        F: Fn(&mut Rank) + Send + Sync,
    {
        let nranks = cfg.nranks();
        assert!(nranks > 0, "world must have at least one rank");

        let mut call_rx: Vec<Receiver<Call>> = Vec::with_capacity(nranks);
        let mut reply_tx: Vec<Sender<Reply>> = Vec::with_capacity(nranks);
        let mut rank_ends: Vec<Option<(Sender<Call>, Receiver<Reply>)>> =
            Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (ctx, crx) = unbounded::<Call>();
            let (rtx, rrx) = unbounded::<Reply>();
            call_rx.push(crx);
            reply_tx.push(rtx);
            rank_ends.push(Some((ctx, rrx)));
        }

        let mut engine = Engine::new(cfg.clone(), call_rx, reply_tx);
        let program = &program;

        std::thread::scope(|s| {
            for (r, ends) in rank_ends.iter_mut().enumerate() {
                let (ctx, rrx) = ends.take().expect("rank endpoints");
                let node = cfg.node_of(r);
                let tracing = cfg.record_trace;
                s.spawn(move || {
                    let mut rank = Rank::new(r, nranks, node, ctx, rrx, tracing);
                    let outcome = catch_unwind(AssertUnwindSafe(|| program(&mut rank)));
                    match outcome {
                        Ok(()) => rank.send_finish(),
                        Err(e) => {
                            if e.downcast_ref::<SimAborted>().is_none() {
                                let msg = panic_message(&e);
                                rank.send_aborted(msg);
                            }
                            // SimAborted: scheduler is tearing down; exit.
                        }
                    }
                });
            }
            let result = engine.main_loop();
            if result.is_err() {
                engine.poison_all();
            }
            result.map(|()| engine.report())
        })
    }
}

fn panic_message(e: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

type MsgId = usize;
type ReqId = usize;

/// Where an in-flight transfer fits in the MPI protocol.
#[derive(Debug, Clone, Copy)]
enum Purpose {
    /// Eager message: envelope + data together.
    EagerData(MsgId),
    /// Rendezvous request-to-send (envelope only).
    Rts(MsgId),
    /// Rendezvous clear-to-send (receiver → sender control).
    Cts(MsgId),
    /// Rendezvous payload.
    RndvData(MsgId),
}

/// Where a matched message must be delivered.
#[derive(Debug, Clone, Copy)]
enum RecvTarget {
    /// A rank blocked in `recv`.
    Block { rank: usize, post_time: Time },
    /// A nonblocking `irecv` request.
    Req { req: ReqId, post_time: Time },
}

impl RecvTarget {
    fn post_time(&self) -> Time {
        match self {
            RecvTarget::Block { post_time, .. } | RecvTarget::Req { post_time, .. } => *post_time,
        }
    }
}

/// Who is waiting for sender-side completion of a rendezvous message.
#[derive(Debug, Clone, Copy)]
enum SenderWait {
    Block(usize),
    Req(ReqId),
}

#[derive(Debug)]
struct Msg {
    src: usize,
    dst: usize,
    tag: Tag,
    bytes: u64,
    payload: Bytes,
    eager: bool,
    /// Per-(src,dst) send sequence number for envelope ordering.
    seq: u64,
    /// Envelope visible (in-order arrived) time.
    visible_at: Option<Time>,
    /// Receive target once matched (rendezvous keeps it until data lands).
    matched: Option<RecvTarget>,
    /// Sender waiting for rendezvous completion.
    sender_wait: Option<SenderWait>,
}

#[derive(Debug)]
enum ReqState {
    /// Send posted; completion time not yet known (rendezvous awaiting CTS).
    SendPending,
    /// Send will be locally complete at this time.
    SendDone(Time),
    /// Receive posted, not yet delivered.
    RecvPending,
    /// Receive delivered at this time with this envelope and payload.
    RecvDone(Time, MsgMeta, Bytes),
    /// Request already waited on.
    Consumed,
}

struct ReqEntry {
    state: ReqState,
    /// Rank blocked in `wait` on this request, if any.
    waiter: Option<usize>,
}

struct Posted {
    src: SrcSel,
    tag: TagSel,
    target: RecvTarget,
}

struct Engine {
    cfg: WorldConfig,
    net: Network,
    clocks: Vec<Time>,
    ready: BinaryHeap<Reverse<(Time, u64, usize)>>,
    ready_seq: u64,
    pending_reply: Vec<Option<Reply>>,
    finished: Vec<bool>,
    nfinished: usize,
    blocked_desc: Vec<Option<String>>,
    call_rx: Vec<Receiver<Call>>,
    reply_tx: Vec<Sender<Reply>>,

    msgs: Vec<Msg>,
    purpose: HashMap<TransferId, Purpose>,
    pair_send_seq: HashMap<(usize, usize), u64>,
    pair_env_next: HashMap<(usize, usize), u64>,
    pair_env_buf: HashMap<(usize, usize), BTreeMap<u64, (MsgId, Time)>>,
    pair_env_visible: HashMap<(usize, usize), Time>,
    /// Per destination rank: visible but unmatched envelopes, in visible
    /// order (the "unexpected message queue").
    pending_env: Vec<VecDeque<MsgId>>,
    /// Per destination rank: posted but unmatched receives, in post order.
    posted: Vec<VecDeque<Posted>>,
    reqs: Vec<ReqEntry>,
    msg_count: u64,
    traces: Vec<Vec<TraceEvent>>,
}

impl Engine {
    fn new(cfg: WorldConfig, call_rx: Vec<Receiver<Call>>, reply_tx: Vec<Sender<Reply>>) -> Self {
        let nranks = cfg.nranks();
        let net = Network::new(cfg.cluster.clone(), cfg.seed);
        let mut ready = BinaryHeap::new();
        for r in 0..nranks {
            ready.push(Reverse((Time::ZERO, r as u64, r)));
        }
        Engine {
            net,
            clocks: vec![Time::ZERO; nranks],
            ready,
            ready_seq: nranks as u64,
            pending_reply: (0..nranks).map(|_| None).collect(),
            finished: vec![false; nranks],
            nfinished: 0,
            blocked_desc: vec![None; nranks],
            call_rx,
            reply_tx,
            msgs: Vec::new(),
            purpose: HashMap::new(),
            pair_send_seq: HashMap::new(),
            pair_env_next: HashMap::new(),
            pair_env_buf: HashMap::new(),
            pair_env_visible: HashMap::new(),
            pending_env: (0..nranks).map(|_| VecDeque::new()).collect(),
            posted: (0..nranks).map(|_| VecDeque::new()).collect(),
            reqs: Vec::new(),
            msg_count: 0,
            traces: (0..nranks).map(|_| Vec::new()).collect(),
            cfg,
        }
    }

    fn report(&mut self) -> RunReport {
        let virtual_time = self.clocks.iter().copied().max().unwrap_or(Time::ZERO);
        RunReport {
            virtual_time,
            clocks: self.clocks.clone(),
            net_stats: *self.net.stats(),
            messages: self.msg_count,
            traces: if self.cfg.record_trace {
                Some(std::mem::take(&mut self.traces))
            } else {
                None
            },
            fault_events: self.net.take_fault_events(),
        }
    }

    fn poison_all(&mut self) {
        for (r, tx) in self.reply_tx.iter().enumerate() {
            if !self.finished[r] {
                let _ = tx.send(Reply::Poison);
            }
        }
    }

    /// CPU time the sender spends injecting a message of `bytes`.
    fn inj_cost(&self, bytes: u64) -> Dur {
        let c = &self.cfg.cluster;
        c.send_overhead + Dur::from_nanos(c.per_frame_overhead.as_nanos() * c.frames_for(bytes))
    }

    fn node(&self, rank: usize) -> usize {
        self.cfg.node_of(rank)
    }

    fn schedule_wake(&mut self, rank: usize, at: Time, reply: Reply) {
        debug_assert!(
            self.pending_reply[rank].is_none(),
            "double wake for rank {rank}"
        );
        self.pending_reply[rank] = Some(reply);
        self.blocked_desc[rank] = None;
        self.ready_seq += 1;
        self.ready.push(Reverse((at, self.ready_seq, rank)));
    }

    /// Process all network events strictly up to time `t`, reacting to each
    /// completion at its own timestamp so protocol responses (CTS, data)
    /// are injected causally.
    fn advance_net(&mut self, t: Time) {
        while let Some(tn) = self.net.next_event_time() {
            if tn > t {
                break;
            }
            let completions: Vec<Completion> = self.net.advance_until(tn);
            for c in completions {
                self.handle_completion(c);
            }
        }
    }

    fn main_loop(&mut self) -> Result<(), SimError> {
        let nranks = self.cfg.nranks();
        let deadline = self.cfg.virtual_deadline.map(|d| Time::ZERO + d);
        loop {
            if self.nfinished == nranks {
                return Ok(());
            }
            let t_rank = self.ready.peek().map(|Reverse((t, _, _))| *t);
            let t_net = self.net.next_event_time();
            let t_next = match (t_rank, t_net) {
                (None, None) => {
                    let blocked = self
                        .blocked_desc
                        .iter()
                        .enumerate()
                        .filter(|(r, _)| !self.finished[*r])
                        .map(|(r, d)| (r, d.clone().unwrap_or_else(|| "<unknown>".into())))
                        .collect();
                    let err = SimError::Deadlock {
                        time: self.net.now(),
                        blocked,
                    };
                    pevpm_obs::diag::debug(&format!("mpisim: {err}"));
                    return Err(err);
                }
                (Some(tr), Some(tn)) => tr.min(tn),
                (Some(tr), None) => tr,
                (None, Some(tn)) => tn,
            };
            if let Some(dl) = deadline {
                if t_next > dl {
                    pevpm_obs::diag::debug(&format!(
                        "mpisim: virtual deadline exceeded at {t_next}"
                    ));
                    return Err(SimError::DeadlineExceeded { time: t_next });
                }
            }
            // Network strictly first at equal times: completions at t may
            // wake ranks that then run at t.
            if t_rank.is_none() || t_net.is_some_and(|tn| tn < t_rank.unwrap()) {
                self.advance_net(t_net.unwrap());
                continue;
            }
            let Reverse((t, _, r)) = self.ready.pop().unwrap();
            self.advance_net(t);
            self.clocks[r] = self.clocks[r].max(t);
            if let Some(reply) = self.pending_reply[r].take() {
                let _ = self.reply_tx[r].send(reply);
            }
            self.serve(r)?;
        }
    }

    /// Serve syscalls from the running rank `r` until it blocks, yields or
    /// finishes.
    fn serve(&mut self, r: usize) -> Result<(), SimError> {
        loop {
            let call = match self.call_rx[r].recv() {
                Ok(c) => c,
                Err(_) => {
                    return Err(SimError::RankPanic {
                        rank: r,
                        message: "rank thread exited without Finish".into(),
                    })
                }
            };
            match call {
                Call::Finish(trace) => {
                    self.finished[r] = true;
                    self.nfinished += 1;
                    if self.cfg.record_trace {
                        self.traces[r] = trace;
                    }
                    return Ok(());
                }
                Call::Aborted(message) => {
                    pevpm_obs::diag::warn(&format!("mpisim: rank {r} aborted: {message}"));
                    return Err(SimError::RankPanic { rank: r, message });
                }
                Call::Compute(d) => {
                    let wake = self.clocks[r] + d;
                    self.clocks[r] = wake;
                    self.schedule_wake(r, wake, Reply::Ok { clock: wake });
                    return Ok(());
                }
                Call::Send {
                    dst,
                    tag,
                    bytes,
                    payload,
                } => {
                    let local = self.node(r) == self.node(dst);
                    let eager = local || bytes < self.cfg.protocol.eager_threshold;
                    let mid = self.new_msg(r, dst, tag, bytes, payload, eager);
                    if eager {
                        let t0 = self.clocks[r];
                        let tid = self
                            .net
                            .start_transfer(t0, self.node(r), self.node(dst), bytes);
                        self.purpose.insert(tid, Purpose::EagerData(mid));
                        let done = t0 + self.inj_cost(bytes);
                        self.clocks[r] = done;
                        let _ = self.reply_tx[r].send(Reply::Ok { clock: done });
                        // continue serving: eager send does not yield
                    } else {
                        self.post_rts(mid);
                        self.msgs[mid].sender_wait = Some(SenderWait::Block(r));
                        self.blocked_desc[r] = Some(format!(
                            "Send(dst={dst}, tag={tag}, bytes={bytes}) [rendezvous]"
                        ));
                        return Ok(());
                    }
                }
                Call::Isend {
                    dst,
                    tag,
                    bytes,
                    payload,
                } => {
                    let local = self.node(r) == self.node(dst);
                    let eager = local || bytes < self.cfg.protocol.eager_threshold;
                    let mid = self.new_msg(r, dst, tag, bytes, payload, eager);
                    let req = self.new_req();
                    if eager {
                        let t0 = self.clocks[r];
                        let tid = self
                            .net
                            .start_transfer(t0, self.node(r), self.node(dst), bytes);
                        self.purpose.insert(tid, Purpose::EagerData(mid));
                        self.reqs[req].state = ReqState::SendDone(t0 + self.inj_cost(bytes));
                    } else {
                        self.post_rts(mid);
                        self.msgs[mid].sender_wait = Some(SenderWait::Req(req));
                        self.reqs[req].state = ReqState::SendPending;
                    }
                    let clock = self.clocks[r];
                    let _ = self.reply_tx[r].send(Reply::Posted {
                        clock,
                        req: Request(req as u64),
                    });
                }
                Call::Recv { src, tag } => {
                    let target = RecvTarget::Block {
                        rank: r,
                        post_time: self.clocks[r],
                    };
                    self.blocked_desc[r] = Some(format!("Recv(src={src:?}, tag={tag:?})"));
                    self.post_recv(r, src, tag, target);
                    return Ok(());
                }
                Call::Irecv { src, tag } => {
                    let req = self.new_req();
                    self.reqs[req].state = ReqState::RecvPending;
                    let target = RecvTarget::Req {
                        req,
                        post_time: self.clocks[r],
                    };
                    self.post_recv(r, src, tag, target);
                    let clock = self.clocks[r];
                    let _ = self.reply_tx[r].send(Reply::Posted {
                        clock,
                        req: Request(req as u64),
                    });
                }
                Call::Wait { req } => {
                    let rid = req.0 as usize;
                    match &self.reqs[rid].state {
                        ReqState::SendDone(t) => {
                            let wake = self.clocks[r].max(*t);
                            self.clocks[r] = wake;
                            self.reqs[rid].state = ReqState::Consumed;
                            self.schedule_wake(r, wake, Reply::Ok { clock: wake });
                        }
                        ReqState::RecvDone(..) => {
                            let ReqState::RecvDone(t, meta, payload) =
                                std::mem::replace(&mut self.reqs[rid].state, ReqState::Consumed)
                            else {
                                unreachable!()
                            };
                            let wake = self.clocks[r].max(t);
                            self.clocks[r] = wake;
                            self.schedule_wake(
                                r,
                                wake,
                                Reply::Msg {
                                    clock: wake,
                                    meta,
                                    payload,
                                },
                            );
                        }
                        ReqState::SendPending | ReqState::RecvPending => {
                            self.reqs[rid].waiter = Some(r);
                            self.blocked_desc[r] = Some(format!("Wait(req={})", req.0));
                        }
                        ReqState::Consumed => {
                            panic!("rank {r} waited on request {} twice", req.0)
                        }
                    }
                    return Ok(());
                }
                Call::Test { req } => {
                    let rid = req.0 as usize;
                    let clock = self.clocks[r];
                    let done = match &self.reqs[rid].state {
                        ReqState::SendDone(t) if *t <= clock => {
                            self.reqs[rid].state = ReqState::Consumed;
                            Some(None)
                        }
                        ReqState::RecvDone(t, ..) if *t <= clock => {
                            let ReqState::RecvDone(_, meta, payload) =
                                std::mem::replace(&mut self.reqs[rid].state, ReqState::Consumed)
                            else {
                                unreachable!()
                            };
                            Some(Some((meta, payload)))
                        }
                        _ => None,
                    };
                    let _ = self.reply_tx[r].send(Reply::TestResult { clock, done });
                }
            }
        }
    }

    fn new_msg(
        &mut self,
        src: usize,
        dst: usize,
        tag: Tag,
        bytes: u64,
        payload: Bytes,
        eager: bool,
    ) -> MsgId {
        let seq = self.pair_send_seq.entry((src, dst)).or_insert(0);
        let s = *seq;
        *seq += 1;
        self.msg_count += 1;
        self.msgs.push(Msg {
            src,
            dst,
            tag,
            bytes,
            payload,
            eager,
            seq: s,
            visible_at: None,
            matched: None,
            sender_wait: None,
        });
        self.msgs.len() - 1
    }

    fn new_req(&mut self) -> ReqId {
        self.reqs.push(ReqEntry {
            state: ReqState::SendPending,
            waiter: None,
        });
        self.reqs.len() - 1
    }

    /// Send the rendezvous request-to-send control message.
    fn post_rts(&mut self, mid: MsgId) {
        let (src, dst) = (self.msgs[mid].src, self.msgs[mid].dst);
        let t0 = self.clocks[src];
        let ctrl = self.cfg.protocol.ctrl_bytes;
        let tid = self
            .net
            .start_transfer(t0, self.node(src), self.node(dst), ctrl);
        self.purpose.insert(tid, Purpose::Rts(mid));
    }

    fn matches(m: &Msg, src: SrcSel, tag: TagSel) -> bool {
        let src_ok = match src {
            SrcSel::Any => true,
            SrcSel::Rank(s) => m.src == s,
        };
        let tag_ok = match tag {
            TagSel::Any => true,
            TagSel::Tag(t) => m.tag == t,
        };
        src_ok && tag_ok
    }

    fn post_recv(&mut self, dst: usize, src: SrcSel, tag: TagSel, target: RecvTarget) {
        let hit = self.pending_env[dst]
            .iter()
            .position(|&m| Self::matches(&self.msgs[m], src, tag));
        match hit {
            Some(pos) => {
                let mid = self.pending_env[dst].remove(pos).unwrap();
                self.match_msg(mid, target);
            }
            None => self.posted[dst].push_back(Posted { src, tag, target }),
        }
    }

    fn handle_completion(&mut self, c: Completion) {
        let purpose = self
            .purpose
            .remove(&c.id)
            .expect("completion for unknown transfer");
        match purpose {
            Purpose::EagerData(mid) | Purpose::Rts(mid) => {
                self.on_env_arrival(mid, c.delivered_at);
            }
            Purpose::Cts(mid) => {
                let (src, dst, bytes) =
                    (self.msgs[mid].src, self.msgs[mid].dst, self.msgs[mid].bytes);
                let t0 = c.delivered_at;
                let tid = self
                    .net
                    .start_transfer(t0, self.node(src), self.node(dst), bytes);
                self.purpose.insert(tid, Purpose::RndvData(mid));
                let done = t0 + self.inj_cost(bytes);
                match self.msgs[mid].sender_wait.take() {
                    Some(SenderWait::Block(r)) => {
                        self.clocks[r] = done;
                        self.schedule_wake(r, done, Reply::Ok { clock: done });
                    }
                    Some(SenderWait::Req(req)) => self.complete_send_req(req, done),
                    None => {}
                }
            }
            Purpose::RndvData(mid) => {
                let target = self.msgs[mid]
                    .matched
                    .take()
                    .expect("rendezvous data without a matched receive");
                let wake = c.delivered_at.max(target.post_time()) + self.cfg.protocol.match_cost;
                self.deliver(mid, target, wake);
            }
        }
    }

    /// Envelope arrived on the wire: apply per-pair in-order visibility,
    /// then run matching for every envelope that became visible.
    fn on_env_arrival(&mut self, mid: MsgId, at: Time) {
        let pair = (self.msgs[mid].src, self.msgs[mid].dst);
        self.pair_env_buf
            .entry(pair)
            .or_default()
            .insert(self.msgs[mid].seq, (mid, at));
        loop {
            let next = *self.pair_env_next.entry(pair).or_insert(0);
            let Some(&(m2, a2)) = self.pair_env_buf.get(&pair).and_then(|b| b.get(&next)) else {
                break;
            };
            self.pair_env_buf.get_mut(&pair).unwrap().remove(&next);
            *self.pair_env_next.get_mut(&pair).unwrap() += 1;
            let vis_entry = self.pair_env_visible.entry(pair).or_insert(Time::ZERO);
            let vis = a2.max(*vis_entry);
            *vis_entry = vis;
            self.on_envelope_visible(m2, vis);
        }
    }

    fn on_envelope_visible(&mut self, mid: MsgId, visible: Time) {
        self.msgs[mid].visible_at = Some(visible);
        let dst = self.msgs[mid].dst;
        let hit = self.posted[dst]
            .iter()
            .position(|p| Self::matches(&self.msgs[mid], p.src, p.tag));
        match hit {
            Some(pos) => {
                let p = self.posted[dst].remove(pos).unwrap();
                self.match_msg(mid, p.target);
            }
            None => self.pending_env[dst].push_back(mid),
        }
    }

    /// An envelope met a receive: deliver (eager) or start the rendezvous
    /// CTS handshake.
    fn match_msg(&mut self, mid: MsgId, target: RecvTarget) {
        let visible = self.msgs[mid]
            .visible_at
            .expect("matching an envelope that is not visible");
        let tm = visible.max(target.post_time()) + self.cfg.protocol.match_cost;
        if self.msgs[mid].eager {
            self.deliver(mid, target, tm);
        } else {
            self.msgs[mid].matched = Some(target);
            let (src, dst) = (self.msgs[mid].src, self.msgs[mid].dst);
            let ctrl = self.cfg.protocol.ctrl_bytes;
            let tid = self
                .net
                .start_transfer(tm, self.node(dst), self.node(src), ctrl);
            self.purpose.insert(tid, Purpose::Cts(mid));
        }
    }

    fn deliver(&mut self, mid: MsgId, target: RecvTarget, wake: Time) {
        let m = &self.msgs[mid];
        let meta = MsgMeta {
            src: m.src,
            tag: m.tag,
            bytes: m.bytes,
        };
        let payload = m.payload.clone();
        match target {
            RecvTarget::Block { rank, .. } => {
                self.clocks[rank] = self.clocks[rank].max(wake);
                self.schedule_wake(
                    rank,
                    wake,
                    Reply::Msg {
                        clock: wake,
                        meta,
                        payload,
                    },
                );
            }
            RecvTarget::Req { req, .. } => {
                let waiter = self.reqs[req].waiter.take();
                match waiter {
                    Some(r) => {
                        let w = wake.max(self.clocks[r]);
                        self.clocks[r] = w;
                        self.reqs[req].state = ReqState::Consumed;
                        self.schedule_wake(
                            r,
                            w,
                            Reply::Msg {
                                clock: w,
                                meta,
                                payload,
                            },
                        );
                    }
                    None => {
                        self.reqs[req].state = ReqState::RecvDone(wake, meta, payload);
                    }
                }
            }
        }
    }

    fn complete_send_req(&mut self, req: ReqId, done: Time) {
        match self.reqs[req].waiter.take() {
            Some(r) => {
                let w = done.max(self.clocks[r]);
                self.clocks[r] = w;
                self.reqs[req].state = ReqState::Consumed;
                self.schedule_wake(r, w, Reply::Ok { clock: w });
            }
            None => self.reqs[req].state = ReqState::SendDone(done),
        }
    }
}
