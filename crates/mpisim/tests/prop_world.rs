//! Property-based tests of the MPI world scheduler: any globally-scripted
//! communication pattern completes without deadlock, delivers intact
//! payloads, and is deterministic per seed.

use parking_lot::Mutex;
use pevpm_mpisim::{Time, World, WorldConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// A random communication script: a global sequence of (src, dst, bytes)
/// edges. Every rank walks the script in order, sending on its `src`
/// edges and receiving on its `dst` edges — a pattern that is deadlock
/// free by construction, whatever the protocol (eager or rendezvous)
/// each message uses.
fn run_script(
    nodes: usize,
    ppn: usize,
    seed: u64,
    edges: &[(usize, usize, u64)],
) -> (Time, Vec<u64>) {
    let nranks = nodes * ppn;
    let edges: Vec<(usize, usize, u64)> = edges
        .iter()
        .map(|&(a, b, s)| (a % nranks, b % nranks, s))
        .filter(|&(a, b, _)| a != b)
        .collect();
    let received: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(vec![0; nranks]));
    let received2 = received.clone();
    let edges2 = edges.clone();

    let report = World::run(WorldConfig::perseus(nodes, ppn, seed), move |rank| {
        let me = rank.rank();
        for (i, &(src, dst, bytes)) in edges2.iter().enumerate() {
            if me == src {
                rank.send(dst, i as u64, vec![(i % 251) as u8; bytes as usize]);
            } else if me == dst {
                let (meta, payload) = rank.recv(src, i as u64);
                assert_eq!(meta.bytes, bytes);
                assert_eq!(payload.len(), bytes as usize);
                assert!(payload.iter().all(|&b| b == (i % 251) as u8));
                received2.lock()[me] += 1;
            }
        }
    })
    .unwrap();
    let counts = received.lock().clone();
    (report.virtual_time, counts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random scripts complete, deliver intact data, and the virtual time
    /// is deterministic per seed.
    #[test]
    fn scripted_worlds_complete_and_are_deterministic(
        edges in proptest::collection::vec((0usize..8, 0usize..8, 1u64..40_000), 1..15),
        ppn in 1usize..3,
        seed in 0u64..50,
    ) {
        let nodes = 4;
        let (t1, counts1) = run_script(nodes, ppn, seed, &edges);
        let (t2, counts2) = run_script(nodes, ppn, seed, &edges);
        prop_assert_eq!(t1, t2, "virtual time must be deterministic");
        prop_assert_eq!(&counts1, &counts2);
        let expected: u64 = edges
            .iter()
            .map(|&(a, b, _)| ((a % (nodes * ppn)) != (b % (nodes * ppn))) as u64)
            .sum();
        prop_assert_eq!(counts1.iter().sum::<u64>(), expected);
        if expected > 0 {
            prop_assert!(t1 > Time::ZERO);
        }
    }

    /// Collectives compose with arbitrary preceding point-to-point
    /// traffic: a barrier after a random script leaves every rank's clock
    /// at least at the pre-barrier maximum.
    #[test]
    fn barrier_after_traffic_synchronises(
        stagger in proptest::collection::vec(0u64..5_000, 4),
        seed in 0u64..20,
    ) {
        let clocks: Arc<Mutex<Vec<(f64, f64)>>> =
            Arc::new(Mutex::new(vec![(0.0, 0.0); 4]));
        let c2 = clocks.clone();
        let stagger2 = stagger.clone();
        World::run(WorldConfig::perseus(4, 1, seed), move |rank| {
            let me = rank.rank();
            rank.compute(pevpm_mpisim::Dur::from_micros(stagger2[me]));
            let before = rank.now().as_secs_f64();
            rank.barrier();
            let after = rank.now().as_secs_f64();
            c2.lock()[me] = (before, after);
        })
        .unwrap();
        let clocks = clocks.lock();
        let max_entry = clocks.iter().map(|c| c.0).fold(0.0, f64::max);
        for &(_, after) in clocks.iter() {
            prop_assert!(after >= max_entry, "left barrier before the slowest entered");
        }
    }
}
