//! Behavioural tests of the simulated MPI world: semantics, virtual-time
//! correctness, protocol behaviour, determinism and failure modes.

use bytes::Bytes;
use parking_lot::Mutex;
use pevpm_mpisim::{Placement, ReduceOp, SimError, SrcSel, TagSel, Time, World, WorldConfig};
use std::sync::Arc;

fn ideal(nodes: usize, ppn: usize) -> WorldConfig {
    WorldConfig::ideal(nodes, ppn)
}

#[test]
fn ping_pong_transfers_payload_and_time_advances() {
    let times = Arc::new(Mutex::new(vec![Time::ZERO; 2]));
    let t2 = times.clone();
    let report = World::run(ideal(2, 1), move |rank| {
        match rank.rank() {
            0 => {
                rank.send(1, 1, &b"ping"[..]);
                let (_, p) = rank.recv(1, 2);
                assert_eq!(&p[..], b"pong");
            }
            1 => {
                let (meta, p) = rank.recv(0, 1);
                assert_eq!(meta.bytes, 4);
                assert_eq!(&p[..], b"ping");
                rank.send(0, 2, &b"pong"[..]);
            }
            _ => unreachable!(),
        }
        t2.lock()[rank.rank()] = rank.now();
    })
    .unwrap();
    assert!(report.virtual_time > Time::ZERO);
    let times = times.lock();
    assert!(times[0] > Time::ZERO && times[1] > Time::ZERO);
    assert_eq!(report.messages, 2);
}

#[test]
fn compute_advances_only_local_clock() {
    let report = World::run(ideal(2, 1), |rank| {
        if rank.rank() == 0 {
            rank.compute_secs(1.0);
            assert_eq!(rank.now(), Time::from_secs_f64(1.0));
        }
    })
    .unwrap();
    assert_eq!(report.clocks[0], Time::from_secs_f64(1.0));
    assert_eq!(report.clocks[1], Time::ZERO);
}

#[test]
fn receive_waits_for_late_sender() {
    // Rank 1 computes for 10 ms before sending; rank 0's recv must complete
    // after that, not before.
    let report = World::run(ideal(2, 1), |rank| {
        if rank.rank() == 0 {
            let (_, _) = rank.recv(1, 0);
            assert!(rank.now() > Time::from_secs_f64(0.010));
        } else {
            rank.compute_secs(0.010);
            rank.send_size(0, 0, 64);
        }
    })
    .unwrap();
    assert!(report.virtual_time > Time::from_secs_f64(0.010));
}

#[test]
fn eager_send_returns_before_delivery() {
    // A small (eager) send must complete locally in ~tens of microseconds
    // even though the receiver posts its recv 1 second later.
    World::run(ideal(2, 1), |rank| {
        if rank.rank() == 0 {
            rank.send_size(1, 0, 1024);
            assert!(
                rank.now() < Time::from_secs_f64(0.01),
                "eager send blocked until the receive: {}",
                rank.now()
            );
        } else {
            rank.compute_secs(1.0);
            let _ = rank.recv(0, 0);
        }
    })
    .unwrap();
}

#[test]
fn rendezvous_send_blocks_until_receiver_arrives() {
    // A 64 KB (rendezvous) send cannot complete until the receiver posts,
    // because the CTS only comes back after the match.
    World::run(ideal(2, 1), |rank| {
        if rank.rank() == 0 {
            rank.send_size(1, 0, 64 * 1024);
            assert!(
                rank.now() > Time::from_secs_f64(1.0),
                "rendezvous send completed before the receiver posted: {}",
                rank.now()
            );
        } else {
            rank.compute_secs(1.0);
            let _ = rank.recv(0, 0);
        }
    })
    .unwrap();
}

#[test]
fn message_order_between_pair_is_fifo() {
    World::run(ideal(2, 1), |rank| {
        if rank.rank() == 0 {
            for i in 0..10u64 {
                rank.send(1, 5, vec![i as u8]);
            }
        } else {
            for i in 0..10u64 {
                let (_, p) = rank.recv(0, 5);
                assert_eq!(p[0] as u64, i, "messages reordered");
            }
        }
    })
    .unwrap();
}

#[test]
fn tag_matching_selects_correct_message() {
    World::run(ideal(2, 1), |rank| {
        if rank.rank() == 0 {
            rank.send(1, 10, &b"ten"[..]);
            rank.send(1, 20, &b"twenty"[..]);
        } else {
            // Receive in reverse tag order: matching must pick by tag.
            let (_, p20) = rank.recv(0, 20);
            let (_, p10) = rank.recv(0, 10);
            assert_eq!(&p20[..], b"twenty");
            assert_eq!(&p10[..], b"ten");
        }
    })
    .unwrap();
}

#[test]
fn wildcard_receive_matches_any_source_and_tag() {
    World::run(ideal(3, 1), |rank| match rank.rank() {
        0 => {
            let (m1, _) = rank.recv(SrcSel::Any, TagSel::Any);
            let (m2, _) = rank.recv(SrcSel::Any, TagSel::Any);
            let mut srcs = [m1.src, m2.src];
            srcs.sort_unstable();
            assert_eq!(srcs, [1, 2]);
        }
        r => rank.send_size(0, 100 + r as u64, 32),
    })
    .unwrap();
}

#[test]
fn isend_irecv_wait_roundtrip() {
    World::run(ideal(2, 1), |rank| {
        if rank.rank() == 0 {
            let r1 = rank.isend(1, 1, &b"a"[..]);
            let r2 = rank.isend(1, 2, &b"b"[..]);
            rank.wait(r1);
            rank.wait(r2);
        } else {
            let q2 = rank.irecv(0, 2);
            let q1 = rank.irecv(0, 1);
            let m1 = rank.wait(q1).unwrap();
            let m2 = rank.wait(q2).unwrap();
            assert_eq!(&m1.1[..], b"a");
            assert_eq!(&m2.1[..], b"b");
        }
    })
    .unwrap();
}

#[test]
fn test_reports_pending_then_done() {
    World::run(ideal(2, 1), |rank| {
        if rank.rank() == 0 {
            let req = rank.irecv(1, 0);
            assert!(rank.test(req).is_none(), "request done before sender ran");
            // Wait out the sender's compute + transfer.
            rank.compute_secs(0.5);
            let done = rank.test(req);
            assert!(done.is_some(), "request still pending after 0.5 s");
            assert!(done.unwrap().is_some());
        } else {
            rank.compute_secs(0.1);
            rank.send_size(0, 0, 8);
        }
    })
    .unwrap();
}

#[test]
fn intra_node_messages_bypass_network() {
    let report = World::run(ideal(1, 2), |rank| {
        if rank.rank() == 0 {
            rank.send(1, 0, vec![42u8; 1000]);
        } else {
            let (_, p) = rank.recv(0, 0);
            assert_eq!(p.len(), 1000);
        }
    })
    .unwrap();
    assert_eq!(
        report.net_stats.frames_sent, 0,
        "local message used the wire"
    );
}

#[test]
fn deadlock_is_detected_and_reported() {
    let err = World::run(ideal(2, 1), |rank| {
        // Both ranks receive from each other; nobody sends.
        let peer = 1 - rank.rank();
        let _ = rank.recv(peer, 0);
    })
    .unwrap_err();
    match err {
        SimError::Deadlock { blocked, .. } => {
            assert_eq!(blocked.len(), 2);
            assert!(blocked[0].1.contains("Recv"));
        }
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn rank_panic_is_reported() {
    let err = World::run(ideal(2, 1), |rank| {
        if rank.rank() == 1 {
            panic!("boom on rank 1");
        } else {
            let _ = rank.recv(1, 0);
        }
    })
    .unwrap_err();
    match err {
        SimError::RankPanic { rank, message } => {
            assert_eq!(rank, 1);
            assert!(message.contains("boom"), "message: {message}");
        }
        other => panic!("expected rank panic, got {other}"),
    }
}

#[test]
fn deadline_guard_fires() {
    let mut cfg = ideal(2, 1);
    cfg.virtual_deadline = Some(pevpm_netsim::Dur::from_millis(1));
    let err = World::run(cfg, |rank| {
        rank.compute_secs(10.0);
    })
    .unwrap_err();
    assert!(matches!(err, SimError::DeadlineExceeded { .. }));
}

#[test]
fn determinism_same_seed_same_result() {
    let run = |seed: u64| {
        let mut cfg = WorldConfig::perseus(4, 2, seed);
        cfg.virtual_deadline = None;
        World::run(cfg, |rank| {
            let n = rank.nranks();
            let r = rank.rank();
            // All-pairs exchange with the opposite half.
            let peer = (r + n / 2) % n;
            if r < n / 2 {
                rank.send_size(peer, 0, 2048);
                let _ = rank.recv(peer, 1);
            } else {
                let _ = rank.recv(peer, 0);
                rank.send_size(peer, 1, 2048);
            }
        })
        .unwrap()
        .virtual_time
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11), run(12));
}

#[test]
fn barrier_synchronises_clocks() {
    let after = Arc::new(Mutex::new(vec![Time::ZERO; 4]));
    let a2 = after.clone();
    World::run(ideal(4, 1), move |rank| {
        // Stagger the ranks, then barrier: everyone leaves after the latest.
        rank.compute_secs(0.01 * rank.rank() as f64);
        rank.barrier();
        a2.lock()[rank.rank()] = rank.now();
    })
    .unwrap();
    let after = after.lock();
    let slowest_entry = Time::from_secs_f64(0.03);
    for (r, &t) in after.iter().enumerate() {
        assert!(
            t >= slowest_entry,
            "rank {r} left the barrier at {t} before the slowest rank entered"
        );
    }
}

#[test]
fn bcast_delivers_payload_to_all() {
    let seen = Arc::new(Mutex::new(vec![Vec::new(); 5]));
    let s2 = seen.clone();
    World::run(ideal(5, 1), move |rank| {
        let payload = if rank.rank() == 2 {
            Some(Bytes::from_static(b"broadcast!"))
        } else {
            None
        };
        let out = rank.bcast(2, payload);
        s2.lock()[rank.rank()] = out.to_vec();
    })
    .unwrap();
    for v in seen.lock().iter() {
        assert_eq!(v.as_slice(), b"broadcast!");
    }
}

#[test]
fn reduce_computes_elementwise_sum() {
    let result = Arc::new(Mutex::new(None));
    let r2 = result.clone();
    World::run(ideal(6, 1), move |rank| {
        let data = vec![rank.rank() as f64, 1.0];
        let out = rank.reduce_f64s(0, &data, ReduceOp::Sum);
        if rank.rank() == 0 {
            *r2.lock() = out;
        } else {
            assert!(out.is_none());
        }
    })
    .unwrap();
    let got = result.lock().clone().unwrap();
    assert_eq!(got, vec![15.0, 6.0]); // 0+1+..+5, six ones
}

#[test]
fn allreduce_gives_every_rank_the_result() {
    World::run(ideal(4, 1), |rank| {
        let out = rank.allreduce_f64s(&[rank.rank() as f64], ReduceOp::Max);
        assert_eq!(out, vec![3.0]);
        let out = rank.allreduce_f64s(&[rank.rank() as f64], ReduceOp::Min);
        assert_eq!(out, vec![0.0]);
    })
    .unwrap();
}

#[test]
fn gather_collects_in_rank_order() {
    World::run(ideal(4, 1), |rank| {
        let mine = Bytes::from(vec![rank.rank() as u8; 3]);
        let out = rank.gather(1, mine);
        if rank.rank() == 1 {
            let got = out.unwrap();
            for (i, b) in got.iter().enumerate() {
                assert_eq!(b.as_ref(), &[i as u8; 3]);
            }
        } else {
            assert!(out.is_none());
        }
    })
    .unwrap();
}

#[test]
fn scatter_distributes_chunks() {
    World::run(ideal(3, 1), |rank| {
        let chunks = (rank.rank() == 0).then(|| {
            (0..3)
                .map(|i| Bytes::from(vec![i as u8 * 10; 2]))
                .collect::<Vec<_>>()
        });
        let mine = rank.scatter(0, chunks);
        assert_eq!(mine.as_ref(), &[rank.rank() as u8 * 10; 2]);
    })
    .unwrap();
}

#[test]
fn allgather_returns_everything_everywhere() {
    World::run(ideal(5, 1), |rank| {
        let mine = Bytes::from(vec![rank.rank() as u8 + 1]);
        let all = rank.allgather(mine);
        for (i, b) in all.iter().enumerate() {
            assert_eq!(b.as_ref(), &[i as u8 + 1]);
        }
    })
    .unwrap();
}

#[test]
fn alltoall_exchanges_personalised_chunks() {
    World::run(ideal(4, 1), |rank| {
        let r = rank.rank();
        let chunks: Vec<Bytes> = (0..4)
            .map(|dst| Bytes::from(vec![(r * 10 + dst) as u8]))
            .collect();
        let got = rank.alltoall(chunks);
        for (src, b) in got.iter().enumerate() {
            assert_eq!(b.as_ref(), &[(src * 10 + r) as u8]);
        }
    })
    .unwrap();
}

#[test]
fn sendrecv_exchanges_without_deadlock() {
    // Head-to-head large (rendezvous) exchange: plain blocking sends on
    // both sides would deadlock; sendrecv must not.
    World::run(ideal(2, 1), |rank| {
        let peer = 1 - rank.rank();
        let mine = vec![rank.rank() as u8; 64 * 1024];
        let (meta, payload) = rank.sendrecv(peer, 5, mine, peer, 5);
        assert_eq!(meta.src, peer);
        assert_eq!(payload.len(), 64 * 1024);
        assert!(payload.iter().all(|&b| b == peer as u8));
    })
    .unwrap();
}

#[test]
fn sendrecv_size_shifts_a_ring() {
    World::run(ideal(4, 1), |rank| {
        let n = rank.nranks();
        let r = rank.rank();
        for _ in 0..5 {
            let (meta, _) = rank.sendrecv_size((r + 1) % n, 1, 2048, (r + n - 1) % n, 1);
            assert_eq!(meta.src, (r + n - 1) % n);
            assert_eq!(meta.bytes, 2048);
        }
    })
    .unwrap();
}

#[test]
fn nic_contention_slows_two_procs_per_node() {
    // The same exchange with 2 procs/node must take longer per message than
    // with 1 proc/node: two processes share one NIC (paper §3).
    let time_for = |nodes: usize, ppn: usize| {
        let cfg = WorldConfig::perseus(nodes, ppn, 1);
        World::run(cfg, |rank| {
            let n = rank.nranks();
            let r = rank.rank();
            let peer = (r + n / 2) % n;
            for _ in 0..10 {
                if r < n / 2 {
                    rank.send_size(peer, 0, 4096);
                    let _ = rank.recv(peer, 1);
                } else {
                    let _ = rank.recv(peer, 0);
                    rank.send_size(peer, 1, 4096);
                }
            }
        })
        .unwrap()
        .virtual_time
    };
    let t1 = time_for(4, 1); // 4 ranks over 4 nodes
    let t2 = time_for(2, 2); // 4 ranks over 2 nodes (shared NICs)
    assert!(
        t2 > t1,
        "NIC sharing should slow the exchange: 4x1={t1}, 2x2={t2}"
    );
}

#[test]
fn round_robin_placement_is_supported() {
    let mut cfg = ideal(2, 2);
    cfg.placement = Placement::RoundRobin;
    World::run(cfg, |rank| {
        // With round-robin, ranks 0 and 2 share node 0.
        if rank.rank() == 0 {
            assert_eq!(rank.node(), 0);
        }
        if rank.rank() == 2 {
            assert_eq!(rank.node(), 0);
        }
        if rank.rank() == 1 {
            assert_eq!(rank.node(), 1);
        }
    })
    .unwrap();
}

#[test]
fn traces_record_operation_timelines() {
    use pevpm_mpisim::{breakdown, TraceKind};
    let mut cfg = ideal(2, 1);
    cfg.record_trace = true;
    let report = World::run(cfg, |rank| {
        if rank.rank() == 0 {
            rank.compute_secs(0.25);
            rank.send_size(1, 0, 2048);
        } else {
            let _ = rank.recv(0, 0);
        }
    })
    .unwrap();
    let traces = report.traces.expect("tracing was enabled");
    assert_eq!(traces.len(), 2);

    // Rank 0: compute then send.
    assert_eq!(traces[0][0].kind, TraceKind::Compute);
    assert!((traces[0][0].duration() - 0.25).abs() < 1e-9);
    assert_eq!(traces[0][1].kind, TraceKind::Send);
    assert_eq!(traces[0][1].peer, Some(1));
    assert_eq!(traces[0][1].bytes, 2048);

    // Rank 1: one receive covering its whole blocked wait.
    assert_eq!(traces[1][0].kind, TraceKind::Recv);
    assert!(traces[1][0].duration() > 0.25, "recv must include the wait");

    let b = breakdown(&traces);
    assert!((b[0].compute - 0.25).abs() < 1e-9);
    assert!(b[1].blocked > 0.25);
    assert_eq!(b[0].messages, 1);
    assert!(b[1].comm_fraction() > 0.99);
}

#[test]
fn traces_mark_collective_internals() {
    use pevpm_mpisim::breakdown;
    let mut cfg = ideal(4, 1);
    cfg.record_trace = true;
    let report = World::run(cfg, |rank| {
        rank.barrier();
        rank.compute_secs(0.01);
    })
    .unwrap();
    let traces = report.traces.unwrap();
    for (r, t) in traces.iter().enumerate() {
        assert!(
            t.iter().any(|e| e.in_collective),
            "rank {r}: barrier internals not marked"
        );
        assert!(
            t.iter().any(|e| !e.in_collective),
            "rank {r}: compute wrongly marked as collective"
        );
    }
    let b = breakdown(&traces);
    assert!(b[0].collective > 0.0);
}

#[test]
fn tracing_disabled_returns_none_and_costs_nothing() {
    let report = World::run(ideal(2, 1), |rank| {
        if rank.rank() == 0 {
            rank.send_size(1, 0, 64);
        } else {
            let _ = rank.recv(0, 0);
        }
    })
    .unwrap();
    assert!(report.traces.is_none());
}

#[test]
fn large_worlds_run_to_completion() {
    let cfg = WorldConfig::perseus(32, 2, 3);
    let report = World::run(cfg, |rank| {
        let n = rank.nranks();
        let r = rank.rank();
        let peer = (r + n / 2) % n;
        if r < n / 2 {
            rank.send_size(peer, 0, 1024);
            let _ = rank.recv(peer, 1);
        } else {
            let _ = rank.recv(peer, 0);
            rank.send_size(peer, 1, 1024);
        }
    })
    .unwrap();
    assert_eq!(report.messages, 64);
    assert!(report.net_stats.frames_sent >= 64);
}
