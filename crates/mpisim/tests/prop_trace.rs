//! Property-based tests of the measured-trace invariants.
//!
//! For programs built from traced operations only (compute, blocking
//! send/recv), a rank's virtual clock advances exclusively inside those
//! calls, so its recorded events are contiguous: every event's end is at
//! or after its start, and the per-rank breakdown components (compute +
//! send + blocked) sum to the rank's makespan exactly (up to floating
//! rounding in the nanosecond→seconds conversion).

use parking_lot::Mutex;
use pevpm_mpisim::{breakdown, trace, Dur, World, WorldConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// Run a deadlock-free scripted world (every rank walks a global edge
/// list, computing then sending on its `src` edges and receiving on its
/// `dst` edges) with tracing enabled, and return the traces plus final
/// rank clocks.
fn run_traced(
    nodes: usize,
    seed: u64,
    edges: &[(usize, usize, u64, u64)],
) -> (Vec<Vec<pevpm_mpisim::TraceEvent>>, Vec<f64>) {
    let nranks = nodes;
    let edges: Vec<(usize, usize, u64, u64)> = edges
        .iter()
        .map(|&(a, b, s, c)| (a % nranks, b % nranks, s, c))
        .filter(|&(a, b, _, _)| a != b)
        .collect();
    let edges2 = edges.clone();
    let clocks: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(vec![0.0; nranks]));
    let clocks2 = clocks.clone();

    let mut cfg = WorldConfig::perseus(nodes, 1, seed);
    cfg.record_trace = true;
    let report = World::run(cfg, move |rank| {
        let me = rank.rank();
        for (i, &(src, dst, bytes, compute_us)) in edges2.iter().enumerate() {
            if me == src {
                rank.compute(Dur::from_micros(compute_us));
                rank.send(dst, i as u64, vec![0u8; bytes as usize]);
            } else if me == dst {
                let _ = rank.recv(src, i as u64);
            }
        }
        clocks2.lock()[rank.rank()] = rank.now().as_secs_f64();
    })
    .unwrap();
    let final_clocks = clocks.lock().clone();
    (report.traces.unwrap(), final_clocks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every traced event is well-formed and each rank's breakdown tiles
    /// its makespan.
    #[test]
    fn breakdown_components_sum_to_each_ranks_makespan(
        edges in proptest::collection::vec(
            // (src, dst, bytes, compute_us): sizes straddle the eager/
            // rendezvous threshold so both protocols appear.
            (0usize..6, 0usize..6, 1u64..40_000, 0u64..2_000),
            1..12,
        ),
        seed in 0u64..30,
    ) {
        let (traces, clocks) = run_traced(6, seed, &edges);
        for events in &traces {
            for e in events {
                prop_assert!(e.end >= e.start, "event ends before it starts: {e:?}");
            }
        }
        let b = breakdown(&traces);
        for (r, (bd, &makespan)) in b.iter().zip(&clocks).enumerate() {
            prop_assert!(
                (bd.total() - makespan).abs() < 1e-9,
                "rank {r}: compute {} + send {} + blocked {} = {} != makespan {makespan}",
                bd.compute, bd.send, bd.blocked, bd.total()
            );
        }
    }

    /// The Chrome export of any traced run is schema-valid and covers
    /// every recorded event.
    #[test]
    fn chrome_export_is_always_schema_valid(
        edges in proptest::collection::vec(
            (0usize..6, 0usize..6, 1u64..40_000, 0u64..2_000),
            1..10,
        ),
        seed in 0u64..30,
    ) {
        let (traces, _) = run_traced(6, seed, &edges);
        let total: usize = traces.iter().map(Vec::len).sum();
        let js = trace::chrome_trace(&traces).to_json();
        prop_assert_eq!(pevpm_obs::chrome::validate(&js), Ok(total));
    }
}
