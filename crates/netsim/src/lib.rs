// Hostile-input hardening: library code must surface structured errors,
// never unwrap. Test code (cfg(test)) is exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! Packet-level discrete-event simulator of a commodity Ethernet cluster.
//!
//! This crate is the hardware substrate of the reproduction: it stands in
//! for the paper's Perseus cluster (116 dual-P-III nodes, switched 100 Mbit/s
//! Fast Ethernet, 24-port Intel 510T switches stacked with 2.1 Gbit/s matrix
//! cards). See `DESIGN.md` at the workspace root for the substitution
//! rationale.
//!
//! The model is deliberately mechanistic rather than curve-fitted: message
//! latency, NIC contention between SMP processes, backplane (trunk)
//! saturation, buffer-overflow drops and retransmission-timeout outliers all
//! *emerge* from FIFO queue servers with finite buffers — the same phenomena
//! MPIBench measures on real hardware in Figures 1–4 of the paper.
//!
//! # Quick start
//!
//! ```
//! use pevpm_netsim::{ClusterConfig, Network, Time};
//!
//! let mut net = Network::new(ClusterConfig::perseus(4), 42);
//! let id = net.start_transfer(Time::ZERO, 0, 1, 1024);
//! let done = net.run_to_completion();
//! assert_eq!(done[0].id, id);
//! println!("1 KiB delivered at {}", done[0].delivered_at);
//! ```

pub mod config;
pub mod faults;
pub mod network;
pub mod time;

pub use config::{ClusterConfig, NodeId, SwitchId};
pub use faults::{
    Background, FaultError, FaultEvent, FaultKind, FaultPlan, LinkDegrade, LinkFlap, Pause,
};
pub use network::{Completion, NetStats, Network, TransferId};
pub use time::{wire_time, Dur, Time};
