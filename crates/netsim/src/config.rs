//! Cluster topology and parameter configuration.
//!
//! The default preset, [`ClusterConfig::perseus`], models the machine the
//! paper measured: dual-processor nodes on switched 100 Mbit/s Fast
//! Ethernet, 24-port switches joined by 2.1 Gbit/s stacking trunks, MPICH
//! over TCP with a 16 KB eager/rendezvous threshold, and Linux-2.2-era TCP
//! retransmission timeouts (200 ms minimum RTO, exponential backoff).

use crate::faults::FaultPlan;
use crate::time::Dur;

/// Identifier of a physical node (host).
pub type NodeId = usize;
/// Identifier of a switch.
pub type SwitchId = usize;

/// Static description of the simulated cluster and its protocol parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of physical nodes.
    pub nodes: usize,
    /// Ports per switch; nodes fill switches in order (node i is on switch
    /// i / switch_ports), matching the paper's description of the 64×1 case
    /// spanning three 24-port switches (24 + 24 + 16).
    pub switch_ports: usize,
    /// Node link (NIC/port) bandwidth, bits per second.
    pub link_bw_bps: u64,
    /// Stacking-backplane (inter-switch bus) bandwidth, bits per second —
    /// shared by **all** inter-switch traffic. The paper's saturation
    /// analysis (2.02 Gbit/s delivered between two switches hitting the
    /// 2.1 Gbit/s matrix-card limit) identifies exactly this resource.
    pub trunk_bw_bps: u64,
    /// Per-switch shared switching-fabric bandwidth, bits per second. Fast
    /// enough never to be the sustained bottleneck, but simultaneous frame
    /// arrivals still serialise through it — the source of the mild
    /// intra-switch contention growth visible in Figure 1 for n ≤ 24.
    pub fabric_bw_bps: u64,
    /// Byte capacity of each switch-fabric queue.
    pub fabric_buffer_bytes: u64,
    /// Maximum Ethernet frame payload (MTU), bytes.
    pub mtu: u64,
    /// Per-frame framing overhead on the wire (preamble + header + FCS +
    /// inter-frame gap), bytes. 38 B matches the paper's 3.25 Mbit/s of
    /// framing overhead alongside 81 Mbit/s of goodput at 16 KB messages.
    pub frame_overhead: u64,
    /// One-way propagation + cut-through latency per hop.
    pub hop_latency: Dur,
    /// Byte capacity of each switch egress-port queue; overflow drops.
    pub port_buffer_bytes: u64,
    /// Byte capacity of each inter-switch trunk queue; overflow drops.
    pub trunk_buffer_bytes: u64,
    /// Mean of the exponential per-frame service jitter at each queue
    /// server. This is the stochastic element that broadens the
    /// communication-time distributions (OS scheduling, interrupt
    /// coalescing, PCI arbitration...).
    pub jitter_mean: Dur,
    /// Base (minimum) retransmission timeout after a dropped frame.
    pub rto_base: Dur,
    /// Maximum RTO after exponential backoff.
    pub rto_max: Dur,
    /// Random multiplicative jitter applied to each armed RTO, as a
    /// fraction (0.5 = up to +50%). Desynchronises flows that dropped
    /// together, as real per-connection TCP timers do.
    pub rto_jitter: f64,
    /// After a loss, retransmitted frames are paced at `retx_pace_factor ×`
    /// the frame wire time (2 = half the link rate) — a one-knob stand-in
    /// for TCP congestion avoidance that stops synchronised full-rate
    /// re-blasts from re-overflowing the same queue forever.
    pub retx_pace_factor: u64,
    /// Recovery delay when a loss is followed by at least three more
    /// frames of the same transfer (TCP fast retransmit via duplicate
    /// ACKs). Losses within the last three frames of a burst can only be
    /// recovered by the full RTO — which is what detaches the paper's
    /// outliers from the distribution's main mass.
    pub fast_retx_delay: Dur,
    /// Per-message fixed software overhead at the sender before the first
    /// frame reaches the NIC (MPI + TCP/IP stack traversal).
    pub send_overhead: Dur,
    /// Per-message fixed software overhead at the receiver after the last
    /// frame arrives before the message is delivered to MPI.
    pub recv_overhead: Dur,
    /// Per-frame CPU cost at the sender (segmentation, checksum); paid
    /// serially on the NIC path so large messages cost more than bare wire
    /// time.
    pub per_frame_overhead: Dur,
    /// Effective bandwidth for intra-node (shared-memory / loopback)
    /// transfers between two processes on the same SMP node.
    pub local_bw_bps: u64,
    /// Fixed latency for intra-node transfers.
    pub local_latency: Dur,
    /// Optional fault-injection scenario (degraded-machine operation).
    /// `None` — and, bitwise-identically, an empty plan — leaves the
    /// emergent model untouched.
    pub faults: Option<FaultPlan>,
}

impl ClusterConfig {
    /// The Perseus-like preset used throughout the reproduction.
    pub fn perseus(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            switch_ports: 24,
            link_bw_bps: 100_000_000,     // Fast Ethernet
            trunk_bw_bps: 2_100_000_000,  // 2.1 Gbit/s stacking backplane
            fabric_bw_bps: 5_000_000_000, // wire-speed shared fabric
            fabric_buffer_bytes: 1024 * 1024,
            mtu: 1_500,
            frame_overhead: 38,
            hop_latency: Dur::from_micros(5),
            port_buffer_bytes: 96 * 1024,
            trunk_buffer_bytes: 512 * 1024,
            jitter_mean: Dur::from_micros(3),
            rto_base: Dur::from_millis(200), // Linux 2.2 TCP RTO floor
            rto_max: Dur::from_millis(1600),
            rto_jitter: 0.5,
            retx_pace_factor: 2,
            fast_retx_delay: Dur::from_millis(2),
            send_overhead: Dur::from_micros(28),
            recv_overhead: Dur::from_micros(25),
            per_frame_overhead: Dur::from_micros(9),
            local_bw_bps: 1_200_000_000, // ~150 MB/s memcpy on a 500 MHz P-III
            local_latency: Dur::from_micros(15),
            faults: None,
        }
    }

    /// A hypothetical gigabit-Ethernet upgrade of Perseus: 1 Gbit/s links,
    /// a 21 Gbit/s stacking backplane, lower per-message software costs
    /// (era-typical gigabit NICs with interrupt coalescing). Used by the
    /// what-if parametric studies that exercise PEVPM's flexibility claim
    /// (§6: models "can be easily re-evaluated under different input and
    /// environmental conditions").
    pub fn gigabit(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            switch_ports: 24,
            link_bw_bps: 1_000_000_000,
            trunk_bw_bps: 21_000_000_000,
            fabric_bw_bps: 50_000_000_000,
            fabric_buffer_bytes: 4 * 1024 * 1024,
            mtu: 1_500,
            frame_overhead: 38,
            hop_latency: Dur::from_micros(2),
            port_buffer_bytes: 512 * 1024,
            trunk_buffer_bytes: 4 * 1024 * 1024,
            jitter_mean: Dur::from_micros(2),
            rto_base: Dur::from_millis(200),
            rto_max: Dur::from_millis(1600),
            rto_jitter: 0.5,
            retx_pace_factor: 2,
            fast_retx_delay: Dur::from_micros(500),
            send_overhead: Dur::from_micros(15),
            recv_overhead: Dur::from_micros(12),
            per_frame_overhead: Dur::from_micros(2),
            local_bw_bps: 1_200_000_000,
            local_latency: Dur::from_micros(15),
            faults: None,
        }
    }

    /// A hypothetical low-latency interconnect (Myrinet-class): modest
    /// bandwidth gain over Fast Ethernet but an order of magnitude lower
    /// software overheads and latency, lossless (no drops).
    pub fn lowlatency(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            switch_ports: 24,
            link_bw_bps: 1_280_000_000, // 160 MB/s Myrinet-era
            trunk_bw_bps: 10_000_000_000,
            fabric_bw_bps: 20_000_000_000,
            fabric_buffer_bytes: u64::MAX / 4,
            mtu: 4_096,
            frame_overhead: 8,
            hop_latency: Dur::from_nanos(500),
            port_buffer_bytes: u64::MAX / 4, // credit-based flow control: lossless
            trunk_buffer_bytes: u64::MAX / 4,
            jitter_mean: Dur::from_nanos(300),
            rto_base: Dur::from_millis(200),
            rto_max: Dur::from_millis(1600),
            rto_jitter: 0.5,
            retx_pace_factor: 2,
            fast_retx_delay: Dur::from_micros(500),
            send_overhead: Dur::from_micros(3),
            recv_overhead: Dur::from_micros(3),
            per_frame_overhead: Dur::from_nanos(800),
            local_bw_bps: 1_200_000_000,
            local_latency: Dur::from_micros(10),
            faults: None,
        }
    }

    /// A small idealised network for unit tests: one switch, no jitter,
    /// generous buffers (no drops), zero software overheads.
    pub fn ideal(nodes: usize) -> Self {
        ClusterConfig {
            nodes,
            switch_ports: nodes.max(1),
            link_bw_bps: 100_000_000,
            trunk_bw_bps: 2_100_000_000,
            fabric_bw_bps: 2_100_000_000,
            fabric_buffer_bytes: u64::MAX / 4,
            mtu: 1_500,
            // (RTO shaping fields are set below; drops cannot occur with
            // unbounded buffers, so they are inert in the ideal preset.)
            frame_overhead: 38,
            hop_latency: Dur::ZERO,
            port_buffer_bytes: u64::MAX / 4,
            trunk_buffer_bytes: u64::MAX / 4,
            jitter_mean: Dur::ZERO,
            rto_base: Dur::from_millis(200),
            rto_max: Dur::from_millis(1600),
            rto_jitter: 0.0,
            retx_pace_factor: 2,
            fast_retx_delay: Dur::from_millis(2),
            send_overhead: Dur::ZERO,
            recv_overhead: Dur::ZERO,
            per_frame_overhead: Dur::ZERO,
            local_bw_bps: 1_200_000_000,
            local_latency: Dur::ZERO,
            faults: None,
        }
    }

    /// Which switch a node's port belongs to.
    pub fn switch_of(&self, node: NodeId) -> SwitchId {
        node / self.switch_ports
    }

    /// Number of switches needed for the configured node count.
    pub fn num_switches(&self) -> usize {
        self.nodes.div_ceil(self.switch_ports).max(1)
    }

    /// Number of frames a message of `bytes` is segmented into (at least 1:
    /// zero-byte MPI messages still cost a header frame).
    pub fn frames_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.mtu).max(1)
    }

    /// Payload length of frame `idx` (0-based) of a message of `bytes`.
    pub fn frame_payload(&self, bytes: u64, idx: u64) -> u64 {
        let nframes = self.frames_for(bytes);
        debug_assert!(idx < nframes);
        if bytes == 0 {
            return 0;
        }
        if idx + 1 < nframes {
            self.mtu
        } else {
            bytes - self.mtu * (nframes - 1)
        }
    }

    /// On-the-wire length of frame `idx` (payload + framing overhead).
    pub fn frame_wire_bytes(&self, bytes: u64, idx: u64) -> u64 {
        // Even an empty payload carries the minimum header weight.
        self.frame_payload(bytes, idx).max(26) + self.frame_overhead
    }

    /// Validate internal consistency; call after hand-editing a config.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("nodes must be >= 1".into());
        }
        if self.switch_ports == 0 {
            return Err("switch_ports must be >= 1".into());
        }
        if self.link_bw_bps == 0 || self.trunk_bw_bps == 0 || self.fabric_bw_bps == 0 {
            return Err("bandwidths must be positive".into());
        }
        if self.mtu == 0 {
            return Err("mtu must be positive".into());
        }
        if let Some(plan) = &self.faults {
            plan.validate(self)
                .map_err(|e| format!("fault plan: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perseus_spans_three_switches_at_64_nodes() {
        let c = ClusterConfig::perseus(64);
        assert_eq!(c.num_switches(), 3);
        assert_eq!(c.switch_of(0), 0);
        assert_eq!(c.switch_of(23), 0);
        assert_eq!(c.switch_of(24), 1);
        assert_eq!(c.switch_of(47), 1);
        assert_eq!(c.switch_of(48), 2);
        assert_eq!(c.switch_of(63), 2);
    }

    #[test]
    fn frame_segmentation() {
        let c = ClusterConfig::perseus(2);
        assert_eq!(c.frames_for(0), 1);
        assert_eq!(c.frames_for(1), 1);
        assert_eq!(c.frames_for(1500), 1);
        assert_eq!(c.frames_for(1501), 2);
        assert_eq!(c.frames_for(16 * 1024), 11);
        // Payload split: last frame carries the remainder.
        assert_eq!(c.frame_payload(1501, 0), 1500);
        assert_eq!(c.frame_payload(1501, 1), 1);
        assert_eq!(c.frame_payload(0, 0), 0);
    }

    #[test]
    fn wire_bytes_include_overhead_and_minimum_size() {
        let c = ClusterConfig::perseus(2);
        assert_eq!(c.frame_wire_bytes(1500, 0), 1538);
        // Tiny frames are padded to the Ethernet minimum (26 B here + 38).
        assert_eq!(c.frame_wire_bytes(0, 0), 64);
        assert_eq!(c.frame_wire_bytes(1, 0), 64);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut c = ClusterConfig::perseus(4);
        assert!(c.validate().is_ok());
        c.nodes = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::perseus(4);
        c.mtu = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterConfig::perseus(4);
        c.link_bw_bps = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn ideal_network_is_deterministic_config() {
        let c = ClusterConfig::ideal(8);
        assert_eq!(c.jitter_mean, Dur::ZERO);
        assert_eq!(c.num_switches(), 1);
        assert!(c.validate().is_ok());
    }
}
