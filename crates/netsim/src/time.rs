//! Virtual time.
//!
//! All simulation time is integer nanoseconds since simulation start. An
//! integer representation keeps event ordering exact (no fp ties) and is the
//! "globally synchronised clock" of the reproduction: every rank reads the
//! same timebase, which is precisely the property MPIBench's hardware clock
//! synchronisation provides on a real cluster.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of virtual time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Time {
    /// Simulation start.
    pub const ZERO: Time = Time(0);
    /// A time later than any reachable simulation time.
    pub const MAX: Time = Time(u64::MAX);

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Convert to floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Construct from floating-point seconds (rounded to nanoseconds,
    /// clamped at zero).
    pub fn from_secs_f64(s: f64) -> Time {
        Time(secs_to_nanos(s))
    }

    /// Duration elapsed since `earlier` (saturating at zero).
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two times.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Construct from nanoseconds.
    pub fn from_nanos(ns: u64) -> Dur {
        Dur(ns)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// Construct from floating-point seconds (rounded, clamped at zero).
    pub fn from_secs_f64(s: f64) -> Dur {
        Dur(secs_to_nanos(s))
    }

    /// Nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Saturating duration subtraction.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// Scale by an integer factor.
    pub fn times(self, k: u64) -> Dur {
        Dur(self.0 * k)
    }
}

fn secs_to_nanos(s: f64) -> u64 {
    if !s.is_finite() || s <= 0.0 {
        0
    } else {
        (s * 1e9).round().min(u64::MAX as f64) as u64
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, d: Dur) {
        *self = *self + d;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, other: Time) -> Dur {
        self.since(other)
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    fn add(self, d: Dur) -> Dur {
        Dur(self.0.saturating_add(d.0))
    }
}

impl AddAssign<Dur> for Dur {
    fn add_assign(&mut self, d: Dur) {
        *self = *self + d;
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

/// Transmission time of `bytes` at `bits_per_sec` on a serial link.
pub fn wire_time(bytes: u64, bits_per_sec: u64) -> Dur {
    assert!(bits_per_sec > 0, "bandwidth must be positive");
    // bytes*8e9/bps without overflow for realistic values (u128 intermediate).
    let ns = (bytes as u128 * 8 * 1_000_000_000) / bits_per_sec as u128;
    Dur(ns as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let t = Time(1_000);
        let t2 = t + Dur::from_nanos(500);
        assert_eq!(t2, Time(1_500));
        assert_eq!(t2 - t, Dur(500));
        assert_eq!(t - t2, Dur(0), "subtraction saturates");
        assert_eq!(t.max(t2), t2);
        assert_eq!(t.min(t2), t);
    }

    #[test]
    fn conversions_roundtrip() {
        let t = Time::from_secs_f64(1.5e-3);
        assert_eq!(t.as_nanos(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5e-3).abs() < 1e-15);
        assert_eq!(Dur::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Dur::from_millis(2).as_nanos(), 2_000_000);
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(Time::from_secs_f64(-1.0), Time::ZERO);
        assert_eq!(Dur::from_secs_f64(f64::NAN), Dur::ZERO);
    }

    #[test]
    fn wire_time_fast_ethernet() {
        // 1538 bytes on 100 Mbit/s = 123.04 us.
        let d = wire_time(1538, 100_000_000);
        assert_eq!(d.as_nanos(), 123_040);
        // 1 byte at 1 Gbit/s = 8 ns.
        assert_eq!(wire_time(1, 1_000_000_000).as_nanos(), 8);
        assert_eq!(wire_time(0, 100).as_nanos(), 0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Dur(12).to_string(), "12ns");
        assert_eq!(Dur(1_500).to_string(), "1.50us");
        assert_eq!(Dur(2_500_000).to_string(), "2.50ms");
        assert_eq!(Dur(1_200_000_000).to_string(), "1.200s");
    }

    #[test]
    fn saturating_add_at_extremes() {
        let t = Time::MAX + Dur(1);
        assert_eq!(t, Time::MAX);
    }
}
